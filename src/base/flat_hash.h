#ifndef FMTK_BASE_FLAT_HASH_H_
#define FMTK_BASE_FLAT_HASH_H_

#include <cstddef>
#include <cstdint>
#include <functional>
#include <type_traits>
#include <utility>
#include <vector>

#include "base/check.h"
#include "base/hash.h"

namespace fmtk {

/// Default hasher for FlatHashMap: integers and enums pass through raw —
/// the map finalizes every user hash with Mix64 anyway (see MixedHash), so
/// pre-mixing them would pay the avalanche twice per probe. Everything else
/// goes through std::hash. Vector-like keys pass VectorHash explicitly.
template <typename K>
struct FlatDefaultHash {
  std::size_t operator()(const K& key) const {
    if constexpr (std::is_integral_v<K> || std::is_enum_v<K>) {
      return static_cast<std::size_t>(key);
    } else {
      return ScalarHash(key);
    }
  }
};

/// Open-addressing hash map with linear probing and backward-shift erase
/// (no tombstones). Keys, values, and their hashes live in flat parallel
/// arrays, so a probe is a cache-line walk instead of the pointer chase a
/// node-based unordered_map pays per lookup. Capacity is a power of two;
/// the stored 64-bit hash is compared before the key, so a miss almost
/// never touches key memory.
///
/// Engines use this for transposition tables (u64 keys), posting-list maps
/// (Element keys), and canonical-code interning (vector keys + VectorHash).
///
/// Invalidation: any insert may rehash, moving every entry — pointers and
/// references returned by Find/TryEmplace/operator[] are invalidated by the
/// next insert (unlike unordered_map, whose nodes are stable). Erase only
/// shifts entries within the table; it also invalidates pointers.
template <typename K, typename V, typename Hash = FlatDefaultHash<K>,
          typename Eq = std::equal_to<K>>
class FlatHashMap {
 public:
  FlatHashMap() = default;

  std::size_t size() const { return size_; }
  bool empty() const { return size_ == 0; }

  void clear() {
    slots_.clear();
    hashes_.clear();
    used_.clear();
    size_ = 0;
    mask_ = 0;
  }

  /// Pre-sizes the table for at least `n` entries without rehashing.
  void Reserve(std::size_t n) {
    std::size_t cap = kMinCapacity;
    while (cap * 3 < n * 4) {  // keep load factor <= 0.75
      cap <<= 1;
    }
    if (cap > Capacity()) {
      Rehash(cap);
    }
  }

  V* Find(const K& key) {
    const std::size_t i = FindSlot(key, MixedHash(key));
    return i == kNotFound ? nullptr : &slots_[i].value;
  }

  const V* Find(const K& key) const {
    const std::size_t i = FindSlot(key, MixedHash(key));
    return i == kNotFound ? nullptr : &slots_[i].value;
  }

  bool Contains(const K& key) const {
    return FindSlot(key, MixedHash(key)) != kNotFound;
  }

  /// Inserts {key, V(args...)} if absent. Returns {pointer to the value,
  /// true if inserted}. The pointer is valid until the next insert.
  template <typename KeyArg, typename... Args>
  std::pair<V*, bool> TryEmplace(KeyArg&& key, Args&&... args) {
    const std::uint64_t h = MixedHash(key);
    std::size_t i = FindSlot(key, h);
    if (i != kNotFound) {
      return {&slots_[i].value, false};
    }
    if ((size_ + 1) * 4 > Capacity() * 3) {
      Rehash(Capacity() == 0 ? kMinCapacity : Capacity() * 2);
    }
    i = FreeSlot(h);
    slots_[i].key = K(std::forward<KeyArg>(key));
    slots_[i].value = V(std::forward<Args>(args)...);
    hashes_[i] = h;
    used_[i] = 1;
    ++size_;
    return {&slots_[i].value, true};
  }

  V& operator[](const K& key) { return *TryEmplace(key).first; }

  /// Removes `key` if present, backward-shifting the displaced cluster so
  /// probe chains stay dense (no tombstones). Returns true if removed.
  bool Erase(const K& key) {
    std::size_t i = FindSlot(key, MixedHash(key));
    if (i == kNotFound) {
      return false;
    }
    std::size_t j = i;
    while (true) {
      j = (j + 1) & mask_;
      if (!used_[j]) {
        break;
      }
      const std::size_t home = static_cast<std::size_t>(hashes_[j]) & mask_;
      // Entry j may fill the hole at i only if i lies within its probe
      // chain, i.e. the cyclic distance home→j covers i.
      if (((j - home) & mask_) >= ((j - i) & mask_)) {
        slots_[i] = std::move(slots_[j]);
        hashes_[i] = hashes_[j];
        i = j;
      }
    }
    used_[i] = 0;
    slots_[i] = Slot();
    --size_;
    return true;
  }

  /// Calls fn(const K&, V&) / fn(const K&, const V&) for every entry, in
  /// unspecified order.
  template <typename Fn>
  void ForEach(Fn&& fn) {
    for (std::size_t i = 0; i < used_.size(); ++i) {
      if (used_[i]) {
        fn(const_cast<const K&>(slots_[i].key), slots_[i].value);
      }
    }
  }

  template <typename Fn>
  void ForEach(Fn&& fn) const {
    for (std::size_t i = 0; i < used_.size(); ++i) {
      if (used_[i]) {
        fn(slots_[i].key, slots_[i].value);
      }
    }
  }

 private:
  struct Slot {
    K key;
    V value;
  };

  static constexpr std::size_t kMinCapacity = 16;
  static constexpr std::size_t kNotFound = ~std::size_t{0};

  std::size_t Capacity() const { return used_.size(); }

  std::uint64_t MixedHash(const K& key) const {
    // One extra finalizer round guarantees well-spread low bits no matter
    // what the user hasher emits (open addressing indexes with hash & mask).
    return Mix64(static_cast<std::uint64_t>(hash_(key)));
  }

  std::size_t FindSlot(const K& key, std::uint64_t h) const {
    if (size_ == 0) {
      return kNotFound;
    }
    std::size_t i = static_cast<std::size_t>(h) & mask_;
    while (used_[i]) {
      if (hashes_[i] == h && eq_(slots_[i].key, key)) {
        return i;
      }
      i = (i + 1) & mask_;
    }
    return kNotFound;
  }

  std::size_t FreeSlot(std::uint64_t h) const {
    std::size_t i = static_cast<std::size_t>(h) & mask_;
    while (used_[i]) {
      i = (i + 1) & mask_;
    }
    return i;
  }

  void Rehash(std::size_t new_capacity) {
    FMTK_CHECK((new_capacity & (new_capacity - 1)) == 0)
        << "capacity must be a power of two";
    std::vector<Slot> old_slots = std::move(slots_);
    std::vector<std::uint64_t> old_hashes = std::move(hashes_);
    std::vector<std::uint8_t> old_used = std::move(used_);
    slots_ = std::vector<Slot>(new_capacity);
    hashes_.assign(new_capacity, 0);
    used_.assign(new_capacity, 0);
    mask_ = new_capacity - 1;
    for (std::size_t i = 0; i < old_used.size(); ++i) {
      if (old_used[i]) {
        const std::size_t j = FreeSlot(old_hashes[i]);
        slots_[j] = std::move(old_slots[i]);
        hashes_[j] = old_hashes[i];
        used_[j] = 1;
      }
    }
  }

  std::vector<Slot> slots_;
  std::vector<std::uint64_t> hashes_;
  std::vector<std::uint8_t> used_;
  std::size_t size_ = 0;
  std::size_t mask_ = 0;
  [[no_unique_address]] Hash hash_{};
  [[no_unique_address]] Eq eq_{};
};

/// Flat map with pre-mixed or integer 64-bit keys — the transposition-table
/// and posting-list shape.
template <typename V>
using FlatU64Map = FlatHashMap<std::uint64_t, V>;

}  // namespace fmtk

#endif  // FMTK_BASE_FLAT_HASH_H_
