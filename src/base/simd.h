#ifndef FMTK_BASE_SIMD_H_
#define FMTK_BASE_SIMD_H_

// Single SIMD feature-detection point for the perf-kernel layer.
//
// Compile with -DFMTK_SIMD=0 to force the scalar fallbacks everywhere (the
// CI matrix builds one leg this way so both paths stay green). Otherwise the
// widest instruction set the compiler advertises is selected:
//
//   FMTK_SIMD_AVX2  — x86 AVX2 (256-bit, includes 64-bit lane compares)
//   FMTK_SIMD_SSE2  — x86 SSE2 (128-bit, 32-bit lane compares)
//   FMTK_SIMD_NEON  — AArch64/ARM NEON (128-bit, 32-bit lane compares)
//
// Exactly one of the macros above is defined to 1 (or none, for scalar);
// FMTK_SIMD_LEVEL is always defined: 0 scalar, 1 SSE2/NEON, 2 AVX2.

#if defined(FMTK_SIMD) && (FMTK_SIMD + 0) == 0

#define FMTK_SIMD_LEVEL 0

#elif defined(__AVX2__)

#include <immintrin.h>
#define FMTK_SIMD_AVX2 1
#define FMTK_SIMD_SSE2 1
#define FMTK_SIMD_LEVEL 2

#elif defined(__SSE2__) || defined(_M_X64) || \
    (defined(_M_IX86_FP) && _M_IX86_FP >= 2)

#include <emmintrin.h>
#define FMTK_SIMD_SSE2 1
#define FMTK_SIMD_LEVEL 1

#elif defined(__aarch64__)

#include <arm_neon.h>
#define FMTK_SIMD_NEON 1
#define FMTK_SIMD_LEVEL 1

#else

#define FMTK_SIMD_LEVEL 0

#endif

namespace fmtk {

/// Human-readable name of the lane width the kernels were compiled for;
/// benches print it so JSON snapshots record which path was measured.
inline const char* SimdLevelName() {
#if defined(FMTK_SIMD_AVX2)
  return "avx2";
#elif defined(FMTK_SIMD_SSE2)
  return "sse2";
#elif defined(FMTK_SIMD_NEON)
  return "neon";
#else
  return "scalar";
#endif
}

}  // namespace fmtk

#endif  // FMTK_BASE_SIMD_H_
