#include "planner/planner.h"

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <mutex>
#include <set>
#include <string>
#include <thread>
#include <utility>
#include <vector>

#include "base/json_out.h"
#include "core/algorithmic/bounded_degree.h"
#include "eval/compiled_eval.h"
#include "eval/model_check.h"
#include "eval/query_eval.h"
#include "logic/analysis.h"
#include "logic/parser.h"
#include "planner/canonical.h"
#include "planner/fo_to_datalog.h"

namespace fmtk {

namespace {

constexpr double kCostCap = 1e30;

double Cap(double x) { return x > kCostCap ? kCostCap : x; }

double PowCap(double base, std::size_t exp) {
  double out = 1.0;
  for (std::size_t i = 0; i < exp; ++i) {
    out *= base;
    if (out > kCostCap) {
      return kCostCap;
    }
  }
  return out;
}

// Moore-bound estimate of the radius-r Gaifman ball size under a degree
// bound, capped at the domain size: a true upper bound on |B_r(v)|.
double BallEstimate(std::size_t degree, std::size_t radius, std::size_t n) {
  double b;
  if (degree == 0) {
    b = 1.0;
  } else if (degree == 1) {
    b = 2.0;
  } else if (degree == 2) {
    b = 2.0 * static_cast<double>(radius) + 1.0;
  } else {
    b = 1.0;
    double layer = static_cast<double>(degree);
    for (std::size_t r = 0; r < radius; ++r) {
      b += layer;
      if (b > 1e15) {
        b = 1e15;
        break;
      }
      layer *= static_cast<double>(degree - 1);
    }
  }
  const double cap = static_cast<double>(n == 0 ? 1 : n);
  return b < cap ? b : cap;
}

// Crude relational-algebra work estimate over the canonical AST: joins
// produce |A|*|B| / n^shared rows (independence assumption), complements
// and ∀ materialize domain^k tables. Costs are in *row materializations*;
// one materialized row (heap tuple + hash insert) costs about
// kRelationalRowCost compiled slot operations (calibrated on the E19
// bench), which is what makes the estimates comparable across engines.
constexpr double kRelationalRowCost = 30.0;

struct RelEst {
  double rows = 0.0;
  double cost = 0.0;
};

RelEst EstimateRelational(const Formula& f, const Structure& s, double n) {
  RelEst est;
  switch (f.kind()) {
    case FormulaKind::kTrue:
      est.rows = 1.0;
      est.cost = 1.0;
      return est;
    case FormulaKind::kFalse:
      est.rows = 0.0;
      est.cost = 1.0;
      return est;
    case FormulaKind::kAtom: {
      Result<std::size_t> index = s.RelationIndex(f.relation_name());
      const double rows =
          index.ok() ? static_cast<double>(s.relation(*index).size()) : 0.0;
      est.rows = rows;
      est.cost = rows + 1.0;
      return est;
    }
    case FormulaKind::kEqual:
      est.rows = n;
      est.cost = n;
      return est;
    case FormulaKind::kAnd: {
      // Join-size estimate: |A ⋈ B| ≈ |A|*|B| / n^|shared vars|, folded
      // over all conjuncts at once (Σ|fv_i| - |fv(∧)| shared slots).
      double product = -1.0;
      double var_slots = 0.0;
      for (const Formula& child : f.children()) {
        const RelEst c = EstimateRelational(child, s, n);
        est.cost = Cap(est.cost + c.cost);
        product = product < 0.0 ? c.rows : Cap(product * c.rows);
        var_slots += static_cast<double>(FreeVariables(child).size());
      }
      if (product < 0.0) {
        product = 1.0;  // empty conjunction
      }
      const double shared = var_slots - static_cast<double>(
                                            FreeVariables(f).size());
      const double denom = PowCap(n, static_cast<std::size_t>(
                                         shared > 0.0 ? shared : 0.0));
      est.rows = product / denom;
      if (est.rows < 1.0) {
        est.rows = 1.0;
      }
      est.cost = Cap(est.cost + est.rows);  // materializing the result
      return est;
    }
    case FormulaKind::kOr: {
      const double fv_f = static_cast<double>(FreeVariables(f).size());
      for (const Formula& child : f.children()) {
        const RelEst c = EstimateRelational(child, s, n);
        const double extra = fv_f - static_cast<double>(
                                        FreeVariables(child).size());
        const double ext = PowCap(n, static_cast<std::size_t>(extra));
        est.rows = Cap(est.rows + c.rows * ext);
        est.cost = Cap(est.cost + c.cost + c.rows * ext);
      }
      return est;
    }
    case FormulaKind::kNot: {
      const RelEst c = EstimateRelational(f.child(0), s, n);
      const double full = PowCap(n, FreeVariables(f.child(0)).size());
      est.rows = full;
      est.cost = Cap(c.cost + full);
      return est;
    }
    case FormulaKind::kImplies:
    case FormulaKind::kIff: {
      const double full = PowCap(n, FreeVariables(f).size());
      for (const Formula& child : f.children()) {
        const RelEst c = EstimateRelational(child, s, n);
        est.cost = Cap(est.cost + c.cost);
      }
      est.cost = Cap(est.cost + 2.0 * full);
      est.rows = full;
      return est;
    }
    case FormulaKind::kExists:
    case FormulaKind::kCountExists: {
      const RelEst c = EstimateRelational(f.body(), s, n);
      est.rows = c.rows;
      est.cost = Cap(c.cost + c.rows);
      return est;
    }
    case FormulaKind::kForall: {
      const RelEst c = EstimateRelational(f.body(), s, n);
      const double full = PowCap(n, FreeVariables(f.body()).size());
      est.rows = PowCap(n, FreeVariables(f).size());
      est.cost = Cap(c.cost + 2.0 * full);
      return est;
    }
  }
  return est;
}

// Lazily attempts (once) the EP -> nonrecursive-Datalog lowering for a
// cached plan. Caller must hold plan.engines_mu.
const FoDatalogTranslation* EnsureTranslationLocked(
    const CachedFormulaPlan& plan, const Signature& signature) {
  if (!plan.datalog_attempted) {
    plan.datalog_attempted = true;
    Result<FoDatalogTranslation> r =
        TranslateToDatalog(plan.canonical.formula, signature);
    if (r.ok()) {
      plan.datalog = std::move(r).value();
    }
  }
  return plan.datalog.has_value() ? &*plan.datalog : nullptr;
}

// Bounded-degree route parameters: valid only when the plan is a
// constant-free, counting-free sentence of modest rank.
struct BdParams {
  bool structurally_eligible = false;
  std::size_t radius = 0;
  double ball = 0.0;
  std::size_t threshold = 1;
  std::string reason;  // why not, when ineligible
};

BdParams BoundedDegreeParams(const CachedFormulaPlan& plan,
                             const Structure& s, const StructureStats& stats) {
  BdParams p;
  if (!plan.analysis.free_variables.empty()) {
    p.reason = "free variables (sentences only)";
    return p;
  }
  if (plan.has_counting) {
    p.reason = "counting quantifier";
    return p;
  }
  if (plan.has_constant_terms || s.signature().constant_count() > 0) {
    p.reason = "constants break the neighborhood argument";
    return p;
  }
  const std::size_t qr = plan.analysis.quantifier_rank;
  if (qr == 0) {
    p.reason = "quantifier-free";
    return p;
  }
  if (qr > 6) {
    p.reason = "quantifier rank too large for the Hanf radius";
    return p;
  }
  p.radius = HanfParametersForRank(qr).radius;
  p.ball = BallEstimate(stats.max_degree, p.radius, stats.domain_size);
  // The fully conservative FSV threshold: rank * max-ball-size + 1 (see
  // bounded_degree.h) — sound on any structure class, and clipping cost
  // does not grow with it.
  const double t = static_cast<double>(qr) * p.ball + 1.0;
  p.threshold = static_cast<std::size_t>(t > 1e9 ? 1e9 : t);
  p.structurally_eligible = true;
  return p;
}

double BdHistogramCost(const StructureStats& stats, double ball) {
  return Cap(static_cast<double>(stats.domain_size) * ball * ball * 8.0 +
             64.0);
}

const char* kEngineNames[] = {"naive",      "compiled", "parallel",
                              "relational", "datalog",  "bounded-degree"};

// --------------------------------------------------------------------------
// Short-circuit scan feedback (PR 9): see CachedFormulaPlan's feedback
// fields. The static model prices a full scan; the engine short-circuits.

// Identity of one measured configuration. `output_count` distinguishes
// sentence checks (0) from query enumerations, whose work scales with the
// output arity.
std::uint64_t ScanFeedbackKey(const Structure& s, std::size_t output_count) {
  std::size_t seed = 0;
  HashCombine(seed, s.uid());
  HashCombine(seed, s.generation());
  HashCombine(seed, output_count + 1);  // never 0: 0 = "no measurement"
  const std::uint64_t key = Mix64(seed);
  return key == 0 ? 1 : key;
}

// The static full-scan estimate in node-visit units — the denominator the
// measured visits are normalized against (must match the pricing below).
double StaticScanUnits(const CachedFormulaPlan& plan, double n,
                       bool query_mode, std::size_t output_count) {
  const double nodes = static_cast<double>(
      plan.analysis.node_count == 0 ? 1 : plan.analysis.node_count);
  const std::size_t exp = plan.analysis.quantifier_rank +
                          (query_mode ? output_count : 0);
  return Cap(nodes * PowCap(n, exp));
}

// Records a router-chosen compiled run's measured work on the plan.
void RecordScanFeedback(const CachedFormulaPlan& plan, const Structure& s,
                        bool query_mode, std::size_t output_count,
                        const EvalStats& stats) {
  const double n =
      static_cast<double>(s.domain_size() == 0 ? 1 : s.domain_size());
  const double scan = StaticScanUnits(plan, n, query_mode, output_count);
  const std::uint64_t visits =
      stats.node_visits == 0 ? 1 : stats.node_visits;
  double ratio = static_cast<double>(visits) / scan;
  if (ratio > 1.0) {
    ratio = 1.0;  // the model underestimated; never inflate other routes
  }
  plan.scan_feedback_visits.store(visits, std::memory_order_relaxed);
  plan.scan_feedback_short_circuits.store(stats.short_circuits,
                                          std::memory_order_relaxed);
  plan.scan_feedback_ratio.store(ratio, std::memory_order_relaxed);
  plan.scan_feedback_key.store(ScanFeedbackKey(s, query_mode ? output_count : 0),
                               std::memory_order_release);
}

struct RouteResult {
  EngineKind chosen = EngineKind::kCompiled;
  std::vector<EngineCost> costs;
  /// "static" / "measured" / "prior" — see PlanExplanation::scan_estimate.
  const char* scan_estimate = "static";
  double scan_ratio = 1.0;
  std::uint64_t observed_short_circuits = 0;
};

EngineCost MakeCost(EngineKind k, bool eligible, double cost,
                    std::string note = "") {
  EngineCost c;
  c.engine = k;
  c.eligible = eligible;
  c.cost = cost;
  c.note = std::move(note);
  return c;
}

// The cost model: one table of (eligibility, estimated work units) per
// engine, then argmin. `output_count` is meaningful in query mode only.
RouteResult Route(const Structure& s, const CachedFormulaPlan& plan,
                  const StructureStats& stats, bool query_mode,
                  std::size_t output_count, const PlannerOptions& opts) {
  RouteResult result;
  const double n = static_cast<double>(
      stats.domain_size == 0 ? 1 : stats.domain_size);
  const double nodes = static_cast<double>(
      plan.analysis.node_count == 0 ? 1 : plan.analysis.node_count);
  const std::size_t qr = plan.analysis.quantifier_rank;
  const double scan = Cap(nodes * PowCap(n, qr));

  // Serial compiled evaluation: the default. Queries enumerate domain^m
  // candidate rows over the cached plan. The full-scan estimate is
  // discounted by short-circuit feedback when this plan has a measured run
  // (PR 8's "remaining headroom": the model priced full scans even when
  // the engine short-circuits after a handful of node visits).
  double compiled_units = StaticScanUnits(plan, n, query_mode, output_count);
  std::string compiled_note;
  {
    const std::uint64_t key =
        ScanFeedbackKey(s, query_mode ? output_count : 0);
    const std::uint64_t seen =
        plan.scan_feedback_key.load(std::memory_order_acquire);
    if (seen == key) {
      const double visits = static_cast<double>(
          plan.scan_feedback_visits.load(std::memory_order_relaxed));
      result.scan_estimate = "measured";
      result.scan_ratio = visits / compiled_units;
      result.observed_short_circuits =
          plan.scan_feedback_short_circuits.load(std::memory_order_relaxed);
      compiled_units = visits < 1.0 ? 1.0 : visits;
      compiled_note = "measured node visits";
    } else if (seen != 0) {
      double ratio = plan.scan_feedback_ratio.load(std::memory_order_relaxed);
      if (ratio > 0.0 && ratio < 1.0) {
        // Another structure's measurement: apply the dimensionless ratio,
        // hedged toward the static model (a different structure may
        // short-circuit later, so a prior never discounts past 10x).
        if (ratio < 0.1) {
          ratio = 0.1;
        }
        result.scan_estimate = "prior";
        result.scan_ratio = ratio;
        result.observed_short_circuits =
            plan.scan_feedback_short_circuits.load(std::memory_order_relaxed);
        compiled_units = Cap(compiled_units * ratio);
        compiled_note = "short-circuit ratio prior";
      }
    }
  }
  const double compiled_cost = Cap(0.3 * compiled_units);
  result.costs.push_back(MakeCost(EngineKind::kCompiled, true, compiled_cost,
                                  std::move(compiled_note)));

  // The interpreter: same exploration, measured 3-4x slower per node
  // (PR 1); queries additionally recompile per call.
  result.costs.push_back(MakeCost(
      EngineKind::kNaive, true,
      Cap((query_mode ? 1.05 * compiled_cost : scan) + 1000.0),
      "reference oracle"));

  // Parallel outer-quantifier fan-out (sentences; PR 1's ParallelPolicy).
  {
    std::size_t threads = opts.threads != 0
                              ? opts.threads
                              : std::thread::hardware_concurrency();
    if (threads == 0) {
      threads = 1;
    }
    if (query_mode) {
      result.costs.push_back(MakeCost(EngineKind::kParallel, false, 0.0,
                                      "sentences only"));
    } else if (threads < 2) {
      result.costs.push_back(
          MakeCost(EngineKind::kParallel, false, 0.0, "threads<2"));
    } else if (stats.domain_size < 64 || compiled_cost < 1e6 || qr == 0) {
      result.costs.push_back(MakeCost(EngineKind::kParallel, false, 0.0,
                                      "too little work to fan out"));
    } else {
      const double fan = static_cast<double>(
          std::min<std::size_t>(threads, stats.domain_size));
      result.costs.push_back(MakeCost(EngineKind::kParallel, true,
                                      Cap(compiled_cost / fan + 5e4)));
    }
  }

  // Bottom-up relational algebra.
  double relational_cost = 0.0;
  bool relational_eligible = false;
  if (plan.has_counting) {
    result.costs.push_back(MakeCost(EngineKind::kRelational, false, 0.0,
                                    "counting quantifier"));
  } else {
    const RelEst est = EstimateRelational(plan.canonical.formula, s, n);
    double cost = est.cost;
    if (query_mode) {
      const std::size_t extra =
          output_count - plan.analysis.free_variables.size();
      cost = Cap(cost + est.rows * PowCap(n, extra));
    }
    relational_cost = Cap(kRelationalRowCost * cost);
    relational_eligible = true;
    result.costs.push_back(
        MakeCost(EngineKind::kRelational, true, relational_cost));
  }

  // Nonrecursive-Datalog lowering onto the compiled semi-naive engine.
  {
    std::string why;
    bool eligible = true;
    if (!plan.existential_positive) {
      eligible = false;
      why = "outside the existential-positive fragment";
    } else if (plan.has_constant_terms) {
      eligible = false;
      why = "constant terms";
    } else if (stats.domain_size == 0) {
      eligible = false;
      why = "empty domain";
    }
    const FoDatalogTranslation* translation = nullptr;
    if (eligible) {
      std::lock_guard<std::mutex> lock(plan.engines_mu);
      translation = EnsureTranslationLocked(plan, s.signature());
      if (translation == nullptr) {
        eligible = false;
        why = "not range-restrictable as Datalog";
      }
    }
    if (eligible && !relational_eligible) {
      eligible = false;
      why = "no relational estimate to price the lowering";
    }
    if (eligible) {
      // Semi-naive with posting-list indexes touches roughly half what the
      // generic algebra evaluator does on the same joins (PR 6 bench), and
      // engine binding amortizes away via the per-structure memo — only a
      // small per-call constant remains.
      result.costs.push_back(MakeCost(EngineKind::kDatalog, true,
                                      Cap(0.5 * relational_cost + 100.0)));
    } else {
      result.costs.push_back(
          MakeCost(EngineKind::kDatalog, false, 0.0, why));
    }
  }

  // Hanf bounded-degree histogram evaluation (Thm 3.10/3.11). Chosen
  // optimistically when the histogram pass is far below the compiled scan:
  // a verdict-cache miss still pays one compiled check (<= (1 + safety) of
  // the compiled route), and every later evaluation over the same
  // bounded-degree class answers in the linear histogram pass alone.
  if (query_mode) {
    result.costs.push_back(MakeCost(EngineKind::kBoundedDegree, false, 0.0,
                                    "sentences only"));
  } else {
    const BdParams bd = BoundedDegreeParams(plan, s, stats);
    if (!bd.structurally_eligible) {
      result.costs.push_back(
          MakeCost(EngineKind::kBoundedDegree, false, 0.0, bd.reason));
    } else if (bd.ball > static_cast<double>(opts.bounded_degree_max_ball)) {
      result.costs.push_back(MakeCost(EngineKind::kBoundedDegree, false, 0.0,
                                      "estimated ball too large"));
    } else {
      const double hist = BdHistogramCost(stats, bd.ball);
      if (hist <= opts.bounded_degree_safety * compiled_cost) {
        result.costs.push_back(
            MakeCost(EngineKind::kBoundedDegree, true, hist));
      } else {
        result.costs.push_back(MakeCost(
            EngineKind::kBoundedDegree, false, hist,
            "histogram pass not clearly cheaper than the compiled scan"));
      }
    }
  }

  // Argmin over the eligible rows.
  bool have = false;
  double best = 0.0;
  for (const EngineCost& c : result.costs) {
    if (!c.eligible) {
      continue;
    }
    if (!have || c.cost < best) {
      have = true;
      best = c.cost;
      result.chosen = c.engine;
    }
  }
  return result;
}

void RuleFor(EngineKind kind, bool cache_hit, std::string* rule,
             std::string* theorem) {
  switch (kind) {
    case EngineKind::kBoundedDegree:
      *rule =
          "bounded Gaifman degree => small r-balls => evaluate by "
          "clipped neighborhood-type histogram (amortized linear time)";
      *theorem =
          "Thm 3.4/3.6 (Gaifman/Hanf locality); Thm 3.8/3.10-3.11 "
          "(bounded degree => Hanf-local => linear-time evaluation)";
      return;
    case EngineKind::kDatalog:
      *rule =
          "existential-positive => union of conjunctive queries => "
          "nonrecursive Datalog on the indexed semi-naive engine";
      *theorem =
          "Sec. 4 (Datalog): UCQs are the nonrecursive fragment; "
          "bottom-up evaluation with index-driven joins";
      return;
    case EngineKind::kRelational:
      *rule =
          "cheap algebra plan (selective joins / complements) => "
          "bottom-up relational evaluation";
      *theorem =
          "Sec. 3 / Codd: FO = relational algebra (safe-range formulas "
          "are domain independent)";
      return;
    case EngineKind::kParallel:
      *rule =
          "large domain x deep quantifier prefix => fan the outermost "
          "quantifier out across threads";
      *theorem = "Thm 2.4: FO is in AC0 — quantifier blocks are "
                 "embarrassingly parallel";
      return;
    case EngineKind::kNaive:
      *rule = "reference interpreter (forced or trivial input)";
      *theorem = "Sec. 2: O(n^qr) combined-complexity baseline";
      return;
    case EngineKind::kCompiled:
      *rule = cache_hit
                  ? "default: cached compiled plan, O(n^qr) data complexity"
                  : "default: compiled slot evaluation, O(n^qr) data "
                    "complexity";
      *theorem =
          "Sec. 2.2: data complexity of FO (fixed query => polynomial "
          "scan; FO is in AC0)";
      return;
  }
}

std::string FormatCost(double cost) {
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%.3g", cost);
  return buf;
}

std::string JsonEscape(const std::string& in) {
  std::string out;
  out.reserve(in.size() + 8);
  JsonAppendEscaped(out, in);
  return out;
}

// ---------------------------------------------------------------------------
// Execution of the chosen engine.

Result<bool> RunSentence(EngineKind kind, const Structure& s,
                         const CachedFormulaPlan& plan,
                         const StructureStats& stats,
                         const PlannerOptions& opts,
                         bool record_feedback) {
  switch (kind) {
    case EngineKind::kNaive: {
      ModelChecker checker(s);
      return checker.Check(plan.canonical.formula);
    }
    case EngineKind::kCompiled: {
      FMTK_ASSIGN_OR_RETURN(CompiledEvaluator evaluator,
                            CompiledEvaluator::Bind(plan.plan, s));
      Result<bool> verdict = evaluator.Evaluate();
      if (verdict.ok() && record_feedback) {
        RecordScanFeedback(plan, s, /*query_mode=*/false, 0,
                           evaluator.stats());
      }
      return verdict;
    }
    case EngineKind::kParallel: {
      ParallelPolicy policy;
      policy.enabled = true;
      policy.num_threads = opts.threads;
      FMTK_ASSIGN_OR_RETURN(CompiledEvaluator evaluator,
                            CompiledEvaluator::Bind(plan.plan, s, policy));
      return evaluator.Evaluate();
    }
    case EngineKind::kRelational: {
      FMTK_ASSIGN_OR_RETURN(Relation answers,
                            EvaluateQuery(s, plan.canonical.formula, {}));
      return answers.size() > 0;
    }
    case EngineKind::kDatalog: {
      std::lock_guard<std::mutex> lock(plan.engines_mu);
      const FoDatalogTranslation* translation =
          EnsureTranslationLocked(plan, s.signature());
      if (translation == nullptr) {
        return Status::Unsupported(
            "planner: formula has no Datalog lowering");
      }
      FMTK_ASSIGN_OR_RETURN(
          CompiledDatalogEngine engine,
          GetOrBindDatalogEngine(plan.datalog_engines, translation->program,
                                 s));
      FMTK_ASSIGN_OR_RETURN(auto idb, engine.Evaluate());
      return idb.at(translation->output_predicate).size() > 0;
    }
    case EngineKind::kBoundedDegree: {
      std::lock_guard<std::mutex> lock(plan.engines_mu);
      if (!plan.bounded_degree.has_value()) {
        if (plan.bounded_degree_failed) {
          return Status::Unsupported(
              "planner: bounded-degree evaluator unavailable for this "
              "sentence");
        }
        const BdParams bd = BoundedDegreeParams(plan, s, stats);
        if (!bd.structurally_eligible) {
          return Status::Unsupported(
              "planner: bounded-degree route ineligible: " + bd.reason);
        }
        BoundedDegreeEvaluator::Options options;
        options.threshold = bd.threshold;
        Result<BoundedDegreeEvaluator> evaluator =
            BoundedDegreeEvaluator::Create(plan.canonical.formula, options);
        if (!evaluator.ok()) {
          plan.bounded_degree_failed = true;
          return evaluator.status();
        }
        plan.bounded_degree.emplace(std::move(evaluator).value());
      }
      return plan.bounded_degree->Evaluate(s);
    }
  }
  return Status::Internal("planner: unknown engine");
}

// domain^m enumeration over the cached compiled plan — the same candidate
// order and verdicts as EvaluateQueryNaive, minus the recompilation.
Result<Relation> EnumerateWithPlan(
    const Structure& s, const CachedFormulaPlan& plan,
    const std::vector<std::string>& output_variables,
    bool record_feedback) {
  FMTK_ASSIGN_OR_RETURN(CompiledEvaluator evaluator,
                        CompiledEvaluator::Bind(plan.plan, s));
  // The evaluator accumulates EvalStats across every enumerated row, so
  // the total is exactly what the routing formula estimates; record it on
  // the way out of each successful return path.
  const auto record = [&] {
    if (record_feedback) {
      RecordScanFeedback(plan, s, /*query_mode=*/true,
                         output_variables.size(), evaluator.stats());
    }
  };
  const std::vector<std::string>& free_vars = evaluator.free_variables();
  std::vector<std::size_t> source(free_vars.size(), 0);
  for (std::size_t i = 0; i < free_vars.size(); ++i) {
    bool found = false;
    for (std::size_t j = 0; j < output_variables.size(); ++j) {
      if (output_variables[j] == free_vars[i]) {
        source[i] = j;
        found = true;
        break;
      }
    }
    if (!found) {
      return Status::InvalidArgument(
          "output variables must cover free variable " + free_vars[i]);
    }
  }
  const std::size_t m = output_variables.size();
  const std::size_t n = s.domain_size();
  Relation answers(m);
  if (m == 0) {
    FMTK_ASSIGN_OR_RETURN(bool holds, evaluator.EvaluateRow({}));
    if (holds) {
      answers.Add({});
    }
    record();
    return answers;
  }
  if (n == 0) {
    return answers;
  }
  std::vector<Element> tuple(m, 0);
  std::vector<Element> row(free_vars.size(), 0);
  while (true) {
    for (std::size_t i = 0; i < row.size(); ++i) {
      row[i] = tuple[source[i]];
    }
    FMTK_ASSIGN_OR_RETURN(bool holds, evaluator.EvaluateRow(row));
    if (holds) {
      answers.Add(tuple);
    }
    std::size_t pos = m;
    while (pos > 0) {
      --pos;
      if (++tuple[pos] < n) {
        break;
      }
      tuple[pos] = 0;
      if (pos == 0) {
        record();
        return answers;
      }
    }
  }
}

Result<Relation> RunQuery(EngineKind kind, const Structure& s,
                          const CachedFormulaPlan& plan,
                          const std::vector<std::string>& output_variables,
                          const PlannerOptions& opts, bool record_feedback) {
  (void)opts;
  switch (kind) {
    case EngineKind::kNaive:
      return EvaluateQueryNaive(s, plan.canonical.formula, output_variables);
    case EngineKind::kCompiled:
      return EnumerateWithPlan(s, plan, output_variables, record_feedback);
    case EngineKind::kRelational:
      return EvaluateQuery(s, plan.canonical.formula, output_variables);
    case EngineKind::kDatalog: {
      std::lock_guard<std::mutex> lock(plan.engines_mu);
      const FoDatalogTranslation* translation =
          EnsureTranslationLocked(plan, s.signature());
      if (translation == nullptr) {
        return Status::Unsupported(
            "planner: query has no Datalog lowering");
      }
      // Datalog answers carry exactly the free variables; extra output
      // columns are not expressible in positive rules.
      if (translation->output_variables.size() != output_variables.size()) {
        return Status::Unsupported(
            "planner: Datalog route requires the outputs to be exactly "
            "the free variables");
      }
      std::vector<std::size_t> perm(output_variables.size(), 0);
      bool identity = true;
      for (std::size_t j = 0; j < output_variables.size(); ++j) {
        bool found = false;
        for (std::size_t i = 0; i < translation->output_variables.size();
             ++i) {
          if (translation->output_variables[i] == output_variables[j]) {
            perm[j] = i;
            found = true;
            break;
          }
        }
        if (!found) {
          return Status::Unsupported(
              "planner: Datalog route requires the outputs to be exactly "
              "the free variables");
        }
        identity = identity && perm[j] == j;
      }
      FMTK_ASSIGN_OR_RETURN(
          CompiledDatalogEngine engine,
          GetOrBindDatalogEngine(plan.datalog_engines, translation->program,
                                 s));
      FMTK_ASSIGN_OR_RETURN(auto idb, engine.Evaluate());
      Relation& raw = idb.at(translation->output_predicate);
      if (identity) {
        return std::move(raw);
      }
      Relation answers(output_variables.size());
      for (const Tuple& t : raw.tuples()) {
        Tuple reordered(t.size());
        for (std::size_t j = 0; j < perm.size(); ++j) {
          reordered[j] = t[perm[j]];
        }
        answers.Add(std::move(reordered));
      }
      return answers;
    }
    case EngineKind::kParallel:
    case EngineKind::kBoundedDegree:
      return Status::Unsupported(
          std::string("planner: engine '") + EngineKindName(kind) +
          "' evaluates sentences only");
  }
  return Status::Internal("planner: unknown engine");
}

// Shared front half of EvaluateAuto / EvaluateQueryAuto: plan acquisition
// (cache or throwaway), routing, explanation fill-in.
struct AutoContext {
  std::shared_ptr<const CachedFormulaPlan> plan;
  PlanCacheLookup lookup;
  StructureStats stats;
  EngineKind chosen = EngineKind::kCompiled;
  std::vector<EngineCost> costs;
  const char* scan_estimate = "static";
  double scan_ratio = 1.0;
  std::uint64_t observed_short_circuits = 0;
  /// Feedback is recorded only for router-chosen runs, never forced ones.
  bool record_feedback = false;
};

Result<AutoContext> PrepareAuto(const Structure& s, const Formula* formula,
                                const std::string_view* text, bool query_mode,
                                std::size_t output_count,
                                const PlannerOptions& opts) {
  AutoContext ctx;
  if (opts.use_cache) {
    PlanCache& cache =
        opts.cache != nullptr ? *opts.cache : DefaultPlanCache();
    if (formula != nullptr) {
      // Error parity with the direct engines: the *original* formula is
      // checked against the vocabulary (folding could erase an invalid
      // dead branch before the canonical-formula analysis sees it).
      Status check = CheckAgainstSignature(*formula, s.signature());
      if (!check.ok()) {
        return check;
      }
      FMTK_ASSIGN_OR_RETURN(
          ctx.plan, cache.GetFormulaPlan(*formula, s.signature(),
                                         &ctx.lookup));
    } else {
      FMTK_ASSIGN_OR_RETURN(
          ctx.plan, cache.GetFormulaPlanFromText(*text, s.signature(),
                                                 &ctx.lookup));
    }
  } else {
    PlanCache throwaway(PlanCache::Config{1, 2});
    if (formula != nullptr) {
      Status check = CheckAgainstSignature(*formula, s.signature());
      if (!check.ok()) {
        return check;
      }
      FMTK_ASSIGN_OR_RETURN(
          ctx.plan, throwaway.GetFormulaPlan(*formula, s.signature(),
                                             &ctx.lookup));
    } else {
      FMTK_ASSIGN_OR_RETURN(
          ctx.plan, throwaway.GetFormulaPlanFromText(*text, s.signature(),
                                                     &ctx.lookup));
    }
    ctx.lookup.hit = false;
    ctx.lookup.text_hit = false;
  }

  ctx.stats = s.Stats();
  if (opts.force_engine.has_value()) {
    ctx.chosen = *opts.force_engine;
    ctx.costs.push_back(MakeCost(ctx.chosen, true, 0.0, "forced"));
  } else {
    RouteResult route =
        Route(s, *ctx.plan, ctx.stats, query_mode, output_count, opts);
    ctx.chosen = route.chosen;
    ctx.costs = std::move(route.costs);
    ctx.scan_estimate = route.scan_estimate;
    ctx.scan_ratio = route.scan_ratio;
    ctx.observed_short_circuits = route.observed_short_circuits;
    ctx.record_feedback = true;
  }
  return ctx;
}

void FillExplanation(const AutoContext& ctx, PlanExplanation* explain) {
  if (explain == nullptr) {
    return;
  }
  explain->chosen = ctx.chosen;
  RuleFor(ctx.chosen, ctx.lookup.hit, &explain->rule, &explain->theorem);
  explain->cache_hit = ctx.lookup.hit;
  explain->text_cache_hit = ctx.lookup.text_hit;
  explain->canonical_text = ctx.plan->canonical.text;
  explain->signature_fingerprint = ctx.plan->canonical.fingerprint;
  explain->quantifier_rank = ctx.plan->analysis.quantifier_rank;
  explain->variable_width = ctx.plan->analysis.variable_width;
  explain->node_count = ctx.plan->analysis.node_count;
  explain->free_variable_count = ctx.plan->analysis.free_variables.size();
  explain->safe_range = ctx.plan->analysis.safe_range;
  explain->existential_positive = ctx.plan->existential_positive;
  explain->scan_estimate = ctx.scan_estimate;
  explain->scan_ratio = ctx.scan_ratio;
  explain->observed_short_circuits = ctx.observed_short_circuits;
  explain->structure = ctx.stats;
  explain->costs = ctx.costs;
}

}  // namespace

const char* EngineKindName(EngineKind kind) {
  return kEngineNames[static_cast<std::size_t>(kind)];
}

std::optional<EngineKind> ParseEngineKind(std::string_view name) {
  for (std::size_t i = 0; i < 6; ++i) {
    if (name == kEngineNames[i]) {
      return static_cast<EngineKind>(i);
    }
  }
  if (name == "bounded_degree" || name == "bd") {
    return EngineKind::kBoundedDegree;
  }
  return std::nullopt;
}

std::string PlanExplanation::ToString() const {
  std::string out = "plan: ";
  out += EngineKindName(chosen);
  if (text_cache_hit) {
    out += " (text cache hit: parse+analyze+compile skipped)";
  } else if (cache_hit) {
    out += " (plan cache hit: analyze+compile skipped)";
  }
  out += "\n  canonical: " + canonical_text;
  char fp[32];
  std::snprintf(fp, sizeof(fp), "0x%016llx",
                static_cast<unsigned long long>(signature_fingerprint));
  out += "\n  signature fp: ";
  out += fp;
  out += "\n  measures: qr=" + std::to_string(quantifier_rank) +
         " width=" + std::to_string(variable_width) +
         " nodes=" + std::to_string(node_count) +
         " free=" + std::to_string(free_variable_count) +
         " safe_range=" + (safe_range ? "yes" : "no") +
         " ep=" + (existential_positive ? "yes" : "no");
  if (scan_estimate != "static") {
    out += "\n  scan estimate: " + scan_estimate +
           " (ratio=" + FormatCost(scan_ratio) +
           " short_circuits=" + std::to_string(observed_short_circuits) +
           ")";
  }
  out += "\n  structure: " + structure.ToString();
  out += "\n  rule: " + rule;
  out += "\n  theorem: " + theorem;
  out += "\n  costs:";
  for (const EngineCost& c : costs) {
    out += " ";
    out += EngineKindName(c.engine);
    if (c.eligible) {
      out += "=" + FormatCost(c.cost);
      if (c.engine == chosen) {
        out += "*";
      }
    } else {
      out += "=(" + (c.note.empty() ? std::string("ineligible") : c.note) +
             ")";
    }
  }
  return out;
}

std::string PlanExplanation::ToJson() const {
  std::string out = "{\"engine\":\"";
  out += EngineKindName(chosen);
  out += "\",\"cache_hit\":";
  out += cache_hit ? "true" : "false";
  out += ",\"text_cache_hit\":";
  out += text_cache_hit ? "true" : "false";
  out += ",\"canonical\":\"" + JsonEscape(canonical_text) + "\"";
  char fp[32];
  std::snprintf(fp, sizeof(fp), "0x%016llx",
                static_cast<unsigned long long>(signature_fingerprint));
  out += ",\"signature_fingerprint\":\"";
  out += fp;
  out += "\",\"measures\":{\"quantifier_rank\":" +
         std::to_string(quantifier_rank) +
         ",\"variable_width\":" + std::to_string(variable_width) +
         ",\"node_count\":" + std::to_string(node_count) +
         ",\"free_variables\":" + std::to_string(free_variable_count) +
         ",\"safe_range\":" + (safe_range ? "true" : "false") +
         ",\"existential_positive\":" +
         (existential_positive ? "true" : "false") + "}";
  out += ",\"scan_estimate\":\"" + JsonEscape(scan_estimate) +
         "\",\"scan_ratio\":" + FormatCost(scan_ratio) +
         ",\"observed_short_circuits\":" +
         std::to_string(observed_short_circuits);
  out += ",\"structure\":{\"domain_size\":" +
         std::to_string(structure.domain_size) +
         ",\"tuple_count\":" + std::to_string(structure.tuple_count) +
         ",\"max_degree\":" + std::to_string(structure.max_degree) +
         ",\"avg_degree\":" + FormatCost(structure.avg_degree) +
         ",\"components\":" + std::to_string(structure.component_count) +
         ",\"diameter_bound\":" + std::to_string(structure.diameter_bound) +
         "}";
  out += ",\"rule\":\"" + JsonEscape(rule) + "\"";
  out += ",\"theorem\":\"" + JsonEscape(theorem) + "\"";
  out += ",\"costs\":[";
  for (std::size_t i = 0; i < costs.size(); ++i) {
    if (i > 0) {
      out += ",";
    }
    out += "{\"engine\":\"";
    out += EngineKindName(costs[i].engine);
    out += "\",\"eligible\":";
    out += costs[i].eligible ? "true" : "false";
    out += ",\"cost\":" + FormatCost(costs[i].cost);
    if (!costs[i].note.empty()) {
      out += ",\"note\":\"" + JsonEscape(costs[i].note) + "\"";
    }
    out += "}";
  }
  out += "]}";
  return out;
}

Result<PlanExplanation> PlanAuto(const Structure& structure,
                                 std::string_view text, bool query_mode,
                                 std::size_t output_count,
                                 const PlannerOptions& options) {
  FMTK_ASSIGN_OR_RETURN(
      AutoContext ctx,
      PrepareAuto(structure, nullptr, &text, query_mode, output_count,
                  options));
  PlanExplanation explain;
  FillExplanation(ctx, &explain);
  return explain;
}

Result<bool> EvaluateAuto(const Structure& structure, const Formula& sentence,
                          const PlannerOptions& options,
                          PlanExplanation* explain) {
  FMTK_ASSIGN_OR_RETURN(
      AutoContext ctx,
      PrepareAuto(structure, &sentence, nullptr, /*query_mode=*/false, 0,
                  options));
  if (!ctx.plan->analysis.free_variables.empty()) {
    return Status::InvalidArgument(
        "EvaluateAuto requires a sentence; use EvaluateQueryAuto for "
        "formulas with free variables");
  }
  FillExplanation(ctx, explain);
  return RunSentence(ctx.chosen, structure, *ctx.plan, ctx.stats, options,
                     ctx.record_feedback);
}

Result<bool> EvaluateAuto(const Structure& structure,
                          std::string_view sentence_text,
                          const PlannerOptions& options,
                          PlanExplanation* explain) {
  FMTK_ASSIGN_OR_RETURN(
      AutoContext ctx,
      PrepareAuto(structure, nullptr, &sentence_text, /*query_mode=*/false,
                  0, options));
  if (!ctx.plan->analysis.free_variables.empty()) {
    return Status::InvalidArgument(
        "EvaluateAuto requires a sentence; use EvaluateQueryAuto for "
        "formulas with free variables");
  }
  FillExplanation(ctx, explain);
  return RunSentence(ctx.chosen, structure, *ctx.plan, ctx.stats, options,
                     ctx.record_feedback);
}

namespace {

Status ValidateOutputs(const CachedFormulaPlan& plan,
                       const std::vector<std::string>& output_variables) {
  std::set<std::string> seen;
  for (const std::string& v : output_variables) {
    if (!seen.insert(v).second) {
      return Status::InvalidArgument("duplicate output variable: " + v);
    }
  }
  for (const std::string& v : plan.analysis.free_variables) {
    if (seen.find(v) == seen.end()) {
      return Status::InvalidArgument(
          "output variables must cover free variable " + v);
    }
  }
  return Status::OK();
}

}  // namespace

Result<Relation> EvaluateQueryAuto(
    const Structure& structure, const Formula& f,
    const std::vector<std::string>& output_variables,
    const PlannerOptions& options, PlanExplanation* explain) {
  FMTK_ASSIGN_OR_RETURN(
      AutoContext ctx,
      PrepareAuto(structure, &f, nullptr, /*query_mode=*/true,
                  output_variables.size(), options));
  Status valid = ValidateOutputs(*ctx.plan, output_variables);
  if (!valid.ok()) {
    return valid;
  }
  FillExplanation(ctx, explain);
  return RunQuery(ctx.chosen, structure, *ctx.plan, output_variables,
                  options, ctx.record_feedback);
}

Result<Relation> EvaluateQueryAuto(
    const Structure& structure, std::string_view query_text,
    const std::vector<std::string>& output_variables,
    const PlannerOptions& options, PlanExplanation* explain) {
  FMTK_ASSIGN_OR_RETURN(
      AutoContext ctx,
      PrepareAuto(structure, nullptr, &query_text, /*query_mode=*/true,
                  output_variables.size(), options));
  Status valid = ValidateOutputs(*ctx.plan, output_variables);
  if (!valid.ok()) {
    return valid;
  }
  FillExplanation(ctx, explain);
  return RunQuery(ctx.chosen, structure, *ctx.plan, output_variables,
                  options, ctx.record_feedback);
}

Result<std::map<std::string, Relation>> EvaluateDatalogAuto(
    const Structure& edb, const DatalogProgram& program,
    const PlannerOptions& options, DatalogStats* stats,
    PlanCacheLookup* lookup) {
  PlanCacheLookup local_lookup;
  PlanCacheLookup* lk = lookup != nullptr ? lookup : &local_lookup;
  std::shared_ptr<const CachedDatalogPlan> plan;
  if (options.use_cache) {
    PlanCache& cache =
        options.cache != nullptr ? *options.cache : DefaultPlanCache();
    FMTK_ASSIGN_OR_RETURN(plan,
                          cache.GetDatalogPlan(program, edb.signature(), lk));
  } else {
    PlanCache throwaway(PlanCache::Config{1, 2});
    FMTK_ASSIGN_OR_RETURN(
        plan, throwaway.GetDatalogPlan(program, edb.signature(), lk));
    lk->hit = false;
  }
  std::lock_guard<std::mutex> lock(plan->engines_mu);
  FMTK_ASSIGN_OR_RETURN(
      CompiledDatalogEngine engine,
      GetOrBindDatalogEngine(plan->engines, plan->program, edb));
  return engine.Evaluate(stats);
}

Result<std::map<std::string, Relation>> EvaluateDatalogAuto(
    const Structure& edb, std::string_view program_text,
    const PlannerOptions& options, DatalogStats* stats,
    PlanCacheLookup* lookup) {
  PlanCacheLookup local_lookup;
  PlanCacheLookup* lk = lookup != nullptr ? lookup : &local_lookup;
  std::shared_ptr<const CachedDatalogPlan> plan;
  if (options.use_cache) {
    PlanCache& cache =
        options.cache != nullptr ? *options.cache : DefaultPlanCache();
    FMTK_ASSIGN_OR_RETURN(
        plan, cache.GetDatalogPlanFromText(program_text, edb.signature(),
                                           lk));
  } else {
    PlanCache throwaway(PlanCache::Config{1, 2});
    FMTK_ASSIGN_OR_RETURN(
        plan, throwaway.GetDatalogPlanFromText(program_text, edb.signature(),
                                               lk));
    lk->hit = false;
  }
  std::lock_guard<std::mutex> lock(plan->engines_mu);
  FMTK_ASSIGN_OR_RETURN(
      CompiledDatalogEngine engine,
      GetOrBindDatalogEngine(plan->engines, plan->program, edb));
  return engine.Evaluate(stats);
}

}  // namespace fmtk
