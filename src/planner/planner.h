#ifndef FMTK_PLANNER_PLANNER_H_
#define FMTK_PLANNER_PLANNER_H_

#include <cstddef>
#include <cstdint>
#include <map>
#include <optional>
#include <string>
#include <string_view>
#include <vector>

#include "base/parallel.h"
#include "base/result.h"
#include "datalog/evaluator.h"
#include "logic/formula.h"
#include "planner/plan_cache.h"
#include "structures/relation.h"
#include "structures/structure.h"
#include "structures/structure_stats.h"

namespace fmtk {

/// The evaluation strategies EvaluateAuto routes between.
enum class EngineKind {
  /// The reference interpreter (ModelChecker / EvaluateQueryNaive):
  /// dominated by kCompiled on every input, kept as a forceable oracle.
  kNaive,
  /// Compiled slot evaluation, serial (eval/compiled_eval.h). For queries:
  /// domain^m enumeration over the cached compiled plan's row fast path.
  kCompiled,
  /// Compiled evaluation with the outer-quantifier parallel fan-out.
  kParallel,
  /// Bottom-up relational algebra (eval/query_eval.h EvaluateQuery).
  kRelational,
  /// Existential-positive lowering to nonrecursive Datalog on the compiled
  /// semi-naive engine (planner/fo_to_datalog.h).
  kDatalog,
  /// The Hanf bounded-degree histogram evaluator
  /// (core/algorithmic/bounded_degree.h) — survey Thm 3.10/3.11.
  kBoundedDegree,
};

/// "naive", "compiled", "parallel", "relational", "datalog",
/// "bounded-degree".
const char* EngineKindName(EngineKind kind);

/// Inverse of EngineKindName (also accepts "bounded_degree"); nullopt for
/// unknown names.
std::optional<EngineKind> ParseEngineKind(std::string_view name);

struct PlannerOptions {
  /// Bypass the cost model and run this engine (Unsupported when the
  /// engine cannot evaluate the query, e.g. Datalog outside the
  /// existential-positive fragment).
  std::optional<EngineKind> force_engine;
  /// Use (and fill) the plan cache. Off = canonicalize + compile fresh.
  bool use_cache = true;
  /// Cache to use; nullptr = the process-global DefaultPlanCache().
  PlanCache* cache = nullptr;
  /// Threads the parallel route may assume; 0 = hardware concurrency.
  std::size_t threads = 0;
  /// Bounded-degree route: largest estimated r-ball size worth the
  /// histogram pass, and the safety factor — the histogram pass must be
  /// estimated at most this fraction of the compiled scan before the
  /// route is taken (so even a verdict-cache miss, which falls back to one
  /// compiled check, costs at most (1 + safety) of the compiled route).
  std::size_t bounded_degree_max_ball = 256;
  double bounded_degree_safety = 0.15;
};

/// Cost-model verdict for one engine (for --explain).
struct EngineCost {
  EngineKind engine = EngineKind::kCompiled;
  bool eligible = false;
  /// Abstract work units (comparable across engines, not wall time).
  double cost = 0.0;
  /// Why ineligible / what the estimate assumed.
  std::string note;
};

/// Everything --explain prints: the chosen route, the analyzer measures and
/// structure statistics that drove it, the survey theorem justifying it,
/// and the per-engine cost table.
struct PlanExplanation {
  EngineKind chosen = EngineKind::kCompiled;
  /// The routing rule that fired, in words.
  std::string rule;
  /// The survey result backing the rule (e.g. "Thm 3.10/3.11: bounded
  /// degree => Hanf-local => linear time").
  std::string theorem;
  bool cache_hit = false;
  bool text_cache_hit = false;
  std::string canonical_text;
  std::uint64_t signature_fingerprint = 0;

  /// Analyzer measures (of the canonical formula).
  std::size_t quantifier_rank = 0;
  std::size_t variable_width = 0;
  std::size_t node_count = 0;
  std::size_t free_variable_count = 0;
  bool safe_range = false;
  bool existential_positive = false;

  /// How the compiled-scan estimate was priced (PR 9 short-circuit
  /// feedback): "static" = full nodes * n^qr scan model, "measured" = this
  /// exact (structure, generation) had a recorded compiled run and its
  /// EvalStats::node_visits priced the route, "prior" = another
  /// structure's observed visited/static ratio discounted the scan.
  std::string scan_estimate = "static";
  /// The effective discount applied to the static full-scan estimate
  /// (1.0 = no discount; "measured" runs report visits / static scan).
  double scan_ratio = 1.0;
  /// EvalStats::short_circuits of the recorded run ("measured"/"prior").
  std::uint64_t observed_short_circuits = 0;

  StructureStats structure;
  std::vector<EngineCost> costs;

  /// Multi-line, human-readable --explain block.
  std::string ToString() const;
  /// One JSON object (machine-readable --explain / fmtk_lint --json).
  std::string ToJson() const;
};

/// Cost-estimate export (PR 9): plan acquisition + routing WITHOUT
/// execution. The query server's admission control calls this to price a
/// request against its budgets before committing a worker to it; repeat
/// texts hit the plan cache, so admission adds no parse/analyze/compile
/// work to admitted requests. `query_mode` prices EvaluateQueryAuto's
/// domain^m enumeration with `output_count` output columns; sentences pass
/// query_mode = false. The returned explanation's `costs` row for `chosen`
/// carries the work estimate in compiled-slot-op units.
Result<PlanExplanation> PlanAuto(const Structure& structure,
                                 std::string_view text, bool query_mode,
                                 std::size_t output_count,
                                 const PlannerOptions& options = {});

/// Decides structure ⊨ sentence, routing to the estimated-fastest engine.
/// Verdicts are identical to every engine's direct invocation (the engines
/// are differential-tested against each other). `sentence` must have no
/// free variables.
Result<bool> EvaluateAuto(const Structure& structure, const Formula& sentence,
                          const PlannerOptions& options = {},
                          PlanExplanation* explain = nullptr);

/// Text front door: repeat query strings skip parse + analyze + compile
/// via the exact-text cache layer.
Result<bool> EvaluateAuto(const Structure& structure,
                          std::string_view sentence_text,
                          const PlannerOptions& options = {},
                          PlanExplanation* explain = nullptr);

/// ans(φ(x̄), A) with automatic engine choice. Matches EvaluateQuery's
/// semantics: column i is output_variables[i], the list must cover every
/// free variable (of the canonicalized query) and contain no duplicates;
/// extra variables range over the whole domain.
Result<Relation> EvaluateQueryAuto(
    const Structure& structure, const Formula& f,
    const std::vector<std::string>& output_variables,
    const PlannerOptions& options = {}, PlanExplanation* explain = nullptr);

Result<Relation> EvaluateQueryAuto(
    const Structure& structure, std::string_view query_text,
    const std::vector<std::string>& output_variables,
    const PlannerOptions& options = {}, PlanExplanation* explain = nullptr);

/// Datalog serving path: the cached rule-lowering. The canonicalized
/// program's analysis and the per-structure compiled engine are memoized on
/// the plan cache entry, so repeat programs skip parse/analyze/compile and
/// repeat (program, structure) pairs skip rule binding too. Results equal
/// EvaluateDatalog(program, edb, kSemiNaive).
Result<std::map<std::string, Relation>> EvaluateDatalogAuto(
    const Structure& edb, const DatalogProgram& program,
    const PlannerOptions& options = {}, DatalogStats* stats = nullptr,
    PlanCacheLookup* lookup = nullptr);

Result<std::map<std::string, Relation>> EvaluateDatalogAuto(
    const Structure& edb, std::string_view program_text,
    const PlannerOptions& options = {}, DatalogStats* stats = nullptr,
    PlanCacheLookup* lookup = nullptr);

}  // namespace fmtk

#endif  // FMTK_PLANNER_PLANNER_H_
