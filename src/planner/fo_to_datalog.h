#ifndef FMTK_PLANNER_FO_TO_DATALOG_H_
#define FMTK_PLANNER_FO_TO_DATALOG_H_

#include <string>
#include <vector>

#include "base/result.h"
#include "datalog/program.h"
#include "logic/formula.h"
#include "structures/signature.h"

namespace fmtk {

/// A nonrecursive Datalog program equivalent to an existential-positive FO
/// query: the survey's §4 lowering in the easy direction (every EP query is
/// a union of conjunctive queries, i.e. a nonrecursive program). Lets the
/// planner route join-heavy queries onto the compiled semi-naive engine's
/// index-driven join orders.
struct FoDatalogTranslation {
  DatalogProgram program;
  /// The IDB predicate holding the answers.
  std::string output_predicate;
  /// Its columns, in order: the query's free variables sorted by name.
  std::vector<std::string> output_variables;
};

/// Translates an existential-positive, constant-free formula (∧, ∨, ∃,
/// variable equalities inside conjunctions — equality handled by
/// unification into repeated variables) into one IDB predicate per
/// connective scope. Fails with Unsupported for anything outside the
/// fragment (negation, →, ↔, ∀, counting, constants, equalities that no
/// atom ranges over) and for disjuncts with unequal free-variable sets
/// (not range-restrictable). The resulting program is equivalent to φ on
/// every structure with a nonempty domain (∃x over an x-free body is the
/// one empty-domain caveat, shared with prenexing).
Result<FoDatalogTranslation> TranslateToDatalog(const Formula& f,
                                                const Signature& signature);

}  // namespace fmtk

#endif  // FMTK_PLANNER_FO_TO_DATALOG_H_
