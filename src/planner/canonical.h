#ifndef FMTK_PLANNER_CANONICAL_H_
#define FMTK_PLANNER_CANONICAL_H_

#include <cstdint>
#include <string>

#include "datalog/program.h"
#include "logic/formula.h"
#include "structures/signature.h"

namespace fmtk {

/// Rewrites φ into a canonical representative of its syntactic equivalence
/// class so the plan cache unifies queries that only differ in bound
/// variable names, commutative-connective order, or foldable constants:
///
///   1. constant folding via Simplify() — the transform implementing the
///      analyzer's FMTK014/FMTK015 folding hints (double negation,
///      true/false units, flattened ∧/∨); quantified constants are left
///      alone exactly as Simplify leaves them (∃x.true is not true on the
///      empty structure). FMTK016 trivial equalities (x = x) are NOT
///      folded: dropping them would change the free-variable set and the
///      safe-range profile of subformulas.
///   2. bound-variable renaming to scope-depth names ("%0", "%1", ...; a
///      longer prefix is chosen in the degenerate case where the input
///      already uses such names) — α-equivalent formulas map to the same
///      representative, and sibling quantifiers reuse names, which can
///      only shrink the FO^k width measure. Free variables keep their
///      names, so a compiled plan's free-variable order is unchanged.
///   3. sorted + deduplicated children of the commutative connectives
///      (∧, ∨, ↔), ordered by canonical text.
///
/// Preserves logical equivalence on all structures (including empty ones).
Formula CanonicalizeFormula(const Formula& f);

/// 64-bit fingerprint of a signature (relation names/arities + constant
/// names). Exposed for --explain output; cache keys embed the exact
/// signature text, not the fingerprint, so fingerprint collisions cannot
/// alias plans.
std::uint64_t SignatureFingerprint(const Signature& signature);

/// The stable cache identity of a query: canonical formula + rendered text
/// + the (canonical text, signature) key string and its fingerprint.
struct CanonicalQuery {
  Formula formula;
  std::string text;       // formula.ToString()
  std::string key;        // text + signature text: exact, collision-free
  std::uint64_t fingerprint = 0;  // Mix64-combined hash of `key`
};

CanonicalQuery CanonicalizeQuery(const Formula& f, const Signature& signature);

/// Canonical representative of a Datalog program: per-rule variable
/// renaming in first-occurrence order (head, then body atoms left to
/// right). Rule order and atom order are preserved — they are semantically
/// irrelevant but the engine's join-order heuristics see them, so the
/// cache only unifies programs that differ in variable naming.
DatalogProgram CanonicalizeProgram(const DatalogProgram& program);

/// Cache key for a (program, signature) pair: canonical program text +
/// signature text.
std::string CanonicalProgramKey(const DatalogProgram& canonical_program,
                                const Signature& signature);

}  // namespace fmtk

#endif  // FMTK_PLANNER_CANONICAL_H_
