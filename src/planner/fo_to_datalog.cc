#include "planner/fo_to_datalog.h"

#include <algorithm>
#include <map>
#include <set>
#include <string>
#include <utility>
#include <vector>

#include "logic/analysis.h"

namespace fmtk {

namespace {

// Union-find over variable names for equality unification inside ∧.
class VarUnion {
 public:
  const std::string& Find(const std::string& v) {
    auto it = parent_.find(v);
    if (it == parent_.end()) {
      it = parent_.emplace(v, v).first;
    }
    if (it->second == v) {
      return it->first;
    }
    // Path compression via recursion on the parent name.
    const std::string root = Find(it->second);
    parent_[v] = root;
    return parent_.find(v)->second;
  }

  void Union(const std::string& a, const std::string& b) {
    std::string ra = Find(a);
    std::string rb = Find(b);
    if (ra == rb) {
      return;
    }
    // Deterministic: smaller name wins as representative.
    if (rb < ra) {
      std::swap(ra, rb);
    }
    parent_[rb] = ra;
  }

 private:
  std::map<std::string, std::string> parent_;
};

struct Translator {
  const Signature* signature;
  DatalogProgram program;
  std::size_t next_pred = 0;

  std::string FreshPredicate() {
    // '$' cannot appear in parsed relation identifiers, so fresh IDB names
    // cannot collide with EDB names; programmatically built signatures are
    // re-checked by CompiledDatalogEngine::Create's collision diagnostics.
    return "q$" + std::to_string(next_pred++);
  }

  // Translates φ and returns the body atom standing for it: either an EDB
  // atom used inline or a call to a fresh IDB predicate whose rules were
  // appended to `program`. The atom's variable set equals fv(φ).
  Result<DlAtom> Translate(const Formula& f) {
    switch (f.kind()) {
      case FormulaKind::kAtom: {
        DlAtom atom;
        atom.predicate = f.relation_name();
        atom.terms.reserve(f.terms().size());
        for (const Term& t : f.terms()) {
          if (t.is_constant()) {
            // FO constants are named symbols interpreted by the structure;
            // Datalog constants are raw domain elements. The planner would
            // need the structure to bridge them, which would make the
            // cached program structure-dependent — out of the fragment.
            return Status::Unsupported(
                "FO->Datalog: constant term '" + t.name + "' in atom");
          }
          atom.terms.push_back(DlTerm::Var(t.name));
        }
        return atom;
      }
      case FormulaKind::kAnd:
        return TranslateAnd(f.children());
      case FormulaKind::kOr: {
        if (f.child_count() == 0) {
          return Status::Unsupported("FO->Datalog: empty disjunction");
        }
        const std::set<std::string> fv = FreeVariables(f);
        // All disjunct rules share one predicate name (union of CQs).
        const std::string pred = FreshPredicate();
        for (const Formula& child : f.children()) {
          if (FreeVariables(child) != fv) {
            return Status::Unsupported(
                "FO->Datalog: disjuncts with unequal free variables");
          }
          FMTK_ASSIGN_OR_RETURN(DlAtom atom, Translate(child));
          DlRule rule;
          rule.head = HeadAtom(pred, fv);
          rule.body.push_back(std::move(atom));
          program.AddRule(std::move(rule));
        }
        return CallAtom(pred, fv);
      }
      case FormulaKind::kExists: {
        const std::set<std::string> fv = FreeVariables(f);
        FMTK_ASSIGN_OR_RETURN(DlAtom atom, Translate(f.body()));
        DlRule rule;
        const std::string pred = FreshPredicate();
        rule.head = HeadAtom(pred, fv);
        rule.body.push_back(std::move(atom));
        program.AddRule(std::move(rule));
        return CallAtom(pred, fv);
      }
      case FormulaKind::kEqual:
        return Status::Unsupported(
            "FO->Datalog: equality outside a conjunction");
      case FormulaKind::kTrue:
      case FormulaKind::kFalse:
        return Status::Unsupported("FO->Datalog: constant subformula");
      case FormulaKind::kNot:
      case FormulaKind::kImplies:
      case FormulaKind::kIff:
      case FormulaKind::kForall:
      case FormulaKind::kCountExists:
        return Status::Unsupported(
            "FO->Datalog: outside the existential-positive fragment");
    }
    return Status::Internal("FO->Datalog: unknown formula kind");
  }

  Result<DlAtom> TranslateAnd(const std::vector<Formula>& children) {
    VarUnion unify;
    std::vector<DlAtom> body;
    std::set<std::string> fv;
    for (const Formula& child : children) {
      for (const std::string& v : FreeVariables(child)) {
        fv.insert(v);
      }
      if (child.kind() == FormulaKind::kEqual) {
        const Term& a = child.terms()[0];
        const Term& b = child.terms()[1];
        if (!a.is_variable() || !b.is_variable()) {
          return Status::Unsupported(
              "FO->Datalog: equality with a constant side");
        }
        unify.Union(a.name, b.name);
        continue;
      }
      FMTK_ASSIGN_OR_RETURN(DlAtom atom, Translate(child));
      body.push_back(std::move(atom));
    }
    if (body.empty()) {
      return Status::Unsupported(
          "FO->Datalog: conjunction of equalities only");
    }
    // Substitute representatives into the body calls; the head repeats the
    // representative for unified columns (q(x, x) :- ...), which is how
    // positive Datalog expresses equality.
    for (DlAtom& atom : body) {
      for (DlTerm& t : atom.terms) {
        if (t.is_variable) {
          t.variable = unify.Find(t.variable);
        }
      }
    }
    DlRule rule;
    const std::string pred = FreshPredicate();
    rule.head.predicate = pred;
    for (const std::string& v : fv) {
      rule.head.terms.push_back(DlTerm::Var(unify.Find(v)));
    }
    rule.body = std::move(body);
    program.AddRule(std::move(rule));
    return CallAtom(pred, fv);
  }

  static DlAtom HeadAtom(std::string pred, const std::set<std::string>& fv) {
    DlAtom atom;
    atom.predicate = std::move(pred);
    for (const std::string& v : fv) {
      atom.terms.push_back(DlTerm::Var(v));
    }
    return atom;
  }

  static DlAtom CallAtom(std::string pred, const std::set<std::string>& fv) {
    return HeadAtom(std::move(pred), fv);
  }
};

}  // namespace

Result<FoDatalogTranslation> TranslateToDatalog(const Formula& f,
                                                const Signature& signature) {
  Translator tr;
  tr.signature = &signature;
  FMTK_ASSIGN_OR_RETURN(DlAtom root, tr.Translate(f));

  FoDatalogTranslation out;
  const std::set<std::string> fv = FreeVariables(f);
  out.output_variables.assign(fv.begin(), fv.end());

  // Always materialize a dedicated output predicate (the root may be a bare
  // EDB atom, possibly with repeated variables).
  DlRule ans;
  ans.head = Translator::HeadAtom("q$ans", fv);
  ans.body.push_back(std::move(root));
  tr.program.AddRule(std::move(ans));
  out.output_predicate = "q$ans";

  // Range restriction / collision checks: anything the unification step
  // could not ground (e.g. ∃x. x = y) fails here instead of at run time.
  Status valid = tr.program.Validate();
  if (!valid.ok()) {
    return Status::Unsupported("FO->Datalog: " + valid.ToString());
  }
  out.program = std::move(tr.program);
  return out;
}

}  // namespace fmtk
