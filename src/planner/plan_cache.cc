#include "planner/plan_cache.h"

#include <algorithm>
#include <string>
#include <utility>

#include "logic/parser.h"

namespace fmtk {

namespace {

// Fragment scan for routing: existential-positive (∧/∨/∃/atoms/variable
// equalities — the FO->Datalog fragment), constant terms, counting
// quantifiers. One pass over the canonical AST.
struct FragmentFlags {
  bool existential_positive = true;
  bool has_constant_terms = false;
  bool has_counting = false;
};

void ScanFragment(const Formula& f, FragmentFlags& flags) {
  switch (f.kind()) {
    case FormulaKind::kAtom:
    case FormulaKind::kEqual:
      for (const Term& t : f.terms()) {
        if (t.is_constant()) {
          flags.has_constant_terms = true;
        }
      }
      return;
    case FormulaKind::kTrue:
    case FormulaKind::kFalse:
      flags.existential_positive = false;  // not expressible in a CQ body
      return;
    case FormulaKind::kAnd:
    case FormulaKind::kOr:
      for (const Formula& child : f.children()) {
        ScanFragment(child, flags);
      }
      return;
    case FormulaKind::kExists:
      ScanFragment(f.body(), flags);
      return;
    case FormulaKind::kCountExists:
      flags.has_counting = true;
      flags.existential_positive = false;
      ScanFragment(f.body(), flags);
      return;
    case FormulaKind::kNot:
    case FormulaKind::kImplies:
    case FormulaKind::kIff:
      flags.existential_positive = false;
      for (const Formula& child : f.children()) {
        ScanFragment(child, flags);
      }
      return;
    case FormulaKind::kForall:
      flags.existential_positive = false;
      ScanFragment(f.body(), flags);
      return;
  }
}

}  // namespace

std::string PlanCacheStats::ToString() const {
  return "hits=" + std::to_string(hits) + " misses=" + std::to_string(misses) +
         " insertions=" + std::to_string(insertions) +
         " evictions=" + std::to_string(evictions) +
         " entries=" + std::to_string(entries);
}

PlanCacheStats PlanCache::stats() const {
  PlanCacheStats total = formulas_.stats();
  total += programs_.stats();
  return total;
}

Result<std::shared_ptr<const CachedFormulaPlan>> PlanCache::GetFormulaPlan(
    const Formula& f, const Signature& signature, PlanCacheLookup* lookup) {
  CanonicalQuery canonical = CanonicalizeQuery(f, signature);
  const std::string key = "c:" + canonical.key;
  if (lookup != nullptr) {
    lookup->key = key;
  }
  if (std::shared_ptr<const CachedFormulaPlan> hit = formulas_.Get(key)) {
    if (lookup != nullptr) {
      lookup->hit = true;
    }
    return hit;
  }

  FoAnalyzerOptions options;
  options.signature = &signature;
  FoAnalysis analysis = AnalyzeFormula(canonical.formula, options);
  if (!analysis.ok()) {
    return analysis.status();
  }
  FMTK_ASSIGN_OR_RETURN(
      CompiledFormula compiled,
      CompiledFormula::Compile(canonical.formula, signature));

  auto plan = std::make_shared<CachedFormulaPlan>(
      std::move(canonical), std::move(compiled), std::move(analysis));
  FragmentFlags flags;
  ScanFragment(plan->canonical.formula, flags);
  plan->existential_positive = flags.existential_positive;
  plan->has_constant_terms = flags.has_constant_terms;
  plan->has_counting = flags.has_counting;
  return formulas_.Insert(key, std::move(plan));
}

Result<std::shared_ptr<const CachedFormulaPlan>>
PlanCache::GetFormulaPlanFromText(std::string_view text,
                                  const Signature& signature,
                                  PlanCacheLookup* lookup) {
  const std::string text_key =
      "t:" + std::string(text) + "\n@sig " + signature.ToString();
  if (std::shared_ptr<const CachedFormulaPlan> hit = formulas_.Get(text_key)) {
    if (lookup != nullptr) {
      lookup->hit = true;
      lookup->text_hit = true;
      lookup->key = "c:" + hit->canonical.key;
    }
    return hit;
  }
  FMTK_ASSIGN_OR_RETURN(Formula f, ParseFormula(text, &signature));
  FMTK_ASSIGN_OR_RETURN(std::shared_ptr<const CachedFormulaPlan> plan,
                        GetFormulaPlan(f, signature, lookup));
  formulas_.Insert(text_key, plan);
  return plan;
}

Result<std::shared_ptr<const CachedDatalogPlan>> PlanCache::GetDatalogPlan(
    const DatalogProgram& program, const Signature& signature,
    PlanCacheLookup* lookup) {
  DatalogProgram canonical = CanonicalizeProgram(program);
  const std::string key = "d:" + CanonicalProgramKey(canonical, signature);
  if (lookup != nullptr) {
    lookup->key = key;
  }
  if (std::shared_ptr<const CachedDatalogPlan> hit = programs_.Get(key)) {
    if (lookup != nullptr) {
      lookup->hit = true;
    }
    return hit;
  }

  DatalogAnalyzerOptions options;
  options.signature = &signature;
  DatalogAnalysis analysis = AnalyzeProgram(canonical, options);
  if (!analysis.ok()) {
    return analysis.status();
  }
  auto plan = std::make_shared<CachedDatalogPlan>(std::move(canonical),
                                                  std::move(analysis));
  return programs_.Insert(key, std::move(plan));
}

Result<std::shared_ptr<const CachedDatalogPlan>>
PlanCache::GetDatalogPlanFromText(std::string_view text,
                                  const Signature& signature,
                                  PlanCacheLookup* lookup) {
  const std::string text_key =
      "u:" + std::string(text) + "\n@sig " + signature.ToString();
  if (std::shared_ptr<const CachedDatalogPlan> hit = programs_.Get(text_key)) {
    if (lookup != nullptr) {
      lookup->hit = true;
      lookup->text_hit = true;
    }
    return hit;
  }
  FMTK_ASSIGN_OR_RETURN(DatalogProgram program,
                        ParseDatalogProgram(text, /*validate=*/false));
  FMTK_ASSIGN_OR_RETURN(std::shared_ptr<const CachedDatalogPlan> plan,
                        GetDatalogPlan(program, signature, lookup));
  programs_.Insert(text_key, plan);
  return plan;
}

PlanCache& DefaultPlanCache() {
  static PlanCache* cache = new PlanCache();
  return *cache;
}

Result<CompiledDatalogEngine> GetOrBindDatalogEngine(
    std::vector<BoundDatalogEngine>& memo, const DatalogProgram& program,
    const Structure& edb) {
  constexpr std::size_t kMaxBoundEngines = 4;
  for (std::size_t i = 0; i < memo.size(); ++i) {
    if (memo[i].structure_uid == edb.uid() &&
        memo[i].structure_generation == edb.generation()) {
      if (i != 0) {
        std::rotate(memo.begin(), memo.begin() + i, memo.begin() + i + 1);
      }
      return memo.front().engine;
    }
  }
  FMTK_ASSIGN_OR_RETURN(CompiledDatalogEngine engine,
                        CompiledDatalogEngine::Create(program, edb));
  memo.insert(memo.begin(),
              BoundDatalogEngine{edb.uid(), edb.generation(), engine});
  if (memo.size() > kMaxBoundEngines) {
    memo.pop_back();
  }
  return engine;
}

}  // namespace fmtk
