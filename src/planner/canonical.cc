#include "planner/canonical.h"

#include <algorithm>
#include <map>
#include <set>
#include <string>
#include <utility>
#include <vector>

#include "base/hash.h"
#include "logic/analysis.h"
#include "logic/transform.h"

namespace fmtk {

namespace {

// Environment mapping original bound-variable names to canonical ones.
// Scope-depth naming: the quantifier at nesting depth d binds prefix+d, so
// α-equivalent formulas canonicalize identically and disjoint sibling
// scopes reuse the same canonical name (never widening FO^k width).
struct CanonEnv {
  const std::string* prefix;
  std::map<std::string, std::string> rename;
};

Term CanonTerm(const Term& t, const CanonEnv& env) {
  if (t.is_variable()) {
    auto it = env.rename.find(t.name);
    if (it != env.rename.end()) {
      return Term::Var(it->second);
    }
  }
  return t;
}

Formula CanonRec(const Formula& f, CanonEnv& env, std::size_t depth);

// Canonicalizes the children of a commutative connective: recurse, sort by
// canonical text, drop structural duplicates.
std::vector<Formula> CanonSortedChildren(const Formula& f, CanonEnv& env,
                                         std::size_t depth) {
  std::vector<std::pair<std::string, Formula>> keyed;
  keyed.reserve(f.child_count());
  for (const Formula& child : f.children()) {
    Formula canon = CanonRec(child, env, depth);
    keyed.emplace_back(canon.ToString(), std::move(canon));
  }
  std::sort(keyed.begin(), keyed.end(),
            [](const auto& a, const auto& b) { return a.first < b.first; });
  std::vector<Formula> out;
  out.reserve(keyed.size());
  for (std::size_t i = 0; i < keyed.size(); ++i) {
    if (i > 0 && keyed[i].first == keyed[i - 1].first) {
      continue;  // idempotence: φ ∧ φ ≡ φ, φ ∨ φ ≡ φ
    }
    out.push_back(std::move(keyed[i].second));
  }
  return out;
}

Formula CanonRec(const Formula& f, CanonEnv& env, std::size_t depth) {
  switch (f.kind()) {
    case FormulaKind::kTrue:
    case FormulaKind::kFalse:
      return f;
    case FormulaKind::kAtom: {
      std::vector<Term> terms;
      terms.reserve(f.terms().size());
      for (const Term& t : f.terms()) {
        terms.push_back(CanonTerm(t, env));
      }
      return Formula::Atom(f.relation_name(), std::move(terms));
    }
    case FormulaKind::kEqual: {
      Term a = CanonTerm(f.terms()[0], env);
      Term b = CanonTerm(f.terms()[1], env);
      // Equality is symmetric: order the sides by rendered form.
      const std::string ka =
          (a.is_constant() ? "c:" : "v:") + a.name;
      const std::string kb =
          (b.is_constant() ? "c:" : "v:") + b.name;
      if (kb < ka) {
        std::swap(a, b);
      }
      return Formula::Equal(std::move(a), std::move(b));
    }
    case FormulaKind::kNot: {
      Formula child = CanonRec(f.child(0), env, depth);
      if (child.kind() == FormulaKind::kNot) {
        return child.child(0);  // ¬¬φ (dedup/sorting can re-expose it)
      }
      return Formula::Not(std::move(child));
    }
    case FormulaKind::kAnd: {
      std::vector<Formula> children = CanonSortedChildren(f, env, depth);
      if (children.size() == 1) {
        return std::move(children[0]);
      }
      return Formula::And(std::move(children));
    }
    case FormulaKind::kOr: {
      std::vector<Formula> children = CanonSortedChildren(f, env, depth);
      if (children.size() == 1) {
        return std::move(children[0]);
      }
      return Formula::Or(std::move(children));
    }
    case FormulaKind::kImplies: {
      Formula a = CanonRec(f.child(0), env, depth);
      Formula b = CanonRec(f.child(1), env, depth);
      return Formula::Implies(std::move(a), std::move(b));
    }
    case FormulaKind::kIff: {
      Formula a = CanonRec(f.child(0), env, depth);
      Formula b = CanonRec(f.child(1), env, depth);
      if (b.ToString() < a.ToString()) {
        std::swap(a, b);
      }
      return Formula::Iff(std::move(a), std::move(b));
    }
    case FormulaKind::kExists:
    case FormulaKind::kForall:
    case FormulaKind::kCountExists: {
      const std::string canonical_name =
          *env.prefix + std::to_string(depth);
      auto it = env.rename.find(f.variable());
      std::string saved;
      const bool had = it != env.rename.end();
      if (had) {
        saved = it->second;
        it->second = canonical_name;
      } else {
        env.rename.emplace(f.variable(), canonical_name);
      }
      Formula body = CanonRec(f.body(), env, depth + 1);
      if (had) {
        env.rename[f.variable()] = saved;
      } else {
        env.rename.erase(f.variable());
      }
      switch (f.kind()) {
        case FormulaKind::kExists:
          return Formula::Exists(canonical_name, std::move(body));
        case FormulaKind::kForall:
          return Formula::Forall(canonical_name, std::move(body));
        default:
          return Formula::CountExists(f.count(), canonical_name,
                                      std::move(body));
      }
    }
  }
  return f;  // unreachable
}

}  // namespace

Formula CanonicalizeFormula(const Formula& f) {
  const Formula folded = Simplify(f);
  // Pick a bound-variable prefix no existing variable name starts with, so
  // renaming can never capture a free variable ("%" unless the input
  // already uses such names — parser identifiers never do).
  std::string prefix = "%";
  const std::set<std::string> all = AllVariables(folded);
  bool clash = true;
  while (clash) {
    clash = false;
    for (const std::string& name : all) {
      if (name.rfind(prefix, 0) == 0) {
        prefix += "%";
        clash = true;
        break;
      }
    }
  }
  CanonEnv env{&prefix, {}};
  return CanonRec(folded, env, 0);
}

std::uint64_t SignatureFingerprint(const Signature& signature) {
  std::size_t seed = static_cast<std::size_t>(Mix64(0x464d544bULL));  // FMTK
  for (std::size_t i = 0; i < signature.relation_count(); ++i) {
    HashCombine(seed, signature.relation(i).name);
    HashCombine(seed, signature.relation(i).arity);
  }
  for (std::size_t i = 0; i < signature.constant_count(); ++i) {
    HashCombine(seed, signature.constant_name(i));
  }
  return Mix64(seed);
}

CanonicalQuery CanonicalizeQuery(const Formula& f,
                                 const Signature& signature) {
  CanonicalQuery out;
  out.formula = CanonicalizeFormula(f);
  out.text = out.formula.ToString();
  out.key = out.text + "\n@sig " + signature.ToString();
  out.fingerprint = Mix64(ScalarHash(out.key));
  return out;
}

namespace {

DlAtom CanonAtom(const DlAtom& atom,
                 std::map<std::string, std::string>& rename,
                 std::size_t& next_id) {
  DlAtom out;
  out.predicate = atom.predicate;
  out.terms.reserve(atom.terms.size());
  for (const DlTerm& t : atom.terms) {
    if (!t.is_variable) {
      out.terms.push_back(t);
      continue;
    }
    auto [it, inserted] = rename.emplace(t.variable, std::string());
    if (inserted) {
      it->second = "v" + std::to_string(next_id++);
    }
    out.terms.push_back(DlTerm::Var(it->second));
  }
  return out;
}

}  // namespace

DatalogProgram CanonicalizeProgram(const DatalogProgram& program) {
  DatalogProgram out;
  for (const DlRule& rule : program.rules()) {
    std::map<std::string, std::string> rename;
    std::size_t next_id = 0;
    DlRule canon;
    canon.head = CanonAtom(rule.head, rename, next_id);
    canon.body.reserve(rule.body.size());
    for (const DlAtom& atom : rule.body) {
      canon.body.push_back(CanonAtom(atom, rename, next_id));
    }
    out.AddRule(std::move(canon));
  }
  return out;
}

std::string CanonicalProgramKey(const DatalogProgram& canonical_program,
                                const Signature& signature) {
  return canonical_program.ToString() + "\n@sig " + signature.ToString();
}

}  // namespace fmtk
