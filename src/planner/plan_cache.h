#ifndef FMTK_PLANNER_PLAN_CACHE_H_
#define FMTK_PLANNER_PLAN_CACHE_H_

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <list>
#include <memory>
#include <mutex>
#include <optional>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

#include "analysis/datalog_analyzer.h"
#include "analysis/fo_analyzer.h"
#include "base/flat_hash.h"
#include "base/hash.h"
#include "base/result.h"
#include "core/algorithmic/bounded_degree.h"
#include "datalog/compiled_engine.h"
#include "datalog/program.h"
#include "eval/compiled_eval.h"
#include "planner/canonical.h"
#include "planner/fo_to_datalog.h"
#include "structures/signature.h"
#include "structures/structure.h"

namespace fmtk {

/// Exact cache counters (summed across shards; each counter is updated
/// under its shard's mutex, so concurrent hammering still adds up:
/// hits + misses == lookups, insertions - evictions == entries).
struct PlanCacheStats {
  std::uint64_t hits = 0;
  std::uint64_t misses = 0;
  std::uint64_t insertions = 0;
  std::uint64_t evictions = 0;
  std::size_t entries = 0;

  PlanCacheStats& operator+=(const PlanCacheStats& other) {
    hits += other.hits;
    misses += other.misses;
    insertions += other.insertions;
    evictions += other.evictions;
    entries += other.entries;
    return *this;
  }

  /// e.g. "hits=12 misses=3 insertions=3 evictions=0 entries=3".
  std::string ToString() const;
};

/// A sharded, thread-safe LRU map from string keys to shared const values.
/// Shard = Mix64(hash(key)) masked to a power-of-two shard count; each
/// shard holds a recency list plus a FlatHashMap from key to list iterator
/// (std::list iterators are stable across the map's rehashes). Values are
/// handed out as shared_ptr<const V>, so an entry evicted while in use
/// stays alive for its readers.
template <typename V>
class ShardedLruCache {
 public:
  struct Config {
    std::size_t shards = 8;              // rounded up to a power of two
    std::size_t capacity_per_shard = 64; // >= 1
  };

  explicit ShardedLruCache(Config config = {}) {
    std::size_t shard_count = 1;
    while (shard_count < config.shards) {
      shard_count <<= 1;
    }
    capacity_per_shard_ =
        config.capacity_per_shard == 0 ? 1 : config.capacity_per_shard;
    shards_.reserve(shard_count);
    for (std::size_t i = 0; i < shard_count; ++i) {
      shards_.push_back(std::make_unique<Shard>());
    }
  }

  /// Looks `key` up, bumping it to most-recently-used. Exactly one hit or
  /// one miss is counted per call.
  std::shared_ptr<const V> Get(const std::string& key) {
    Shard& shard = ShardFor(key);
    std::lock_guard<std::mutex> lock(shard.mu);
    auto* it = shard.index.Find(key);
    if (it == nullptr) {
      ++shard.misses;
      return nullptr;
    }
    ++shard.hits;
    shard.lru.splice(shard.lru.begin(), shard.lru, *it);
    return (*it)->value;
  }

  /// Inserts `value` under `key` unless the key is already present (the
  /// first inserter wins, so racing fills share one plan). Returns the
  /// entry now in the cache. Counts one insertion per entry actually
  /// added and one eviction per LRU entry displaced.
  std::shared_ptr<const V> Insert(const std::string& key,
                                  std::shared_ptr<const V> value) {
    Shard& shard = ShardFor(key);
    std::lock_guard<std::mutex> lock(shard.mu);
    auto* existing = shard.index.Find(key);
    if (existing != nullptr) {
      shard.lru.splice(shard.lru.begin(), shard.lru, *existing);
      return (*existing)->value;
    }
    shard.lru.push_front(Entry{key, std::move(value)});
    shard.index.TryEmplace(key, shard.lru.begin());
    ++shard.insertions;
    if (shard.lru.size() > capacity_per_shard_) {
      shard.index.Erase(shard.lru.back().key);
      shard.lru.pop_back();
      ++shard.evictions;
    }
    return shard.lru.front().value;
  }

  PlanCacheStats stats() const {
    PlanCacheStats total;
    for (const auto& shard : shards_) {
      std::lock_guard<std::mutex> lock(shard->mu);
      total.hits += shard->hits;
      total.misses += shard->misses;
      total.insertions += shard->insertions;
      total.evictions += shard->evictions;
      total.entries += shard->lru.size();
    }
    return total;
  }

  std::size_t size() const { return stats().entries; }

  void Clear() {
    for (const auto& shard : shards_) {
      std::lock_guard<std::mutex> lock(shard->mu);
      shard->lru.clear();
      shard->index.clear();
      shard->hits = shard->misses = shard->insertions = shard->evictions = 0;
    }
  }

  std::size_t shard_count() const { return shards_.size(); }
  std::size_t capacity_per_shard() const { return capacity_per_shard_; }

 private:
  struct Entry {
    std::string key;
    std::shared_ptr<const V> value;
  };
  struct Shard {
    mutable std::mutex mu;
    std::list<Entry> lru;  // front = most recently used
    FlatHashMap<std::string, typename std::list<Entry>::iterator> index;
    std::uint64_t hits = 0;
    std::uint64_t misses = 0;
    std::uint64_t insertions = 0;
    std::uint64_t evictions = 0;
  };

  Shard& ShardFor(const std::string& key) {
    const std::uint64_t h = Mix64(ScalarHash(key));
    return *shards_[static_cast<std::size_t>(h) & (shards_.size() - 1)];
  }

  std::vector<std::unique_ptr<Shard>> shards_;
  std::size_t capacity_per_shard_ = 64;
};

/// A Datalog engine bound to one structure, identified by the structure's
/// process-unique uid + mutation generation — never by address, so a freed
/// or mutated structure can only miss, not alias.
struct BoundDatalogEngine {
  std::uint64_t structure_uid = 0;
  std::uint64_t structure_generation = 0;
  CompiledDatalogEngine engine;
};

/// Everything the cache keeps per canonical FO query: the compiled plan
/// (structure-independent; Bind per evaluation is cheap), the canonical
/// analysis measures the router consumes, and lazily built alternative
/// engines (bounded-degree evaluator, Datalog lowering + per-structure
/// engine memo) shared across all evaluations of this query.
struct CachedFormulaPlan {
  CachedFormulaPlan(CanonicalQuery canonical_in, CompiledFormula plan_in,
                    FoAnalysis analysis_in)
      : canonical(std::move(canonical_in)),
        plan(std::move(plan_in)),
        analysis(std::move(analysis_in)) {}

  CanonicalQuery canonical;
  CompiledFormula plan;
  /// Analysis of the *canonical* formula (its measures — rank, width,
  /// safe-range — are what the cost model keys on; width can only shrink
  /// under canonicalization, never grow).
  FoAnalysis analysis;
  /// Fragment flags for routing, computed once from the canonical AST.
  bool existential_positive = false;
  bool has_constant_terms = false;
  bool has_counting = false;

  /// Serializes lazy engine construction AND evaluation through the
  /// stateful engines (BoundedDegreeEvaluator's verdict cache mutates;
  /// CompiledDatalogEngine::Evaluate is not proven concurrency-safe).
  /// The compiled FO plan itself is immutable and needs no lock.
  mutable std::mutex engines_mu;
  mutable std::optional<BoundedDegreeEvaluator> bounded_degree;
  mutable bool bounded_degree_failed = false;
  mutable std::optional<FoDatalogTranslation> datalog;
  mutable bool datalog_attempted = false;
  mutable std::vector<BoundDatalogEngine> datalog_engines;

  /// Short-circuit scan feedback (PR 9). The static cost model prices the
  /// compiled route as a full nodes * n^qr scan, but the engine
  /// short-circuits ∃/∨/→ and prunes quantifiers through posting guards
  /// (EvalStats::short_circuits / index_hits), often visiting a tiny
  /// fraction of that. After every *router-chosen* compiled evaluation the
  /// planner records the measured EvalStats::node_visits here; the next
  /// routing of this plan prices the compiled scan from the measurement
  /// (exactly, when (structure uid, generation, output arity) match — the
  /// key below — and as a dimensionless visited/static ratio prior on
  /// other structures). Forced-engine runs do not record: they are oracle
  /// paths and must not perturb routing. Writers store the key last
  /// (release) and readers load it first (acquire), so a key match
  /// guarantees the visit counters belong to that run; a stale mismatched
  /// triple at worst mis-prices one routing decision.
  mutable std::atomic<std::uint64_t> scan_feedback_key{0};
  mutable std::atomic<std::uint64_t> scan_feedback_visits{0};
  mutable std::atomic<std::uint64_t> scan_feedback_short_circuits{0};
  mutable std::atomic<double> scan_feedback_ratio{0.0};
};

/// Per cached Datalog program: the canonical program (stable address — the
/// compiled engines hold pointers into it), recursion classification for
/// routing/explain, and the per-structure engine memo.
struct CachedDatalogPlan {
  CachedDatalogPlan(DatalogProgram program_in, DatalogAnalysis analysis_in)
      : program(std::move(program_in)), analysis(std::move(analysis_in)) {}

  DatalogProgram program;
  DatalogAnalysis analysis;

  mutable std::mutex engines_mu;
  mutable std::vector<BoundDatalogEngine> engines;
};

/// Outcome detail of one cache access (for --explain and tests).
struct PlanCacheLookup {
  /// The plan came out of the cache (either layer) without recompiling.
  bool hit = false;
  /// The exact-text front layer hit: parse *and* canonicalization skipped.
  bool text_hit = false;
  std::string key;  // the canonical (second-layer) key
};

/// The compiled-plan cache fronting CompiledFormula::Compile and the
/// Datalog rule-lowering path. Two layers per entry kind:
///
///   L1 "t:<raw text>"       — exact text memo: repeat of the same query
///                             string skips parse, analysis, canonicalization
///                             and compilation outright.
///   L2 "c:<canonical text>" — canonical key: α-variants / reordered
///                             commutative connectives / foldable constants
///                             unify onto one compiled plan.
///
/// Both layers store the same shared CachedFormulaPlan, and both keys embed
/// the exact signature text, so equal fingerprints can never alias plans
/// across vocabularies. Thread-safe; all counters exact.
class PlanCache {
 public:
  struct Config {
    std::size_t shards = 8;
    std::size_t capacity_per_shard = 64;
  };

  PlanCache() : PlanCache(Config{}) {}
  explicit PlanCache(Config config)
      : formulas_({config.shards, config.capacity_per_shard}),
        programs_({config.shards, config.capacity_per_shard}) {}

  /// Canonicalize + look up + compile-on-miss. The formula must already be
  /// vocabulary-valid (EvaluateAuto checks the *original* formula against
  /// the signature first, since folding can erase invalid dead branches).
  Result<std::shared_ptr<const CachedFormulaPlan>> GetFormulaPlan(
      const Formula& f, const Signature& signature,
      PlanCacheLookup* lookup = nullptr);

  /// Text front door: exact-text layer first, then parse + GetFormulaPlan.
  Result<std::shared_ptr<const CachedFormulaPlan>> GetFormulaPlanFromText(
      std::string_view text, const Signature& signature,
      PlanCacheLookup* lookup = nullptr);

  /// Canonicalize + look up + analyze-on-miss the Datalog rule-lowering
  /// input. (Rule compilation proper is per-structure: it happens when an
  /// engine is bound and memoized on the plan's engine memo.)
  Result<std::shared_ptr<const CachedDatalogPlan>> GetDatalogPlan(
      const DatalogProgram& program, const Signature& signature,
      PlanCacheLookup* lookup = nullptr);

  Result<std::shared_ptr<const CachedDatalogPlan>> GetDatalogPlanFromText(
      std::string_view text, const Signature& signature,
      PlanCacheLookup* lookup = nullptr);

  PlanCacheStats formula_stats() const { return formulas_.stats(); }
  PlanCacheStats datalog_stats() const { return programs_.stats(); }
  /// Combined counters across both sections.
  PlanCacheStats stats() const;

  void Clear() {
    formulas_.Clear();
    programs_.Clear();
  }

 private:
  ShardedLruCache<CachedFormulaPlan> formulas_;
  ShardedLruCache<CachedDatalogPlan> programs_;
};

/// The process-global cache EvaluateAuto uses when none is supplied.
PlanCache& DefaultPlanCache();

/// Binds (or returns the memoized) compiled Datalog engine for `edb` from
/// `memo`, keyed by (uid, generation). Caller must hold the mutex guarding
/// `memo`; `program` must outlive the memo entries. Keeps at most 4
/// structures per plan (LRU).
Result<CompiledDatalogEngine> GetOrBindDatalogEngine(
    std::vector<BoundDatalogEngine>& memo, const DatalogProgram& program,
    const Structure& edb);

}  // namespace fmtk

#endif  // FMTK_PLANNER_PLAN_CACHE_H_
