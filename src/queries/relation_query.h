#ifndef FMTK_QUERIES_RELATION_QUERY_H_
#define FMTK_QUERIES_RELATION_QUERY_H_

#include <functional>
#include <string>
#include <utility>
#include <vector>

#include "base/result.h"
#include "logic/formula.h"
#include "structures/relation.h"
#include "structures/structure.h"

namespace fmtk {

/// A named query producing an answer relation over the input's domain.
/// The library holds the survey's fixed-point examples (transitive closure,
/// Datalog same-generation) — the queries whose non-FO-definability every
/// tool of Section 3 demonstrates — plus an FO wrapper for the definable
/// controls.
class RelationQuery {
 public:
  using Fn = std::function<Result<Relation>(const Structure&)>;

  RelationQuery(std::string name, std::size_t arity, Fn fn)
      : name_(std::move(name)), arity_(arity), fn_(std::move(fn)) {}

  const std::string& name() const { return name_; }
  std::size_t arity() const { return arity_; }

  Result<Relation> Evaluate(const Structure& s) const { return fn_(s); }

  /// Transitive closure of "E": pairs joined by a path of length >= 1.
  static RelationQuery TransitiveClosure();

  /// The survey's Datalog same-generation program over parent->child "E":
  ///   sg(x, x).
  ///   sg(x, y) :- E(x', x), E(y', y), sg(x', y').
  /// Computed by least-fixpoint iteration.
  static RelationQuery SameGeneration();

  /// An FO query φ(output_variables) evaluated bottom-up.
  static RelationQuery FromFormula(std::string name, Formula f,
                                   std::vector<std::string> output_variables);

 private:
  std::string name_;
  std::size_t arity_;
  Fn fn_;
};

}  // namespace fmtk

#endif  // FMTK_QUERIES_RELATION_QUERY_H_
