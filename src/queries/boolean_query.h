#ifndef FMTK_QUERIES_BOOLEAN_QUERY_H_
#define FMTK_QUERIES_BOOLEAN_QUERY_H_

#include <functional>
#include <string>
#include <utility>

#include "base/result.h"
#include "logic/formula.h"
#include "structures/structure.h"

namespace fmtk {

/// A semantic Boolean query: a named predicate on structures. The library
/// below holds the survey's protagonists — EVEN, connectivity, acyclicity,
/// completeness — implemented algorithmically (they are exactly the queries
/// proved NOT FO-definable), plus a wrapper turning any FO sentence into a
/// BooleanQuery for the definable side of each experiment.
class BooleanQuery {
 public:
  using Fn = std::function<Result<bool>(const Structure&)>;

  BooleanQuery(std::string name, Fn fn)
      : name_(std::move(name)), fn_(std::move(fn)) {}

  const std::string& name() const { return name_; }

  Result<bool> Evaluate(const Structure& s) const { return fn_(s); }

  /// EVEN(σ): |A| is even (any signature).
  static BooleanQuery Even();

  /// Connectivity of the graph relation "E" in the undirected sense.
  static BooleanQuery Connectivity();

  /// Acyclicity of "E" read undirected (the survey's acyclicity trick).
  static BooleanQuery Acyclicity();

  /// Acyclicity of "E" as a directed graph.
  static BooleanQuery DirectedAcyclicity();

  /// "E" is the complete graph (all i != j pairs).
  static BooleanQuery Completeness();

  /// "the graph is a tree": connected and acyclic (undirected reading).
  static BooleanQuery Tree();

  /// An FO sentence as a Boolean query (model checking).
  static BooleanQuery FromSentence(std::string name, Formula sentence);

 private:
  std::string name_;
  Fn fn_;
};

}  // namespace fmtk

#endif  // FMTK_QUERIES_BOOLEAN_QUERY_H_
