#include "queries/boolean_query.h"

#include "eval/model_check.h"
#include "structures/graph.h"

namespace fmtk {

namespace {

Result<std::size_t> GraphRelation(const Structure& s) {
  return s.RelationIndex("E");
}

}  // namespace

BooleanQuery BooleanQuery::Even() {
  return BooleanQuery("EVEN", [](const Structure& s) -> Result<bool> {
    return s.domain_size() % 2 == 0;
  });
}

BooleanQuery BooleanQuery::Connectivity() {
  return BooleanQuery("CONN", [](const Structure& s) -> Result<bool> {
    FMTK_ASSIGN_OR_RETURN(std::size_t rel, GraphRelation(s));
    return IsConnected(UndirectedAdjacency(s, rel));
  });
}

BooleanQuery BooleanQuery::Acyclicity() {
  return BooleanQuery("ACYCL", [](const Structure& s) -> Result<bool> {
    FMTK_ASSIGN_OR_RETURN(std::size_t rel, GraphRelation(s));
    return IsAcyclicUndirected(UndirectedAdjacency(s, rel));
  });
}

BooleanQuery BooleanQuery::DirectedAcyclicity() {
  return BooleanQuery("DAG", [](const Structure& s) -> Result<bool> {
    FMTK_ASSIGN_OR_RETURN(std::size_t rel, GraphRelation(s));
    return IsAcyclicDirected(OutAdjacency(s, rel));
  });
}

BooleanQuery BooleanQuery::Completeness() {
  return BooleanQuery("COMPLETE", [](const Structure& s) -> Result<bool> {
    FMTK_ASSIGN_OR_RETURN(std::size_t rel, GraphRelation(s));
    const std::size_t n = s.domain_size();
    return s.relation(rel).size() == n * (n - (n > 0 ? 1 : 0));
  });
}

BooleanQuery BooleanQuery::Tree() {
  return BooleanQuery("TREE", [](const Structure& s) -> Result<bool> {
    FMTK_ASSIGN_OR_RETURN(std::size_t rel, GraphRelation(s));
    Adjacency undirected = UndirectedAdjacency(s, rel);
    return IsConnected(undirected) && IsAcyclicUndirected(undirected);
  });
}

BooleanQuery BooleanQuery::FromSentence(std::string name, Formula sentence) {
  return BooleanQuery(
      std::move(name),
      [sentence = std::move(sentence)](const Structure& s) -> Result<bool> {
        return Satisfies(s, sentence);
      });
}

}  // namespace fmtk
