#include "queries/relation_query.h"

#include <deque>

#include "eval/query_eval.h"
#include "structures/graph.h"

namespace fmtk {

RelationQuery RelationQuery::TransitiveClosure() {
  return RelationQuery(
      "TC", 2, [](const Structure& s) -> Result<Relation> {
        FMTK_ASSIGN_OR_RETURN(std::size_t rel, s.RelationIndex("E"));
        return fmtk::TransitiveClosure(s, rel);
      });
}

RelationQuery RelationQuery::SameGeneration() {
  return RelationQuery(
      "SG", 2, [](const Structure& s) -> Result<Relation> {
        FMTK_ASSIGN_OR_RETURN(std::size_t rel, s.RelationIndex("E"));
        Adjacency children = OutAdjacency(s, rel);
        Relation sg(2);
        std::deque<Tuple> frontier;
        for (Element x = 0; x < s.domain_size(); ++x) {
          sg.Add({x, x});
          frontier.push_back({x, x});
        }
        // sg(x,y) :- E(x',x), E(y',y), sg(x',y'): propagate to children.
        while (!frontier.empty()) {
          Tuple t = frontier.front();
          frontier.pop_front();
          for (Element cx : children[t[0]]) {
            for (Element cy : children[t[1]]) {
              if (sg.Add({cx, cy})) {
                frontier.push_back({cx, cy});
              }
            }
          }
        }
        return sg;
      });
}

RelationQuery RelationQuery::FromFormula(
    std::string name, Formula f, std::vector<std::string> output_variables) {
  const std::size_t arity = output_variables.size();
  return RelationQuery(
      std::move(name), arity,
      [f = std::move(f), vars = std::move(output_variables)](
          const Structure& s) -> Result<Relation> {
        return EvaluateQuery(s, f, vars);
      });
}

}  // namespace fmtk
