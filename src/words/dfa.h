#ifndef FMTK_WORDS_DFA_H_
#define FMTK_WORDS_DFA_H_

#include <cstddef>
#include <functional>
#include <map>
#include <set>
#include <string>
#include <string_view>
#include <vector>

#include "base/result.h"

namespace fmtk {

/// A deterministic finite automaton over an explicit alphabet — the
/// automata side of the logic/automata connection. Minimal by design: the
/// toolkit uses DFAs as ground truth for languages when checking what FO
/// over word structures can and cannot define.
class Dfa {
 public:
  /// `transitions[state][letter_index]` = next state; state 0 is initial.
  /// Every state must have a transition for every letter.
  static Result<Dfa> Create(std::string alphabet,
                            std::vector<std::vector<std::size_t>> transitions,
                            std::set<std::size_t> accepting);

  const std::string& alphabet() const { return alphabet_; }
  std::size_t state_count() const { return transitions_.size(); }

  /// Runs the automaton; letters outside the alphabet are an error.
  Result<bool> Accepts(std::string_view word) const;

  /// L(this) complemented (relative to the same alphabet).
  Dfa Complement() const;

  // --- Library of example languages -----------------------------------

  /// a*b* — star-free, hence FO-definable (McNaughton–Papert).
  static Dfa StarFreeAsThenBs();

  /// Words containing the factor "ab" — star-free.
  static Dfa ContainsAb();

  /// Words with an even number of a's — regular but NOT star-free, the
  /// string guise of the survey's EVEN query. FO over word structures
  /// cannot define it.
  static Dfa EvenNumberOfAs();

 private:
  Dfa(std::string alphabet, std::vector<std::vector<std::size_t>> transitions,
      std::set<std::size_t> accepting)
      : alphabet_(std::move(alphabet)),
        transitions_(std::move(transitions)),
        accepting_(std::move(accepting)) {}

  std::map<char, std::size_t> LetterIndex() const;

  std::string alphabet_;
  std::vector<std::vector<std::size_t>> transitions_;
  std::set<std::size_t> accepting_;
};

/// Enumerates all words over `alphabet` of length <= max_length and calls
/// `fn(word)`; stops early when fn returns false. Returns the number of
/// words visited.
std::size_t ForEachWord(std::string_view alphabet, std::size_t max_length,
                        const std::function<bool(const std::string&)>& fn);

}  // namespace fmtk

#endif  // FMTK_WORDS_DFA_H_
