#include "words/word_structure.h"

#include <cctype>
#include <set>

namespace fmtk {

std::string LetterPredicate(char letter) {
  return std::string("P") + letter;
}

Result<std::shared_ptr<const Signature>> WordSignature(
    std::string_view alphabet) {
  if (alphabet.empty()) {
    return Status::InvalidArgument("alphabet must be nonempty");
  }
  std::set<char> seen;
  auto sig = std::make_shared<Signature>();
  sig->AddRelation("<", 2);
  for (char a : alphabet) {
    if (!std::isalnum(static_cast<unsigned char>(a))) {
      return Status::InvalidArgument("letters must be alphanumeric");
    }
    if (!seen.insert(a).second) {
      return Status::InvalidArgument(std::string("duplicate letter '") + a +
                                     "'");
    }
    sig->AddRelation(LetterPredicate(a), 1);
  }
  return std::shared_ptr<const Signature>(std::move(sig));
}

Result<Structure> MakeWordStructure(std::string_view word,
                                    std::string_view alphabet) {
  FMTK_ASSIGN_OR_RETURN(std::shared_ptr<const Signature> sig,
                        WordSignature(alphabet));
  Structure s(sig, word.size());
  const std::size_t less = *sig->FindRelation("<");
  for (Element i = 0; i < word.size(); ++i) {
    for (Element j = i + 1; j < word.size(); ++j) {
      s.AddTuple(less, {i, j});
    }
  }
  for (std::size_t i = 0; i < word.size(); ++i) {
    std::optional<std::size_t> rel =
        sig->FindRelation(LetterPredicate(word[i]));
    if (!rel.has_value()) {
      return Status::InvalidArgument(std::string("letter '") + word[i] +
                                     "' not in the alphabet");
    }
    s.AddTuple(*rel, {static_cast<Element>(i)});
  }
  return s;
}

}  // namespace fmtk
