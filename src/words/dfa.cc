#include "words/dfa.h"

#include <functional>
#include <utility>

namespace fmtk {

Result<Dfa> Dfa::Create(std::string alphabet,
                        std::vector<std::vector<std::size_t>> transitions,
                        std::set<std::size_t> accepting) {
  if (alphabet.empty()) {
    return Status::InvalidArgument("alphabet must be nonempty");
  }
  if (transitions.empty()) {
    return Status::InvalidArgument("a DFA needs at least one state");
  }
  for (const std::vector<std::size_t>& row : transitions) {
    if (row.size() != alphabet.size()) {
      return Status::InvalidArgument(
          "every state needs one transition per letter");
    }
    for (std::size_t target : row) {
      if (target >= transitions.size()) {
        return Status::InvalidArgument("transition target out of range");
      }
    }
  }
  for (std::size_t state : accepting) {
    if (state >= transitions.size()) {
      return Status::InvalidArgument("accepting state out of range");
    }
  }
  return Dfa(std::move(alphabet), std::move(transitions),
             std::move(accepting));
}

std::map<char, std::size_t> Dfa::LetterIndex() const {
  std::map<char, std::size_t> index;
  for (std::size_t i = 0; i < alphabet_.size(); ++i) {
    index[alphabet_[i]] = i;
  }
  return index;
}

Result<bool> Dfa::Accepts(std::string_view word) const {
  std::map<char, std::size_t> index = LetterIndex();
  std::size_t state = 0;
  for (char c : word) {
    auto it = index.find(c);
    if (it == index.end()) {
      return Status::InvalidArgument(std::string("letter '") + c +
                                     "' outside the alphabet");
    }
    state = transitions_[state][it->second];
  }
  return accepting_.find(state) != accepting_.end();
}

Dfa Dfa::Complement() const {
  std::set<std::size_t> flipped;
  for (std::size_t s = 0; s < transitions_.size(); ++s) {
    if (accepting_.find(s) == accepting_.end()) {
      flipped.insert(s);
    }
  }
  return Dfa(alphabet_, transitions_, std::move(flipped));
}

Dfa Dfa::StarFreeAsThenBs() {
  // States: 0 = reading a's, 1 = reading b's, 2 = dead.
  Result<Dfa> dfa = Create("ab",
                           {{0, 1},   // from 0: a -> 0, b -> 1
                            {2, 1},   // from 1: a -> dead, b -> 1
                            {2, 2}},  // dead
                           {0, 1});
  return *dfa;
}

Dfa Dfa::ContainsAb() {
  // States: 0 = nothing, 1 = just saw a, 2 = saw the factor (accepting).
  Result<Dfa> dfa = Create("ab",
                           {{1, 0},
                            {1, 2},
                            {2, 2}},
                           {2});
  return *dfa;
}

Dfa Dfa::EvenNumberOfAs() {
  // States: parity of #a's; b's are neutral.
  Result<Dfa> dfa = Create("ab",
                           {{1, 0},
                            {0, 1}},
                           {0});
  return *dfa;
}

std::size_t ForEachWord(std::string_view alphabet, std::size_t max_length,
                        const std::function<bool(const std::string&)>& fn) {
  std::size_t visited = 0;
  std::string word;
  // Iterative deepening over lengths; odometer within a length.
  for (std::size_t length = 0; length <= max_length; ++length) {
    std::vector<std::size_t> digits(length, 0);
    while (true) {
      word.clear();
      for (std::size_t d : digits) {
        word += alphabet[d];
      }
      ++visited;
      if (!fn(word)) {
        return visited;
      }
      std::size_t pos = length;
      bool done = (length == 0);
      while (pos > 0) {
        --pos;
        if (digits[pos] + 1 < alphabet.size()) {
          ++digits[pos];
          break;
        }
        digits[pos] = 0;
        if (pos == 0) {
          done = true;
        }
      }
      if (done) {
        break;
      }
    }
  }
  return visited;
}

}  // namespace fmtk
