#include "words/fo_language.h"

#include "eval/model_check.h"
#include "logic/parser.h"
#include "words/word_structure.h"

namespace fmtk {

Result<LanguageAgreement> CompareFoWithDfa(const Formula& sentence,
                                           const Dfa& dfa,
                                           std::string_view alphabet,
                                           std::size_t max_length) {
  LanguageAgreement result;
  Status error = Status::OK();
  result.words_checked = ForEachWord(
      alphabet, max_length, [&](const std::string& word) {
        Result<Structure> w = MakeWordStructure(word, alphabet);
        if (!w.ok()) {
          error = w.status();
          return false;
        }
        Result<bool> by_logic = Satisfies(*w, sentence);
        if (!by_logic.ok()) {
          error = by_logic.status();
          return false;
        }
        Result<bool> by_automaton = dfa.Accepts(word);
        if (!by_automaton.ok()) {
          error = by_automaton.status();
          return false;
        }
        if (*by_logic != *by_automaton) {
          result.agree = false;
          result.counterexample = word;
          return false;
        }
        return true;
      });
  FMTK_RETURN_IF_ERROR(error);
  return result;
}

Result<Formula> AsThenBsSentence() {
  // No position with a b strictly before a position with an a.
  return ParseFormula("!(exists x. exists y. x < y & Pb(x) & Pa(y))");
}

Result<Formula> ContainsAbSentence() {
  // Some a immediately followed (no position in between) by a b.
  return ParseFormula(
      "exists x. exists y. x < y & !(exists z. x < z & z < y)"
      " & Pa(x) & Pb(y)");
}

}  // namespace fmtk
