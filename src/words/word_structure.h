#ifndef FMTK_WORDS_WORD_STRUCTURE_H_
#define FMTK_WORDS_WORD_STRUCTURE_H_

#include <memory>
#include <string>
#include <string_view>

#include "base/result.h"
#include "structures/structure.h"

namespace fmtk {

/// Büchi's encoding of words as finite structures — the bridge between the
/// survey's logic toolbox and automata: a word w over alphabet Σ becomes
/// the structure W(w) with domain {0, ..., |w|-1}, the position order <,
/// and one unary predicate P_a per letter. FO sentences over this
/// vocabulary define exactly the star-free regular languages
/// (McNaughton–Papert); MSO would give all regular languages.

/// The word vocabulary for `alphabet`: "<"/2 plus P_a/1 for each letter.
/// Letters must be distinct alphanumeric characters.
Result<std::shared_ptr<const Signature>> WordSignature(
    std::string_view alphabet);

/// W(word) over the given alphabet. Every letter of `word` must come from
/// `alphabet`.
Result<Structure> MakeWordStructure(std::string_view word,
                                    std::string_view alphabet);

/// The predicate name for a letter: 'a' -> "Pa".
std::string LetterPredicate(char letter);

}  // namespace fmtk

#endif  // FMTK_WORDS_WORD_STRUCTURE_H_
