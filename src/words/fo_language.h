#ifndef FMTK_WORDS_FO_LANGUAGE_H_
#define FMTK_WORDS_FO_LANGUAGE_H_

#include <cstddef>
#include <optional>
#include <string>
#include <string_view>

#include "base/result.h"
#include "logic/formula.h"
#include "words/dfa.h"

namespace fmtk {

/// Bounded comparison of an FO-defined word language with a DFA: evaluates
/// the sentence on W(w) for every word w over the alphabet with
/// |w| <= max_length and compares against the automaton.
struct LanguageAgreement {
  bool agree = true;
  std::optional<std::string> counterexample;  // First disagreeing word.
  std::size_t words_checked = 0;
};

/// The sentence must be over WordSignature(alphabet). Exhaustive up to the
/// bound: |Σ|^(max_length+1) evaluations, so keep max_length modest.
Result<LanguageAgreement> CompareFoWithDfa(const Formula& sentence,
                                           const Dfa& dfa,
                                           std::string_view alphabet,
                                           std::size_t max_length);

/// FO sentences defining the library's star-free example languages, for
/// tests and benches (parsed over WordSignature("ab")).
/// a*b*: no a after a b.
Result<Formula> AsThenBsSentence();
/// Contains the factor "ab": an a immediately followed by a b.
Result<Formula> ContainsAbSentence();

}  // namespace fmtk

#endif  // FMTK_WORDS_FO_LANGUAGE_H_
