#ifndef FMTK_FMTK_H_
#define FMTK_FMTK_H_

/// Umbrella header: the whole finite-model-theory toolbox. Include the
/// individual headers instead when compile time matters.

// Substrates.
#include "analysis/datalog_analyzer.h"  // IWYU pragma: export
#include "analysis/diagnostics.h"  // IWYU pragma: export
#include "analysis/fo_analyzer.h"  // IWYU pragma: export
#include "base/result.h"           // IWYU pragma: export
#include "base/status.h"           // IWYU pragma: export
#include "circuits/circuit.h"      // IWYU pragma: export
#include "circuits/compile.h"      // IWYU pragma: export
#include "datalog/evaluator.h"     // IWYU pragma: export
#include "datalog/program.h"       // IWYU pragma: export
#include "eval/model_check.h"      // IWYU pragma: export
#include "eval/query_eval.h"       // IWYU pragma: export
#include "logic/analysis.h"        // IWYU pragma: export
#include "logic/formula.h"         // IWYU pragma: export
#include "logic/parser.h"          // IWYU pragma: export
#include "logic/random_formula.h"  // IWYU pragma: export
#include "logic/transform.h"       // IWYU pragma: export
#include "planner/canonical.h"     // IWYU pragma: export
#include "planner/plan_cache.h"    // IWYU pragma: export
#include "planner/planner.h"       // IWYU pragma: export
#include "qbf/qbf.h"               // IWYU pragma: export
#include "queries/boolean_query.h" // IWYU pragma: export
#include "queries/relation_query.h"  // IWYU pragma: export
#include "structures/generators.h"   // IWYU pragma: export
#include "structures/graph.h"        // IWYU pragma: export
#include "structures/io.h"           // IWYU pragma: export
#include "structures/isomorphism.h"  // IWYU pragma: export
#include "structures/signature.h"    // IWYU pragma: export
#include "structures/structure.h"    // IWYU pragma: export
#include "words/dfa.h"               // IWYU pragma: export
#include "words/fo_language.h"       // IWYU pragma: export
#include "words/word_structure.h"    // IWYU pragma: export

// The toolbox.
#include "core/algorithmic/basic_local.h"     // IWYU pragma: export
#include "core/algorithmic/bounded_degree.h"  // IWYU pragma: export
#include "core/algorithmic/local_formula.h"   // IWYU pragma: export
#include "core/games/ef_game.h"               // IWYU pragma: export
#include "core/games/hintikka.h"              // IWYU pragma: export
#include "core/games/linear_order.h"          // IWYU pragma: export
#include "core/games/pebble_game.h"           // IWYU pragma: export
#include "core/games/strategy.h"              // IWYU pragma: export
#include "core/interp/interpretation.h"       // IWYU pragma: export
#include "core/interp/reductions.h"           // IWYU pragma: export
#include "core/locality/bndp.h"               // IWYU pragma: export
#include "core/locality/gaifman_local.h"      // IWYU pragma: export
#include "core/locality/hanf.h"               // IWYU pragma: export
#include "core/locality/neighborhood.h"       // IWYU pragma: export
#include "core/order/order_invariance.h"      // IWYU pragma: export
#include "core/types/rank_type.h"             // IWYU pragma: export
#include "core/zeroone/almost_sure.h"         // IWYU pragma: export
#include "core/zeroone/mu.h"                  // IWYU pragma: export

#endif  // FMTK_FMTK_H_
