#include "logic/analysis.h"

#include <algorithm>
#include <utility>

#include "base/check.h"

namespace fmtk {

std::size_t QuantifierRank(const Formula& f) {
  switch (f.kind()) {
    case FormulaKind::kTrue:
    case FormulaKind::kFalse:
    case FormulaKind::kAtom:
    case FormulaKind::kEqual:
      return 0;
    case FormulaKind::kExists:
    case FormulaKind::kForall:
    case FormulaKind::kCountExists:
      return 1 + QuantifierRank(f.body());
    default: {
      std::size_t rank = 0;
      for (const Formula& c : f.children()) {
        rank = std::max(rank, QuantifierRank(c));
      }
      return rank;
    }
  }
}

namespace {

void CollectFree(const Formula& f, std::set<std::string>& bound,
                 std::set<std::string>& free) {
  switch (f.kind()) {
    case FormulaKind::kTrue:
    case FormulaKind::kFalse:
      return;
    case FormulaKind::kAtom:
    case FormulaKind::kEqual:
      for (const Term& t : f.terms()) {
        if (t.is_variable() && bound.find(t.name) == bound.end()) {
          free.insert(t.name);
        }
      }
      return;
    case FormulaKind::kExists:
    case FormulaKind::kForall:
    case FormulaKind::kCountExists: {
      const bool was_bound = bound.count(f.variable()) > 0;
      bound.insert(f.variable());
      CollectFree(f.body(), bound, free);
      if (!was_bound) {
        bound.erase(f.variable());
      }
      return;
    }
    default:
      for (const Formula& c : f.children()) {
        CollectFree(c, bound, free);
      }
      return;
  }
}

void CollectAll(const Formula& f, std::set<std::string>& vars) {
  switch (f.kind()) {
    case FormulaKind::kTrue:
    case FormulaKind::kFalse:
      return;
    case FormulaKind::kAtom:
    case FormulaKind::kEqual:
      for (const Term& t : f.terms()) {
        if (t.is_variable()) {
          vars.insert(t.name);
        }
      }
      return;
    case FormulaKind::kExists:
    case FormulaKind::kForall:
    case FormulaKind::kCountExists:
      vars.insert(f.variable());
      CollectAll(f.body(), vars);
      return;
    default:
      for (const Formula& c : f.children()) {
        CollectAll(c, vars);
      }
      return;
  }
}

}  // namespace

std::set<std::string> FreeVariables(const Formula& f) {
  std::set<std::string> bound;
  std::set<std::string> free;
  CollectFree(f, bound, free);
  return free;
}

std::set<std::string> AllVariables(const Formula& f) {
  std::set<std::string> vars;
  CollectAll(f, vars);
  return vars;
}

std::size_t QuantifierCount(const Formula& f) {
  std::size_t count = f.is_quantifier() ? 1 : 0;
  for (const Formula& c : f.children()) {
    count += QuantifierCount(c);
  }
  return count;
}

Status CheckAgainstSignature(const Formula& f, const Signature& signature) {
  switch (f.kind()) {
    case FormulaKind::kAtom: {
      std::optional<std::size_t> index =
          signature.FindRelation(f.relation_name());
      if (!index.has_value()) {
        return Status::SignatureMismatch("unknown relation symbol: " +
                                         f.relation_name());
      }
      const std::size_t arity = signature.relation(*index).arity;
      if (f.terms().size() != arity) {
        return Status::SignatureMismatch(
            "relation " + f.relation_name() + " has arity " +
            std::to_string(arity) + ", atom has " +
            std::to_string(f.terms().size()) + " terms");
      }
      break;
    }
    case FormulaKind::kEqual:
      break;
    default:
      for (const Formula& c : f.children()) {
        FMTK_RETURN_IF_ERROR(CheckAgainstSignature(c, signature));
      }
      return Status::OK();
  }
  // Shared constant check for atoms and equalities.
  for (const Term& t : f.terms()) {
    if (t.is_constant() && !signature.FindConstant(t.name).has_value()) {
      return Status::SignatureMismatch("unknown constant symbol: " + t.name);
    }
  }
  return Status::OK();
}

std::string FreshVariable(const std::string& stem,
                          const std::set<std::string>& taken) {
  if (taken.find(stem) == taken.end()) {
    return stem;
  }
  for (std::size_t i = 1;; ++i) {
    std::string candidate = stem + std::to_string(i);
    if (taken.find(candidate) == taken.end()) {
      return candidate;
    }
  }
}

Formula SubstituteVariable(const Formula& f, const std::string& name,
                           const Term& replacement) {
  switch (f.kind()) {
    case FormulaKind::kTrue:
    case FormulaKind::kFalse:
      return f;
    case FormulaKind::kAtom:
    case FormulaKind::kEqual: {
      std::vector<Term> terms = f.terms();
      bool changed = false;
      for (Term& t : terms) {
        if (t.is_variable() && t.name == name) {
          t = replacement;
          changed = true;
        }
      }
      if (!changed) {
        return f;
      }
      if (f.kind() == FormulaKind::kAtom) {
        return Formula::Atom(f.relation_name(), std::move(terms));
      }
      return Formula::Equal(terms[0], terms[1]);
    }
    case FormulaKind::kExists:
    case FormulaKind::kForall:
    case FormulaKind::kCountExists: {
      if (f.variable() == name) {
        return f;  // `name` is shadowed; no free occurrences inside.
      }
      std::string bound = f.variable();
      Formula body = f.body();
      if (replacement.is_variable() && replacement.name == bound) {
        // Capture: rename the bound variable first.
        std::set<std::string> taken = AllVariables(body);
        taken.insert(name);
        taken.insert(replacement.name);
        std::string fresh = FreshVariable(bound, taken);
        body = SubstituteVariable(body, bound, Term::Var(fresh));
        bound = fresh;
      }
      body = SubstituteVariable(body, name, replacement);
      switch (f.kind()) {
        case FormulaKind::kExists:
          return Formula::Exists(std::move(bound), std::move(body));
        case FormulaKind::kForall:
          return Formula::Forall(std::move(bound), std::move(body));
        default:
          return Formula::CountExists(f.count(), std::move(bound),
                                      std::move(body));
      }
    }
    case FormulaKind::kNot:
      return Formula::Not(SubstituteVariable(f.child(0), name, replacement));
    case FormulaKind::kAnd:
    case FormulaKind::kOr: {
      std::vector<Formula> children;
      children.reserve(f.child_count());
      for (const Formula& c : f.children()) {
        children.push_back(SubstituteVariable(c, name, replacement));
      }
      return f.kind() == FormulaKind::kAnd
                 ? Formula::And(std::move(children))
                 : Formula::Or(std::move(children));
    }
    case FormulaKind::kImplies:
      return Formula::Implies(
          SubstituteVariable(f.child(0), name, replacement),
          SubstituteVariable(f.child(1), name, replacement));
    case FormulaKind::kIff:
      return Formula::Iff(SubstituteVariable(f.child(0), name, replacement),
                          SubstituteVariable(f.child(1), name, replacement));
  }
  FMTK_CHECK(false) << "unreachable formula kind";
  return f;
}

namespace {

Formula RenameApart(const Formula& f, std::set<std::string>& taken) {
  switch (f.kind()) {
    case FormulaKind::kTrue:
    case FormulaKind::kFalse:
    case FormulaKind::kAtom:
    case FormulaKind::kEqual:
      return f;
    case FormulaKind::kExists:
    case FormulaKind::kForall:
    case FormulaKind::kCountExists: {
      std::string fresh = FreshVariable(f.variable(), taken);
      taken.insert(fresh);
      Formula body = f.body();
      if (fresh != f.variable()) {
        body = SubstituteVariable(body, f.variable(), Term::Var(fresh));
      }
      body = RenameApart(body, taken);
      switch (f.kind()) {
        case FormulaKind::kExists:
          return Formula::Exists(std::move(fresh), std::move(body));
        case FormulaKind::kForall:
          return Formula::Forall(std::move(fresh), std::move(body));
        default:
          return Formula::CountExists(f.count(), std::move(fresh),
                                      std::move(body));
      }
    }
    case FormulaKind::kNot:
      return Formula::Not(RenameApart(f.child(0), taken));
    case FormulaKind::kAnd:
    case FormulaKind::kOr: {
      std::vector<Formula> children;
      children.reserve(f.child_count());
      for (const Formula& c : f.children()) {
        children.push_back(RenameApart(c, taken));
      }
      return f.kind() == FormulaKind::kAnd
                 ? Formula::And(std::move(children))
                 : Formula::Or(std::move(children));
    }
    case FormulaKind::kImplies:
      return Formula::Implies(RenameApart(f.child(0), taken),
                              RenameApart(f.child(1), taken));
    case FormulaKind::kIff:
      return Formula::Iff(RenameApart(f.child(0), taken),
                          RenameApart(f.child(1), taken));
  }
  FMTK_CHECK(false) << "unreachable formula kind";
  return f;
}

}  // namespace

Formula RenameBoundVariablesApart(const Formula& f) {
  std::set<std::string> taken = FreeVariables(f);
  return RenameApart(f, taken);
}

}  // namespace fmtk
