#ifndef FMTK_LOGIC_ANALYSIS_H_
#define FMTK_LOGIC_ANALYSIS_H_

#include <cstddef>
#include <set>
#include <string>
#include <vector>

#include "base/status.h"
#include "logic/formula.h"
#include "structures/signature.h"

namespace fmtk {

/// Quantifier rank qr(φ): the maximum nesting depth of quantifiers
/// (the survey's Definition; qr(atom)=0, Boolean connectives take the max,
/// quantifiers add one).
std::size_t QuantifierRank(const Formula& f);

/// Free variables of φ, sorted by name.
std::set<std::string> FreeVariables(const Formula& f);

/// All variable names occurring in φ (free or bound).
std::set<std::string> AllVariables(const Formula& f);

/// Number of quantifier nodes (not rank): size accounting for benches.
std::size_t QuantifierCount(const Formula& f);

/// Verifies that every atom of φ uses a relation symbol of `signature` with
/// the right arity and that every constant term names a constant of
/// `signature`.
Status CheckAgainstSignature(const Formula& f, const Signature& signature);

/// A variable name not in `taken`, derived from `stem` ("x", "x1", "x2"...).
std::string FreshVariable(const std::string& stem,
                          const std::set<std::string>& taken);

/// Capture-avoiding substitution of `replacement` for free occurrences of
/// variable `name`. Bound variables that would capture the replacement are
/// renamed to fresh names.
Formula SubstituteVariable(const Formula& f, const std::string& name,
                           const Term& replacement);

/// Alpha-renames so every quantifier binds a distinct variable that is also
/// distinct from all free variables. Needed before prenexing.
Formula RenameBoundVariablesApart(const Formula& f);

}  // namespace fmtk

#endif  // FMTK_LOGIC_ANALYSIS_H_
