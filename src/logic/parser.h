#ifndef FMTK_LOGIC_PARSER_H_
#define FMTK_LOGIC_PARSER_H_

#include <string_view>
#include <unordered_map>

#include "base/result.h"
#include "base/source_span.h"
#include "logic/formula.h"
#include "structures/signature.h"

namespace fmtk {

/// Byte spans of the parsed subformulas, keyed by Formula::node_identity().
/// Formula nodes are freshly allocated per parse, so identities are unique;
/// nodes synthesized by desugaring (multi-variable quantifier blocks,
/// "x != y") carry the span of the surface construct that produced them.
/// Transform results (NNF, substitution, ...) are new nodes with no spans.
class FormulaSpans {
 public:
  void Set(const Formula& f, SourceSpan span) {
    by_node_[f.node_identity()] = span;
  }

  /// The span of `f`'s node, or an invalid span when it was not parsed.
  SourceSpan Lookup(const Formula& f) const {
    auto it = by_node_.find(f.node_identity());
    return it == by_node_.end() ? SourceSpan{} : it->second;
  }

  bool empty() const { return by_node_.empty(); }
  std::size_t size() const { return by_node_.size(); }

 private:
  std::unordered_map<const void*, SourceSpan> by_node_;
};

/// A parse result that keeps the source locations: the analyzer
/// (analysis/fo_analyzer.h) uses them to point diagnostics at the text.
struct ParsedFormula {
  Formula formula;
  FormulaSpans spans;
};

/// Parses the toolkit's FO surface syntax:
///
///   formula := iff
///   iff     := implies ("<->" implies)*
///   implies := or ("->" implies)?                    (right-associative)
///   or      := and (("|" | "or") and)*
///   and     := unary (("&" | "and") unary)*
///   unary   := ("!" | "~" | "not") unary
///            | ("exists" | "ex" | "forall" | "all") name+ "." formula
///            | primary
///   primary := "true" | "false" | "(" formula ")" | atom
///   atom    := name "(" term ("," term)* ")"         relation atom
///            | name                                   0-ary relation atom
///            | term "=" term | term "!=" term         (in)equality
///            | term "<" term                          atom of relation "<"
///
/// A name used as a term denotes the signature's constant of that name when
/// one exists (a signature must be supplied to use constants), and a
/// variable otherwise. Example:
///   "forall x. exists y. E(x,y) & !(x = y)"
Result<Formula> ParseFormula(std::string_view text,
                             const Signature* signature = nullptr);

/// ParseFormula plus the byte span of every subformula.
Result<ParsedFormula> ParseFormulaWithSpans(
    std::string_view text, const Signature* signature = nullptr);

}  // namespace fmtk

#endif  // FMTK_LOGIC_PARSER_H_
