#ifndef FMTK_LOGIC_PARSER_H_
#define FMTK_LOGIC_PARSER_H_

#include <string_view>

#include "base/result.h"
#include "logic/formula.h"
#include "structures/signature.h"

namespace fmtk {

/// Parses the toolkit's FO surface syntax:
///
///   formula := iff
///   iff     := implies ("<->" implies)*
///   implies := or ("->" implies)?                    (right-associative)
///   or      := and (("|" | "or") and)*
///   and     := unary (("&" | "and") unary)*
///   unary   := ("!" | "~" | "not") unary
///            | ("exists" | "ex" | "forall" | "all") name+ "." formula
///            | primary
///   primary := "true" | "false" | "(" formula ")" | atom
///   atom    := name "(" term ("," term)* ")"         relation atom
///            | name                                   0-ary relation atom
///            | term "=" term | term "!=" term         (in)equality
///            | term "<" term                          atom of relation "<"
///
/// A name used as a term denotes the signature's constant of that name when
/// one exists (a signature must be supplied to use constants), and a
/// variable otherwise. Example:
///   "forall x. exists y. E(x,y) & !(x = y)"
Result<Formula> ParseFormula(std::string_view text,
                             const Signature* signature = nullptr);

}  // namespace fmtk

#endif  // FMTK_LOGIC_PARSER_H_
