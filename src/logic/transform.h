#ifndef FMTK_LOGIC_TRANSFORM_H_
#define FMTK_LOGIC_TRANSFORM_H_

#include "logic/formula.h"

namespace fmtk {

/// Negation normal form: eliminates -> and <->, pushes negations onto atoms.
/// Preserves logical equivalence on all structures (including empty ones)
/// and does not increase quantifier rank.
Formula NegationNormalForm(const Formula& f);

/// Bottom-up constant folding: flattens nested ∧/∨, removes true/false
/// units, collapses double negation. Quantifiers are left untouched (∃x.true
/// is NOT true on the empty structure, so it cannot be folded). Preserves
/// logical equivalence on all structures.
Formula Simplify(const Formula& f);

/// Prenex normal form: all quantifiers out front. Bound variables are
/// renamed apart first; the input is converted to NNF. Preserves logical
/// equivalence on nonempty structures (prenexing is the one transform with
/// the textbook nonempty-domain caveat).
Formula PrenexNormalForm(const Formula& f);

}  // namespace fmtk

#endif  // FMTK_LOGIC_TRANSFORM_H_
