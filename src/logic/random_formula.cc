#include "logic/random_formula.h"

#include <string>
#include <vector>

#include "base/check.h"
#include "logic/analysis.h"

namespace fmtk {

namespace {

std::string PoolVariable(std::size_t index) {
  return "x" + std::to_string(index + 1);
}

Term RandomTerm(const RandomFormulaOptions& options, std::mt19937_64& rng) {
  std::uniform_int_distribution<std::size_t> pick(0,
                                                  options.variable_pool - 1);
  return Term::Var(PoolVariable(pick(rng)));
}

Formula RandomLeaf(const Signature& signature,
                   const RandomFormulaOptions& options, std::mt19937_64& rng) {
  // Choose among: relation atoms, equality, true, false.
  std::uniform_int_distribution<int> kind(0, 9);
  const int k = kind(rng);
  if (k == 0) {
    return Formula::True();
  }
  if (k == 1) {
    return Formula::False();
  }
  if (k <= 3 || signature.relation_count() == 0) {
    return Formula::Equal(RandomTerm(options, rng),
                          RandomTerm(options, rng));
  }
  std::uniform_int_distribution<std::size_t> pick_rel(
      0, signature.relation_count() - 1);
  const std::size_t rel = pick_rel(rng);
  std::vector<Term> terms;
  terms.reserve(signature.relation(rel).arity);
  for (std::size_t i = 0; i < signature.relation(rel).arity; ++i) {
    terms.push_back(RandomTerm(options, rng));
  }
  return Formula::Atom(signature.relation(rel).name, std::move(terms));
}

Formula Random(const Signature& signature,
               const RandomFormulaOptions& options, std::size_t depth,
               std::mt19937_64& rng) {
  std::bernoulli_distribution leaf(options.leaf_probability);
  if (depth >= options.max_depth || leaf(rng)) {
    return RandomLeaf(signature, options, rng);
  }
  std::uniform_int_distribution<int> kind(0, options.counting ? 7 : 6);
  std::uniform_int_distribution<std::size_t> pick_var(
      0, options.variable_pool - 1);
  switch (kind(rng)) {
    case 0:
      return Formula::Not(Random(signature, options, depth + 1, rng));
    case 1:
      return Formula::And(Random(signature, options, depth + 1, rng),
                          Random(signature, options, depth + 1, rng));
    case 2:
      return Formula::Or(Random(signature, options, depth + 1, rng),
                         Random(signature, options, depth + 1, rng));
    case 3:
      return Formula::Implies(Random(signature, options, depth + 1, rng),
                              Random(signature, options, depth + 1, rng));
    case 4:
      return Formula::Iff(Random(signature, options, depth + 1, rng),
                          Random(signature, options, depth + 1, rng));
    case 5:
      return Formula::Exists(PoolVariable(pick_var(rng)),
                             Random(signature, options, depth + 1, rng));
    case 6:
      return Formula::Forall(PoolVariable(pick_var(rng)),
                             Random(signature, options, depth + 1, rng));
    default: {
      std::uniform_int_distribution<std::size_t> pick_count(1, 3);
      return Formula::CountExists(pick_count(rng),
                                  PoolVariable(pick_var(rng)),
                                  Random(signature, options, depth + 1, rng));
    }
  }
}

}  // namespace

Formula MakeRandomFormula(const Signature& signature,
                          const RandomFormulaOptions& options,
                          std::mt19937_64& rng) {
  FMTK_CHECK(options.variable_pool >= 1) << "need at least one variable";
  return Random(signature, options, 0, rng);
}

Formula MakeRandomSentence(const Signature& signature,
                           const RandomFormulaOptions& options,
                           std::mt19937_64& rng) {
  Formula f = MakeRandomFormula(signature, options, rng);
  std::bernoulli_distribution exists(0.5);
  for (const std::string& v : FreeVariables(f)) {
    f = exists(rng) ? Formula::Exists(v, std::move(f))
                    : Formula::Forall(v, std::move(f));
  }
  return f;
}

}  // namespace fmtk
