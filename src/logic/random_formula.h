#ifndef FMTK_LOGIC_RANDOM_FORMULA_H_
#define FMTK_LOGIC_RANDOM_FORMULA_H_

#include <cstddef>
#include <random>

#include "logic/formula.h"
#include "structures/signature.h"

namespace fmtk {

/// Knobs for random formula generation (fuzzing the parser, printer,
/// transforms and the two evaluators against each other).
struct RandomFormulaOptions {
  std::size_t max_depth = 4;
  /// Variables are drawn from x1..xk with k = variable_pool.
  std::size_t variable_pool = 3;
  /// Allow ∃^{>=k} nodes (k in 1..3).
  bool counting = false;
  /// Probability of choosing a leaf before max_depth forces one.
  double leaf_probability = 0.3;
};

/// A random formula over `signature`. All leaves use the signature's
/// relations (plus equalities); free variables come from the pool, so the
/// result is generally open — quantify or supply assignments as needed.
Formula MakeRandomFormula(const Signature& signature,
                          const RandomFormulaOptions& options,
                          std::mt19937_64& rng);

/// A random *sentence*: MakeRandomFormula with all free variables
/// quantified (randomly ∃/∀) at the top.
Formula MakeRandomSentence(const Signature& signature,
                           const RandomFormulaOptions& options,
                           std::mt19937_64& rng);

}  // namespace fmtk

#endif  // FMTK_LOGIC_RANDOM_FORMULA_H_
