#include "logic/formula.h"

#include <utility>

#include "base/check.h"

namespace fmtk {

using internal_logic::FormulaNode;

Formula::Formula() : Formula(True()) {}

Formula Formula::Make(FormulaNode node) {
  return Formula(std::make_shared<const FormulaNode>(std::move(node)));
}

const std::string& Formula::relation_name() const {
  FMTK_CHECK(kind() == FormulaKind::kAtom) << "relation_name() on non-atom";
  return node_->relation;
}

const std::vector<Term>& Formula::terms() const {
  FMTK_CHECK(kind() == FormulaKind::kAtom || kind() == FormulaKind::kEqual)
      << "terms() on formula without terms";
  return node_->terms;
}

const Formula& Formula::child(std::size_t i) const {
  FMTK_CHECK(i < node_->children.size()) << "child index out of range";
  return node_->children[i];
}

std::size_t Formula::child_count() const { return node_->children.size(); }

const std::vector<Formula>& Formula::children() const {
  return node_->children;
}

const std::string& Formula::variable() const {
  FMTK_CHECK(is_quantifier()) << "variable() on non-quantifier";
  return node_->variable;
}

const Formula& Formula::body() const {
  FMTK_CHECK(is_quantifier()) << "body() on non-quantifier";
  return node_->children[0];
}

std::size_t Formula::count() const {
  FMTK_CHECK(kind() == FormulaKind::kCountExists)
      << "count() on non-counting quantifier";
  return node_->count;
}

bool Formula::EqualsNode(const Formula& other) const {
  if (node_ == other.node_) {
    return true;
  }
  const FormulaNode& a = *node_;
  const FormulaNode& b = *other.node_;
  if (a.kind != b.kind || a.relation != b.relation || a.terms != b.terms ||
      a.variable != b.variable || a.count != b.count ||
      a.children.size() != b.children.size()) {
    return false;
  }
  for (std::size_t i = 0; i < a.children.size(); ++i) {
    if (!(a.children[i] == b.children[i])) {
      return false;
    }
  }
  return true;
}

std::size_t Formula::NodeCount() const {
  std::size_t total = 1;
  for (const Formula& c : node_->children) {
    total += c.NodeCount();
  }
  return total;
}

Formula Formula::True() { return Make({FormulaKind::kTrue, {}, {}, {}, {}}); }

Formula Formula::False() {
  return Make({FormulaKind::kFalse, {}, {}, {}, {}});
}

Formula Formula::Atom(std::string relation, std::vector<Term> terms) {
  return Make(
      {FormulaKind::kAtom, std::move(relation), std::move(terms), {}, {}});
}

Formula Formula::Equal(Term a, Term b) {
  return Make(
      {FormulaKind::kEqual, {}, {std::move(a), std::move(b)}, {}, {}});
}

Formula Formula::Not(Formula f) {
  return Make({FormulaKind::kNot, {}, {}, {std::move(f)}, {}});
}

Formula Formula::And(std::vector<Formula> fs) {
  return Make({FormulaKind::kAnd, {}, {}, std::move(fs), {}});
}

Formula Formula::And(Formula a, Formula b) {
  return And(std::vector<Formula>{std::move(a), std::move(b)});
}

Formula Formula::Or(std::vector<Formula> fs) {
  return Make({FormulaKind::kOr, {}, {}, std::move(fs), {}});
}

Formula Formula::Or(Formula a, Formula b) {
  return Or(std::vector<Formula>{std::move(a), std::move(b)});
}

Formula Formula::Implies(Formula a, Formula b) {
  return Make(
      {FormulaKind::kImplies, {}, {}, {std::move(a), std::move(b)}, {}});
}

Formula Formula::Iff(Formula a, Formula b) {
  return Make({FormulaKind::kIff, {}, {}, {std::move(a), std::move(b)}, {}});
}

Formula Formula::Exists(std::string variable, Formula body) {
  return Make({FormulaKind::kExists,
               {},
               {},
               {std::move(body)},
               std::move(variable)});
}

Formula Formula::Forall(std::string variable, Formula body) {
  return Make({FormulaKind::kForall,
               {},
               {},
               {std::move(body)},
               std::move(variable)});
}

Formula Formula::CountExists(std::size_t count, std::string variable,
                             Formula body) {
  FMTK_CHECK(count >= 1) << "counting quantifier threshold must be >= 1";
  internal_logic::FormulaNode node{FormulaKind::kCountExists,
                                   {},
                                   {},
                                   {std::move(body)},
                                   std::move(variable)};
  node.count = count;
  return Make(std::move(node));
}

Formula Formula::Exists(const std::vector<std::string>& variables,
                        Formula body) {
  Formula out = std::move(body);
  for (auto it = variables.rbegin(); it != variables.rend(); ++it) {
    out = Exists(*it, std::move(out));
  }
  return out;
}

Formula Formula::Forall(const std::vector<std::string>& variables,
                        Formula body) {
  Formula out = std::move(body);
  for (auto it = variables.rbegin(); it != variables.rend(); ++it) {
    out = Forall(*it, std::move(out));
  }
  return out;
}

Formula Formula::AllDistinct(const std::vector<std::string>& variables) {
  std::vector<Formula> parts;
  for (std::size_t i = 0; i < variables.size(); ++i) {
    for (std::size_t j = i + 1; j < variables.size(); ++j) {
      parts.push_back(Not(Equal(V(variables[i]), V(variables[j]))));
    }
  }
  return And(std::move(parts));
}

namespace {

const char* TermText(const Term& t) { return t.name.c_str(); }

int Precedence(FormulaKind kind) {
  switch (kind) {
    case FormulaKind::kIff:
      return 1;
    case FormulaKind::kImplies:
      return 2;
    case FormulaKind::kOr:
      return 3;
    case FormulaKind::kAnd:
      return 4;
    case FormulaKind::kNot:
    case FormulaKind::kExists:
    case FormulaKind::kForall:
    case FormulaKind::kCountExists:
      return 5;
    default:
      return 6;
  }
}

// A formula "extends right": its textual form ends in an open scope that
// would swallow any operator printed after it (quantifier bodies reach as far
// right as possible; negation passes the property through).
bool ExtendsRight(const Formula& f) {
  switch (f.kind()) {
    case FormulaKind::kExists:
    case FormulaKind::kForall:
    case FormulaKind::kCountExists:
      return true;
    case FormulaKind::kNot:
      return ExtendsRight(f.child(0));
    default:
      return false;
  }
}

// `protect_right` is set when more operator text follows this subformula, so
// a right-extending form must be parenthesized even if precedence allows it.
void Print(const Formula& f, int parent_precedence, bool protect_right,
           std::string& out) {
  const int prec = Precedence(f.kind());
  const bool parens =
      prec < parent_precedence || (protect_right && ExtendsRight(f));
  if (parens) {
    protect_right = false;
  }
  if (parens) {
    out += "(";
  }
  switch (f.kind()) {
    case FormulaKind::kTrue:
      out += "true";
      break;
    case FormulaKind::kFalse:
      out += "false";
      break;
    case FormulaKind::kAtom:
      out += f.relation_name();
      out += "(";
      for (std::size_t i = 0; i < f.terms().size(); ++i) {
        if (i > 0) {
          out += ",";
        }
        out += TermText(f.terms()[i]);
      }
      out += ")";
      break;
    case FormulaKind::kEqual:
      out += TermText(f.terms()[0]);
      out += " = ";
      out += TermText(f.terms()[1]);
      break;
    case FormulaKind::kNot:
      out += "!";
      Print(f.child(0), prec + 1, protect_right, out);
      break;
    case FormulaKind::kAnd:
    case FormulaKind::kOr: {
      if (f.child_count() == 0) {
        out += f.kind() == FormulaKind::kAnd ? "true" : "false";
        break;
      }
      const char* op = f.kind() == FormulaKind::kAnd ? " & " : " | ";
      for (std::size_t i = 0; i < f.child_count(); ++i) {
        if (i > 0) {
          out += op;
        }
        const bool last = (i + 1 == f.child_count());
        Print(f.child(i), prec + 1, last ? protect_right : true, out);
      }
      break;
    }
    case FormulaKind::kImplies:
      Print(f.child(0), prec + 1, true, out);
      out += " -> ";
      Print(f.child(1), prec, protect_right, out);  // Right-associative.
      break;
    case FormulaKind::kIff:
      Print(f.child(0), prec + 1, true, out);
      out += " <-> ";
      Print(f.child(1), prec + 1, protect_right, out);
      break;
    case FormulaKind::kExists:
    case FormulaKind::kForall:
      out += f.kind() == FormulaKind::kExists ? "exists " : "forall ";
      out += f.variable();
      out += ". ";
      Print(f.body(), prec, false, out);
      break;
    case FormulaKind::kCountExists:
      out += "atleast ";
      out += std::to_string(f.count());
      out += " ";
      out += f.variable();
      out += ". ";
      Print(f.body(), prec, false, out);
      break;
  }
  if (parens) {
    out += ")";
  }
}

}  // namespace

std::string Formula::ToString() const {
  std::string out;
  Print(*this, 0, false, out);
  return out;
}

}  // namespace fmtk
