#ifndef FMTK_LOGIC_FORMULA_H_
#define FMTK_LOGIC_FORMULA_H_

#include <cstddef>
#include <memory>
#include <string>
#include <string_view>
#include <vector>

namespace fmtk {

/// A first-order term. The survey's convention (relational signatures) means
/// terms are variables or constants only — no function applications.
struct Term {
  enum class Kind { kVariable, kConstant };

  Kind kind = Kind::kVariable;
  std::string name;

  static Term Var(std::string name) {
    return Term{Kind::kVariable, std::move(name)};
  }
  static Term Const(std::string name) {
    return Term{Kind::kConstant, std::move(name)};
  }

  bool is_variable() const { return kind == Kind::kVariable; }
  bool is_constant() const { return kind == Kind::kConstant; }

  friend bool operator==(const Term&, const Term&) = default;
};

enum class FormulaKind {
  kTrue,
  kFalse,
  kAtom,     // R(t1, ..., tk)
  kEqual,    // t1 = t2
  kNot,
  kAnd,      // n-ary, n >= 0 (empty = true)
  kOr,       // n-ary, n >= 0 (empty = false)
  kImplies,  // binary
  kIff,      // binary
  kExists,
  kForall,
  kCountExists,  // ∃^{>=k} x φ — the counting quantifier of FO(Cnt), the
                 // survey's pointer for aggregate queries. k >= 1.
};

class Formula;

namespace internal_logic {
struct FormulaNode {
  FormulaKind kind;
  std::string relation;            // kAtom: relation symbol name.
  std::vector<Term> terms;         // kAtom (arity many), kEqual (2).
  std::vector<Formula> children;   // connectives and quantifier bodies.
  std::string variable;            // quantifiers.
  std::size_t count = 0;           // kCountExists: the threshold k.
};
}  // namespace internal_logic

/// An immutable first-order formula over a relational vocabulary. Cheap to
/// copy (shared subtree representation). Build with the factories below or
/// parse with ParseFormula() from logic/parser.h.
class Formula {
 public:
  /// Formulas start as "true"; use the factories for anything else.
  Formula();

  FormulaKind kind() const { return node_->kind; }

  bool is_atomic() const {
    return kind() == FormulaKind::kTrue || kind() == FormulaKind::kFalse ||
           kind() == FormulaKind::kAtom || kind() == FormulaKind::kEqual;
  }

  /// Accessors; calling one that does not match kind() is a fatal error.
  const std::string& relation_name() const;     // kAtom
  const std::vector<Term>& terms() const;       // kAtom, kEqual
  const Formula& child(std::size_t i) const;    // any with children
  std::size_t child_count() const;
  const std::vector<Formula>& children() const;
  const std::string& variable() const;          // quantifiers
  const Formula& body() const;                  // quantifiers
  std::size_t count() const;                    // kCountExists

  /// True for all three quantifier kinds.
  bool is_quantifier() const {
    return kind() == FormulaKind::kExists || kind() == FormulaKind::kForall ||
           kind() == FormulaKind::kCountExists;
  }

  /// Structural equality (not logical equivalence).
  friend bool operator==(const Formula& a, const Formula& b) {
    return a.EqualsNode(b);
  }

  /// Human-readable text, re-parsable by ParseFormula.
  std::string ToString() const;

  /// Number of AST nodes (for size accounting in benches).
  std::size_t NodeCount() const;

  /// Stable identity of the shared AST node — usable as a memoization key
  /// (two Formulas sharing a subtree compare equal here; structurally equal
  /// but separately built formulas do not).
  const void* node_identity() const { return node_.get(); }

  // --- Factories -----------------------------------------------------------

  static Formula True();
  static Formula False();
  static Formula Atom(std::string relation, std::vector<Term> terms);
  static Formula Equal(Term a, Term b);
  static Formula Not(Formula f);
  static Formula And(std::vector<Formula> fs);
  static Formula And(Formula a, Formula b);
  static Formula Or(std::vector<Formula> fs);
  static Formula Or(Formula a, Formula b);
  static Formula Implies(Formula a, Formula b);
  static Formula Iff(Formula a, Formula b);
  static Formula Exists(std::string variable, Formula body);
  static Formula Forall(std::string variable, Formula body);

  /// ∃^{>=k} x φ: "at least k elements x satisfy φ". k must be >= 1.
  /// With k = 1 this is logically ∃, but remains a distinct node.
  static Formula CountExists(std::size_t count, std::string variable,
                             Formula body);

  /// Quantifies over several variables at once, left to right:
  /// Exists({"x","y"}, f) = ∃x ∃y f.
  static Formula Exists(const std::vector<std::string>& variables,
                        Formula body);
  static Formula Forall(const std::vector<std::string>& variables,
                        Formula body);

  /// ∧_{i<j} v_i != v_j — the "all distinct" gadget used throughout the
  /// survey's formulas (λ_n, extension axioms, scattered sequences).
  static Formula AllDistinct(const std::vector<std::string>& variables);

 private:
  friend struct internal_logic::FormulaNode;
  explicit Formula(std::shared_ptr<const internal_logic::FormulaNode> node)
      : node_(std::move(node)) {}

  bool EqualsNode(const Formula& other) const;

  static Formula Make(internal_logic::FormulaNode node);

  std::shared_ptr<const internal_logic::FormulaNode> node_;
};

/// Convenience term factories: V("x"), C("c").
inline Term V(std::string name) { return Term::Var(std::move(name)); }
inline Term C(std::string name) { return Term::Const(std::move(name)); }

}  // namespace fmtk

#endif  // FMTK_LOGIC_FORMULA_H_
