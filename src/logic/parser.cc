#include "logic/parser.h"

#include <cctype>
#include <string>
#include <utility>
#include <vector>

namespace fmtk {

namespace {

enum class TokenKind {
  kName,     // identifiers and keywords
  kLParen,
  kRParen,
  kComma,
  kDot,
  kAnd,      // &
  kOr,       // |
  kNot,      // ! or ~
  kImplies,  // ->
  kIff,      // <->
  kEqual,    // =
  kNotEqual, // !=
  kLess,     // <
  kEnd,
};

struct Token {
  TokenKind kind;
  std::string text;
  std::size_t offset = 0;
};

class Lexer {
 public:
  explicit Lexer(std::string_view text) : text_(text) {}

  Result<std::vector<Token>> Tokenize() {
    std::vector<Token> tokens;
    while (true) {
      SkipWhitespace();
      const std::size_t at = pos_;
      if (pos_ >= text_.size()) {
        tokens.push_back({TokenKind::kEnd, "", at});
        return tokens;
      }
      const char c = text_[pos_];
      if (std::isalpha(static_cast<unsigned char>(c)) || c == '_') {
        std::size_t start = pos_;
        while (pos_ < text_.size() &&
               (std::isalnum(static_cast<unsigned char>(text_[pos_])) ||
                text_[pos_] == '_' || text_[pos_] == '\'')) {
          ++pos_;
        }
        tokens.push_back({TokenKind::kName,
                          std::string(text_.substr(start, pos_ - start)),
                          at});
        continue;
      }
      if (std::isdigit(static_cast<unsigned char>(c))) {
        // Numeric names are allowed as constants/variables (e.g. parsers of
        // generated formulas); lex them as names.
        std::size_t start = pos_;
        while (pos_ < text_.size() &&
               std::isdigit(static_cast<unsigned char>(text_[pos_]))) {
          ++pos_;
        }
        tokens.push_back({TokenKind::kName,
                          std::string(text_.substr(start, pos_ - start)),
                          at});
        continue;
      }
      switch (c) {
        case '(':
          tokens.push_back({TokenKind::kLParen, "(", at});
          ++pos_;
          continue;
        case ')':
          tokens.push_back({TokenKind::kRParen, ")", at});
          ++pos_;
          continue;
        case ',':
          tokens.push_back({TokenKind::kComma, ",", at});
          ++pos_;
          continue;
        case '.':
        case ':':
          tokens.push_back({TokenKind::kDot, ".", at});
          ++pos_;
          continue;
        case '&':
          ++pos_;
          if (pos_ < text_.size() && text_[pos_] == '&') {
            ++pos_;
          }
          tokens.push_back({TokenKind::kAnd, "&", at});
          continue;
        case '|':
          ++pos_;
          if (pos_ < text_.size() && text_[pos_] == '|') {
            ++pos_;
          }
          tokens.push_back({TokenKind::kOr, "|", at});
          continue;
        case '~':
          tokens.push_back({TokenKind::kNot, "~", at});
          ++pos_;
          continue;
        case '!':
          ++pos_;
          if (pos_ < text_.size() && text_[pos_] == '=') {
            ++pos_;
            tokens.push_back({TokenKind::kNotEqual, "!=", at});
          } else {
            tokens.push_back({TokenKind::kNot, "!", at});
          }
          continue;
        case '=':
          tokens.push_back({TokenKind::kEqual, "=", at});
          ++pos_;
          continue;
        case '-':
          ++pos_;
          if (pos_ < text_.size() && text_[pos_] == '>') {
            ++pos_;
            tokens.push_back({TokenKind::kImplies, "->", at});
            continue;
          }
          return Status::ParseError("stray '-' at offset " +
                                    std::to_string(at));
        case '<':
          ++pos_;
          if (pos_ + 1 < text_.size() && text_[pos_] == '-' &&
              text_[pos_ + 1] == '>') {
            pos_ += 2;
            tokens.push_back({TokenKind::kIff, "<->", at});
          } else {
            tokens.push_back({TokenKind::kLess, "<", at});
          }
          continue;
        default:
          return Status::ParseError(std::string("unexpected character '") +
                                    c + "' at offset " + std::to_string(at));
      }
    }
  }

 private:
  void SkipWhitespace() {
    while (pos_ < text_.size() &&
           std::isspace(static_cast<unsigned char>(text_[pos_]))) {
      ++pos_;
    }
  }

  std::string_view text_;
  std::size_t pos_ = 0;
};

bool IsKeyword(const Token& t, std::string_view word) {
  return t.kind == TokenKind::kName && t.text == word;
}

class Parser {
 public:
  Parser(std::vector<Token> tokens, const Signature* signature)
      : tokens_(std::move(tokens)), signature_(signature) {}

  Result<Formula> Parse() {
    FMTK_ASSIGN_OR_RETURN(Formula f, ParseIff());
    if (Peek().kind != TokenKind::kEnd) {
      return Error("trailing input");
    }
    return f;
  }

 private:
  const Token& Peek() const { return tokens_[pos_]; }
  const Token& Advance() { return tokens_[pos_++]; }

  Status Error(const std::string& message) const {
    return Status::ParseError(message + " at offset " +
                              std::to_string(Peek().offset) + " (near '" +
                              Peek().text + "')");
  }

  Result<Formula> ParseIff() {
    FMTK_ASSIGN_OR_RETURN(Formula left, ParseImplies());
    while (Peek().kind == TokenKind::kIff) {
      Advance();
      FMTK_ASSIGN_OR_RETURN(Formula right, ParseImplies());
      left = Formula::Iff(std::move(left), std::move(right));
    }
    return left;
  }

  Result<Formula> ParseImplies() {
    FMTK_ASSIGN_OR_RETURN(Formula left, ParseOr());
    if (Peek().kind == TokenKind::kImplies) {
      Advance();
      FMTK_ASSIGN_OR_RETURN(Formula right, ParseImplies());
      return Formula::Implies(std::move(left), std::move(right));
    }
    return left;
  }

  Result<Formula> ParseOr() {
    FMTK_ASSIGN_OR_RETURN(Formula left, ParseAnd());
    while (Peek().kind == TokenKind::kOr || IsKeyword(Peek(), "or")) {
      Advance();
      FMTK_ASSIGN_OR_RETURN(Formula right, ParseAnd());
      left = Formula::Or(std::move(left), std::move(right));
    }
    return left;
  }

  Result<Formula> ParseAnd() {
    FMTK_ASSIGN_OR_RETURN(Formula left, ParseUnary());
    while (Peek().kind == TokenKind::kAnd || IsKeyword(Peek(), "and")) {
      Advance();
      FMTK_ASSIGN_OR_RETURN(Formula right, ParseUnary());
      left = Formula::And(std::move(left), std::move(right));
    }
    return left;
  }

  Result<Formula> ParseUnary() {
    if (Peek().kind == TokenKind::kNot || IsKeyword(Peek(), "not")) {
      Advance();
      FMTK_ASSIGN_OR_RETURN(Formula f, ParseUnary());
      return Formula::Not(std::move(f));
    }
    if (IsKeyword(Peek(), "atleast")) {
      // Counting quantifier: atleast <k> <var> . <formula>.
      Advance();
      if (Peek().kind != TokenKind::kName ||
          !std::isdigit(static_cast<unsigned char>(Peek().text[0]))) {
        return Error("expected a count after 'atleast'");
      }
      const std::size_t count = std::stoul(Advance().text);
      if (count == 0) {
        return Error("'atleast 0' is trivially true; use a count >= 1");
      }
      if (Peek().kind != TokenKind::kName) {
        return Error("expected a variable after the count");
      }
      std::string variable = Advance().text;
      if (Peek().kind != TokenKind::kDot) {
        return Error("expected '.' after the counting quantifier");
      }
      Advance();
      FMTK_ASSIGN_OR_RETURN(Formula body, ParseIff());
      return Formula::CountExists(count, std::move(variable),
                                  std::move(body));
    }
    const bool is_exists =
        IsKeyword(Peek(), "exists") || IsKeyword(Peek(), "ex");
    const bool is_forall =
        IsKeyword(Peek(), "forall") || IsKeyword(Peek(), "all");
    if (is_exists || is_forall) {
      Advance();
      std::vector<std::string> variables;
      while (Peek().kind == TokenKind::kName && !IsKeyword(Peek(), "true") &&
             !IsKeyword(Peek(), "false")) {
        variables.push_back(Advance().text);
        if (Peek().kind == TokenKind::kComma) {
          Advance();
        }
      }
      if (variables.empty()) {
        return Error("quantifier without variables");
      }
      if (Peek().kind != TokenKind::kDot) {
        return Error("expected '.' after quantified variables");
      }
      Advance();
      // The quantifier's scope extends as far right as possible.
      FMTK_ASSIGN_OR_RETURN(Formula body, ParseIff());
      return is_exists ? Formula::Exists(variables, std::move(body))
                       : Formula::Forall(variables, std::move(body));
    }
    return ParsePrimary();
  }

  Term ResolveTerm(const std::string& name) const {
    if (signature_ != nullptr && signature_->FindConstant(name).has_value()) {
      return Term::Const(name);
    }
    return Term::Var(name);
  }

  Result<Formula> ParsePrimary() {
    if (Peek().kind == TokenKind::kLParen) {
      Advance();
      FMTK_ASSIGN_OR_RETURN(Formula f, ParseIff());
      if (Peek().kind != TokenKind::kRParen) {
        return Error("expected ')'");
      }
      Advance();
      return f;
    }
    if (IsKeyword(Peek(), "true")) {
      Advance();
      return Formula::True();
    }
    if (IsKeyword(Peek(), "false")) {
      Advance();
      return Formula::False();
    }
    if (Peek().kind != TokenKind::kName) {
      return Error("expected a formula");
    }
    const std::string name = Advance().text;
    if (Peek().kind == TokenKind::kLParen) {
      // Relation atom R(t1,...,tk).
      Advance();
      std::vector<Term> terms;
      if (Peek().kind != TokenKind::kRParen) {
        while (true) {
          if (Peek().kind != TokenKind::kName) {
            return Error("expected a term");
          }
          terms.push_back(ResolveTerm(Advance().text));
          if (Peek().kind == TokenKind::kComma) {
            Advance();
            continue;
          }
          break;
        }
      }
      if (Peek().kind != TokenKind::kRParen) {
        return Error("expected ')' after atom arguments");
      }
      Advance();
      return Formula::Atom(name, std::move(terms));
    }
    // `name` starts a term: equality, inequality, or infix '<'.
    Term left = ResolveTerm(name);
    switch (Peek().kind) {
      case TokenKind::kEqual: {
        Advance();
        if (Peek().kind != TokenKind::kName) {
          return Error("expected a term after '='");
        }
        Term right = ResolveTerm(Advance().text);
        return Formula::Equal(std::move(left), std::move(right));
      }
      case TokenKind::kNotEqual: {
        Advance();
        if (Peek().kind != TokenKind::kName) {
          return Error("expected a term after '!='");
        }
        Term right = ResolveTerm(Advance().text);
        return Formula::Not(
            Formula::Equal(std::move(left), std::move(right)));
      }
      case TokenKind::kLess: {
        Advance();
        if (Peek().kind != TokenKind::kName) {
          return Error("expected a term after '<'");
        }
        Term right = ResolveTerm(Advance().text);
        return Formula::Atom("<", {std::move(left), std::move(right)});
      }
      default:
        // A bare name: a 0-ary relation atom (propositional flag).
        return Formula::Atom(name, {});
    }
  }

  std::vector<Token> tokens_;
  const Signature* signature_;
  std::size_t pos_ = 0;
};

}  // namespace

Result<Formula> ParseFormula(std::string_view text,
                             const Signature* signature) {
  Lexer lexer(text);
  FMTK_ASSIGN_OR_RETURN(std::vector<Token> tokens, lexer.Tokenize());
  Parser parser(std::move(tokens), signature);
  return parser.Parse();
}

}  // namespace fmtk
