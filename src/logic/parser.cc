#include "logic/parser.h"

#include <cctype>
#include <string>
#include <utility>
#include <vector>

namespace fmtk {

namespace {

enum class TokenKind {
  kName,     // identifiers and keywords
  kLParen,
  kRParen,
  kComma,
  kDot,
  kAnd,      // &
  kOr,       // |
  kNot,      // ! or ~
  kImplies,  // ->
  kIff,      // <->
  kEqual,    // =
  kNotEqual, // !=
  kLess,     // <
  kEnd,
};

struct Token {
  TokenKind kind;
  std::string text;
  std::size_t offset = 0;
};

class Lexer {
 public:
  explicit Lexer(std::string_view text) : text_(text) {}

  Result<std::vector<Token>> Tokenize() {
    std::vector<Token> tokens;
    while (true) {
      SkipWhitespace();
      const std::size_t at = pos_;
      if (pos_ >= text_.size()) {
        tokens.push_back({TokenKind::kEnd, "", at});
        return tokens;
      }
      const char c = text_[pos_];
      if (std::isalpha(static_cast<unsigned char>(c)) || c == '_') {
        std::size_t start = pos_;
        while (pos_ < text_.size() &&
               (std::isalnum(static_cast<unsigned char>(text_[pos_])) ||
                text_[pos_] == '_' || text_[pos_] == '\'')) {
          ++pos_;
        }
        tokens.push_back({TokenKind::kName,
                          std::string(text_.substr(start, pos_ - start)),
                          at});
        continue;
      }
      if (std::isdigit(static_cast<unsigned char>(c))) {
        // Numeric names are allowed as constants/variables (e.g. parsers of
        // generated formulas); lex them as names.
        std::size_t start = pos_;
        while (pos_ < text_.size() &&
               std::isdigit(static_cast<unsigned char>(text_[pos_]))) {
          ++pos_;
        }
        tokens.push_back({TokenKind::kName,
                          std::string(text_.substr(start, pos_ - start)),
                          at});
        continue;
      }
      switch (c) {
        case '(':
          tokens.push_back({TokenKind::kLParen, "(", at});
          ++pos_;
          continue;
        case ')':
          tokens.push_back({TokenKind::kRParen, ")", at});
          ++pos_;
          continue;
        case ',':
          tokens.push_back({TokenKind::kComma, ",", at});
          ++pos_;
          continue;
        case '.':
        case ':':
          tokens.push_back({TokenKind::kDot, ".", at});
          ++pos_;
          continue;
        case '&':
          ++pos_;
          if (pos_ < text_.size() && text_[pos_] == '&') {
            ++pos_;
          }
          tokens.push_back({TokenKind::kAnd, "&", at});
          continue;
        case '|':
          ++pos_;
          if (pos_ < text_.size() && text_[pos_] == '|') {
            ++pos_;
          }
          tokens.push_back({TokenKind::kOr, "|", at});
          continue;
        case '~':
          tokens.push_back({TokenKind::kNot, "~", at});
          ++pos_;
          continue;
        case '!':
          ++pos_;
          if (pos_ < text_.size() && text_[pos_] == '=') {
            ++pos_;
            tokens.push_back({TokenKind::kNotEqual, "!=", at});
          } else {
            tokens.push_back({TokenKind::kNot, "!", at});
          }
          continue;
        case '=':
          tokens.push_back({TokenKind::kEqual, "=", at});
          ++pos_;
          continue;
        case '-':
          ++pos_;
          if (pos_ < text_.size() && text_[pos_] == '>') {
            ++pos_;
            tokens.push_back({TokenKind::kImplies, "->", at});
            continue;
          }
          return Status::ParseError("stray '-' at offset " +
                                    std::to_string(at));
        case '<':
          ++pos_;
          if (pos_ + 1 < text_.size() && text_[pos_] == '-' &&
              text_[pos_ + 1] == '>') {
            pos_ += 2;
            tokens.push_back({TokenKind::kIff, "<->", at});
          } else {
            tokens.push_back({TokenKind::kLess, "<", at});
          }
          continue;
        default:
          return Status::ParseError(std::string("unexpected character '") +
                                    c + "' at offset " + std::to_string(at));
      }
    }
  }

 private:
  void SkipWhitespace() {
    while (pos_ < text_.size() &&
           std::isspace(static_cast<unsigned char>(text_[pos_]))) {
      ++pos_;
    }
  }

  std::string_view text_;
  std::size_t pos_ = 0;
};

bool IsKeyword(const Token& t, std::string_view word) {
  return t.kind == TokenKind::kName && t.text == word;
}

class Parser {
 public:
  // `spans` may be null (span recording off).
  Parser(std::vector<Token> tokens, const Signature* signature,
         FormulaSpans* spans)
      : tokens_(std::move(tokens)), signature_(signature), spans_(spans) {}

  Result<Formula> Parse() {
    FMTK_ASSIGN_OR_RETURN(Formula f, ParseIff());
    if (Peek().kind != TokenKind::kEnd) {
      return Error("trailing input");
    }
    return f;
  }

 private:
  const Token& Peek() const { return tokens_[pos_]; }
  const Token& Advance() { return tokens_[pos_++]; }

  // Byte offset just past the most recently consumed token.
  std::size_t EndOfConsumed() const {
    if (pos_ == 0) {
      return 0;
    }
    const Token& prev = tokens_[pos_ - 1];
    return prev.offset + prev.text.size();
  }

  // Records [start, end-of-consumed-input) as the span of `f`'s node.
  // Desugared inner nodes (nested quantifier blocks) stay untagged; the
  // analyzer falls back to the nearest tagged ancestor.
  Formula Tag(Formula f, std::size_t start) {
    if (spans_ != nullptr) {
      spans_->Set(f, SourceSpan::Of(start, EndOfConsumed() - start));
    }
    return f;
  }

  Status Error(const std::string& message) const {
    return Status::ParseError(message + " at offset " +
                              std::to_string(Peek().offset) + " (near '" +
                              Peek().text + "')");
  }

  Result<Formula> ParseIff() {
    const std::size_t start = Peek().offset;
    FMTK_ASSIGN_OR_RETURN(Formula left, ParseImplies());
    while (Peek().kind == TokenKind::kIff) {
      Advance();
      FMTK_ASSIGN_OR_RETURN(Formula right, ParseImplies());
      left = Tag(Formula::Iff(std::move(left), std::move(right)), start);
    }
    return left;
  }

  Result<Formula> ParseImplies() {
    const std::size_t start = Peek().offset;
    FMTK_ASSIGN_OR_RETURN(Formula left, ParseOr());
    if (Peek().kind == TokenKind::kImplies) {
      Advance();
      FMTK_ASSIGN_OR_RETURN(Formula right, ParseImplies());
      return Tag(Formula::Implies(std::move(left), std::move(right)), start);
    }
    return left;
  }

  Result<Formula> ParseOr() {
    const std::size_t start = Peek().offset;
    FMTK_ASSIGN_OR_RETURN(Formula left, ParseAnd());
    while (Peek().kind == TokenKind::kOr || IsKeyword(Peek(), "or")) {
      Advance();
      FMTK_ASSIGN_OR_RETURN(Formula right, ParseAnd());
      left = Tag(Formula::Or(std::move(left), std::move(right)), start);
    }
    return left;
  }

  Result<Formula> ParseAnd() {
    const std::size_t start = Peek().offset;
    FMTK_ASSIGN_OR_RETURN(Formula left, ParseUnary());
    while (Peek().kind == TokenKind::kAnd || IsKeyword(Peek(), "and")) {
      Advance();
      FMTK_ASSIGN_OR_RETURN(Formula right, ParseUnary());
      left = Tag(Formula::And(std::move(left), std::move(right)), start);
    }
    return left;
  }

  Result<Formula> ParseUnary() {
    const std::size_t start = Peek().offset;
    if (Peek().kind == TokenKind::kNot || IsKeyword(Peek(), "not")) {
      Advance();
      FMTK_ASSIGN_OR_RETURN(Formula f, ParseUnary());
      return Tag(Formula::Not(std::move(f)), start);
    }
    if (IsKeyword(Peek(), "atleast")) {
      // Counting quantifier: atleast <k> <var> . <formula>.
      Advance();
      if (Peek().kind != TokenKind::kName ||
          !std::isdigit(static_cast<unsigned char>(Peek().text[0]))) {
        return Error("expected a count after 'atleast'");
      }
      const std::size_t count = std::stoul(Advance().text);
      if (count == 0) {
        return Error("'atleast 0' is trivially true; use a count >= 1");
      }
      if (Peek().kind != TokenKind::kName) {
        return Error("expected a variable after the count");
      }
      std::string variable = Advance().text;
      if (Peek().kind != TokenKind::kDot) {
        return Error("expected '.' after the counting quantifier");
      }
      Advance();
      FMTK_ASSIGN_OR_RETURN(Formula body, ParseIff());
      return Tag(
          Formula::CountExists(count, std::move(variable), std::move(body)),
          start);
    }
    const bool is_exists =
        IsKeyword(Peek(), "exists") || IsKeyword(Peek(), "ex");
    const bool is_forall =
        IsKeyword(Peek(), "forall") || IsKeyword(Peek(), "all");
    if (is_exists || is_forall) {
      Advance();
      std::vector<std::string> variables;
      while (Peek().kind == TokenKind::kName && !IsKeyword(Peek(), "true") &&
             !IsKeyword(Peek(), "false")) {
        variables.push_back(Advance().text);
        if (Peek().kind == TokenKind::kComma) {
          Advance();
        }
      }
      if (variables.empty()) {
        return Error("quantifier without variables");
      }
      if (Peek().kind != TokenKind::kDot) {
        return Error("expected '.' after quantified variables");
      }
      Advance();
      // The quantifier's scope extends as far right as possible. Only the
      // outermost node of the desugared block is tagged; the analyzer falls
      // back to it for the inner per-variable quantifier nodes.
      FMTK_ASSIGN_OR_RETURN(Formula body, ParseIff());
      return Tag(is_exists ? Formula::Exists(variables, std::move(body))
                           : Formula::Forall(variables, std::move(body)),
                 start);
    }
    return ParsePrimary();
  }

  Term ResolveTerm(const std::string& name) const {
    if (signature_ != nullptr && signature_->FindConstant(name).has_value()) {
      return Term::Const(name);
    }
    return Term::Var(name);
  }

  Result<Formula> ParsePrimary() {
    const std::size_t start = Peek().offset;
    if (Peek().kind == TokenKind::kLParen) {
      Advance();
      FMTK_ASSIGN_OR_RETURN(Formula f, ParseIff());
      if (Peek().kind != TokenKind::kRParen) {
        return Error("expected ')'");
      }
      Advance();
      return f;
    }
    if (IsKeyword(Peek(), "true")) {
      Advance();
      return Tag(Formula::True(), start);
    }
    if (IsKeyword(Peek(), "false")) {
      Advance();
      return Tag(Formula::False(), start);
    }
    if (Peek().kind != TokenKind::kName) {
      return Error("expected a formula");
    }
    const std::string name = Advance().text;
    if (Peek().kind == TokenKind::kLParen) {
      // Relation atom R(t1,...,tk).
      Advance();
      std::vector<Term> terms;
      if (Peek().kind != TokenKind::kRParen) {
        while (true) {
          if (Peek().kind != TokenKind::kName) {
            return Error("expected a term");
          }
          terms.push_back(ResolveTerm(Advance().text));
          if (Peek().kind == TokenKind::kComma) {
            Advance();
            continue;
          }
          break;
        }
      }
      if (Peek().kind != TokenKind::kRParen) {
        return Error("expected ')' after atom arguments");
      }
      Advance();
      return Tag(Formula::Atom(name, std::move(terms)), start);
    }
    // `name` starts a term: equality, inequality, or infix '<'.
    Term left = ResolveTerm(name);
    switch (Peek().kind) {
      case TokenKind::kEqual: {
        Advance();
        if (Peek().kind != TokenKind::kName) {
          return Error("expected a term after '='");
        }
        Term right = ResolveTerm(Advance().text);
        return Tag(Formula::Equal(std::move(left), std::move(right)), start);
      }
      case TokenKind::kNotEqual: {
        Advance();
        if (Peek().kind != TokenKind::kName) {
          return Error("expected a term after '!='");
        }
        Term right = ResolveTerm(Advance().text);
        // "x != y" desugars to !(x = y); tag both nodes with the surface
        // span so diagnostics on either point at the inequality.
        Formula equal = Tag(Formula::Equal(std::move(left), std::move(right)),
                            start);
        return Tag(Formula::Not(std::move(equal)), start);
      }
      case TokenKind::kLess: {
        Advance();
        if (Peek().kind != TokenKind::kName) {
          return Error("expected a term after '<'");
        }
        Term right = ResolveTerm(Advance().text);
        return Tag(Formula::Atom("<", {std::move(left), std::move(right)}),
                   start);
      }
      default:
        // A bare name: a 0-ary relation atom (propositional flag).
        return Tag(Formula::Atom(name, {}), start);
    }
  }

  std::vector<Token> tokens_;
  const Signature* signature_;
  FormulaSpans* spans_;
  std::size_t pos_ = 0;
};

}  // namespace

Result<Formula> ParseFormula(std::string_view text,
                             const Signature* signature) {
  FMTK_ASSIGN_OR_RETURN(ParsedFormula parsed,
                        ParseFormulaWithSpans(text, signature));
  return std::move(parsed.formula);
}

Result<ParsedFormula> ParseFormulaWithSpans(std::string_view text,
                                            const Signature* signature) {
  Lexer lexer(text);
  FMTK_ASSIGN_OR_RETURN(std::vector<Token> tokens, lexer.Tokenize());
  ParsedFormula parsed;
  Parser parser(std::move(tokens), signature, &parsed.spans);
  FMTK_ASSIGN_OR_RETURN(parsed.formula, parser.Parse());
  return parsed;
}

}  // namespace fmtk
