#include "logic/transform.h"

#include <string>
#include <utility>
#include <vector>

#include "base/check.h"
#include "logic/analysis.h"

namespace fmtk {

namespace {

Formula Nnf(const Formula& f, bool negated);

Formula NnfChildren(const Formula& f, bool negated, FormulaKind kind) {
  std::vector<Formula> children;
  children.reserve(f.child_count());
  for (const Formula& c : f.children()) {
    children.push_back(Nnf(c, negated));
  }
  return kind == FormulaKind::kAnd ? Formula::And(std::move(children))
                                   : Formula::Or(std::move(children));
}

Formula Nnf(const Formula& f, bool negated) {
  switch (f.kind()) {
    case FormulaKind::kTrue:
      return negated ? Formula::False() : Formula::True();
    case FormulaKind::kFalse:
      return negated ? Formula::True() : Formula::False();
    case FormulaKind::kAtom:
    case FormulaKind::kEqual:
      return negated ? Formula::Not(f) : f;
    case FormulaKind::kNot:
      return Nnf(f.child(0), !negated);
    case FormulaKind::kAnd:
      return NnfChildren(f, negated,
                         negated ? FormulaKind::kOr : FormulaKind::kAnd);
    case FormulaKind::kOr:
      return NnfChildren(f, negated,
                         negated ? FormulaKind::kAnd : FormulaKind::kOr);
    case FormulaKind::kImplies:
      // a -> b == !a | b;  !(a -> b) == a & !b.
      if (negated) {
        return Formula::And(Nnf(f.child(0), false), Nnf(f.child(1), true));
      }
      return Formula::Or(Nnf(f.child(0), true), Nnf(f.child(1), false));
    case FormulaKind::kIff:
      // a <-> b == (a & b) | (!a & !b);  negation swaps one side.
      if (negated) {
        return Formula::Or(
            Formula::And(Nnf(f.child(0), false), Nnf(f.child(1), true)),
            Formula::And(Nnf(f.child(0), true), Nnf(f.child(1), false)));
      }
      return Formula::Or(
          Formula::And(Nnf(f.child(0), false), Nnf(f.child(1), false)),
          Formula::And(Nnf(f.child(0), true), Nnf(f.child(1), true)));
    case FormulaKind::kExists:
      return negated ? Formula::Forall(f.variable(), Nnf(f.body(), true))
                     : Formula::Exists(f.variable(), Nnf(f.body(), false));
    case FormulaKind::kForall:
      return negated ? Formula::Exists(f.variable(), Nnf(f.body(), true))
                     : Formula::Forall(f.variable(), Nnf(f.body(), false));
    case FormulaKind::kCountExists: {
      // No dual connective in the syntax: normalize the body positively and
      // keep the negation (if any) in front.
      Formula inner = Formula::CountExists(f.count(), f.variable(),
                                           Nnf(f.body(), false));
      return negated ? Formula::Not(std::move(inner)) : inner;
    }
  }
  FMTK_CHECK(false) << "unreachable formula kind";
  return f;
}

}  // namespace

Formula NegationNormalForm(const Formula& f) { return Nnf(f, false); }

Formula Simplify(const Formula& f) {
  switch (f.kind()) {
    case FormulaKind::kTrue:
    case FormulaKind::kFalse:
    case FormulaKind::kAtom:
      return f;
    case FormulaKind::kEqual:
      // t = t folds to true.
      if (f.terms()[0] == f.terms()[1]) {
        return Formula::True();
      }
      return f;
    case FormulaKind::kNot: {
      Formula inner = Simplify(f.child(0));
      switch (inner.kind()) {
        case FormulaKind::kTrue:
          return Formula::False();
        case FormulaKind::kFalse:
          return Formula::True();
        case FormulaKind::kNot:
          return inner.child(0);
        default:
          return Formula::Not(std::move(inner));
      }
    }
    case FormulaKind::kAnd:
    case FormulaKind::kOr: {
      const bool is_and = f.kind() == FormulaKind::kAnd;
      const FormulaKind unit = is_and ? FormulaKind::kTrue : FormulaKind::kFalse;
      const FormulaKind zero = is_and ? FormulaKind::kFalse : FormulaKind::kTrue;
      std::vector<Formula> children;
      for (const Formula& c : f.children()) {
        Formula s = Simplify(c);
        if (s.kind() == zero) {
          return is_and ? Formula::False() : Formula::True();
        }
        if (s.kind() == unit) {
          continue;
        }
        if (s.kind() == f.kind()) {
          for (const Formula& g : s.children()) {
            children.push_back(g);
          }
        } else {
          children.push_back(std::move(s));
        }
      }
      if (children.empty()) {
        return is_and ? Formula::True() : Formula::False();
      }
      if (children.size() == 1) {
        return children[0];
      }
      return is_and ? Formula::And(std::move(children))
                    : Formula::Or(std::move(children));
    }
    case FormulaKind::kImplies: {
      Formula a = Simplify(f.child(0));
      Formula b = Simplify(f.child(1));
      if (a.kind() == FormulaKind::kFalse || b.kind() == FormulaKind::kTrue) {
        return Formula::True();
      }
      if (a.kind() == FormulaKind::kTrue) {
        return b;
      }
      return Formula::Implies(std::move(a), std::move(b));
    }
    case FormulaKind::kIff: {
      Formula a = Simplify(f.child(0));
      Formula b = Simplify(f.child(1));
      if (a.kind() == FormulaKind::kTrue) {
        return b;
      }
      if (b.kind() == FormulaKind::kTrue) {
        return a;
      }
      if (a.kind() == FormulaKind::kFalse) {
        return Simplify(Formula::Not(std::move(b)));
      }
      if (b.kind() == FormulaKind::kFalse) {
        return Simplify(Formula::Not(std::move(a)));
      }
      return Formula::Iff(std::move(a), std::move(b));
    }
    case FormulaKind::kExists:
      return Formula::Exists(f.variable(), Simplify(f.body()));
    case FormulaKind::kForall:
      return Formula::Forall(f.variable(), Simplify(f.body()));
    case FormulaKind::kCountExists:
      return Formula::CountExists(f.count(), f.variable(),
                                  Simplify(f.body()));
  }
  FMTK_CHECK(false) << "unreachable formula kind";
  return f;
}

namespace {

struct QuantifierPrefix {
  // (is_exists, variable) pairs, outermost first.
  std::vector<std::pair<bool, std::string>> entries;
};

// `f` must be in NNF with bound variables renamed apart.
Formula PullQuantifiers(const Formula& f, QuantifierPrefix& prefix) {
  switch (f.kind()) {
    case FormulaKind::kExists:
      prefix.entries.emplace_back(true, f.variable());
      return PullQuantifiers(f.body(), prefix);
    case FormulaKind::kForall:
      prefix.entries.emplace_back(false, f.variable());
      return PullQuantifiers(f.body(), prefix);
    case FormulaKind::kAnd:
    case FormulaKind::kOr: {
      std::vector<Formula> children;
      children.reserve(f.child_count());
      for (const Formula& c : f.children()) {
        children.push_back(PullQuantifiers(c, prefix));
      }
      return f.kind() == FormulaKind::kAnd
                 ? Formula::And(std::move(children))
                 : Formula::Or(std::move(children));
    }
    case FormulaKind::kNot:  // NNF: only over atoms; no quantifiers below.
    default:
      return f;
  }
}

}  // namespace

Formula PrenexNormalForm(const Formula& f) {
  Formula prepared = RenameBoundVariablesApart(NegationNormalForm(f));
  QuantifierPrefix prefix;
  Formula matrix = PullQuantifiers(prepared, prefix);
  Formula out = std::move(matrix);
  for (auto it = prefix.entries.rbegin(); it != prefix.entries.rend(); ++it) {
    out = it->first ? Formula::Exists(it->second, std::move(out))
                    : Formula::Forall(it->second, std::move(out));
  }
  return out;
}

}  // namespace fmtk
