file(REMOVE_RECURSE
  "CMakeFiles/algorithmic_test.dir/algorithmic_test.cc.o"
  "CMakeFiles/algorithmic_test.dir/algorithmic_test.cc.o.d"
  "algorithmic_test"
  "algorithmic_test.pdb"
  "algorithmic_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/algorithmic_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
