# Empty dependencies file for algorithmic_test.
# This may be replaced when dependencies are built.
