file(REMOVE_RECURSE
  "CMakeFiles/order_invariance_test.dir/order_invariance_test.cc.o"
  "CMakeFiles/order_invariance_test.dir/order_invariance_test.cc.o.d"
  "order_invariance_test"
  "order_invariance_test.pdb"
  "order_invariance_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/order_invariance_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
