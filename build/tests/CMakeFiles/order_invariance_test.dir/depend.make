# Empty dependencies file for order_invariance_test.
# This may be replaced when dependencies are built.
