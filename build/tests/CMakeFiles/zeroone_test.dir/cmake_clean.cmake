file(REMOVE_RECURSE
  "CMakeFiles/zeroone_test.dir/zeroone_test.cc.o"
  "CMakeFiles/zeroone_test.dir/zeroone_test.cc.o.d"
  "zeroone_test"
  "zeroone_test.pdb"
  "zeroone_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/zeroone_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
