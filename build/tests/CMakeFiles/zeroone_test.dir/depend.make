# Empty dependencies file for zeroone_test.
# This may be replaced when dependencies are built.
