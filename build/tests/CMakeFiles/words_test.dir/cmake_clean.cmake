file(REMOVE_RECURSE
  "CMakeFiles/words_test.dir/words_test.cc.o"
  "CMakeFiles/words_test.dir/words_test.cc.o.d"
  "words_test"
  "words_test.pdb"
  "words_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/words_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
