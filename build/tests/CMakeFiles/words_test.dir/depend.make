# Empty dependencies file for words_test.
# This may be replaced when dependencies are built.
