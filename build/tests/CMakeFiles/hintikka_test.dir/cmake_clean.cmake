file(REMOVE_RECURSE
  "CMakeFiles/hintikka_test.dir/hintikka_test.cc.o"
  "CMakeFiles/hintikka_test.dir/hintikka_test.cc.o.d"
  "hintikka_test"
  "hintikka_test.pdb"
  "hintikka_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/hintikka_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
