# Empty compiler generated dependencies file for hintikka_test.
# This may be replaced when dependencies are built.
