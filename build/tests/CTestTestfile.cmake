# CMake generated Testfile for 
# Source directory: /root/repo/tests
# Build directory: /root/repo/build/tests
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
include("/root/repo/build/tests/base_test[1]_include.cmake")
include("/root/repo/build/tests/structures_test[1]_include.cmake")
include("/root/repo/build/tests/graph_test[1]_include.cmake")
include("/root/repo/build/tests/isomorphism_test[1]_include.cmake")
include("/root/repo/build/tests/logic_test[1]_include.cmake")
include("/root/repo/build/tests/eval_test[1]_include.cmake")
include("/root/repo/build/tests/games_test[1]_include.cmake")
include("/root/repo/build/tests/hintikka_test[1]_include.cmake")
include("/root/repo/build/tests/locality_test[1]_include.cmake")
include("/root/repo/build/tests/datalog_test[1]_include.cmake")
include("/root/repo/build/tests/queries_test[1]_include.cmake")
include("/root/repo/build/tests/interp_test[1]_include.cmake")
include("/root/repo/build/tests/algorithmic_test[1]_include.cmake")
include("/root/repo/build/tests/zeroone_test[1]_include.cmake")
include("/root/repo/build/tests/circuits_test[1]_include.cmake")
include("/root/repo/build/tests/qbf_test[1]_include.cmake")
include("/root/repo/build/tests/counting_test[1]_include.cmake")
include("/root/repo/build/tests/order_invariance_test[1]_include.cmake")
include("/root/repo/build/tests/io_test[1]_include.cmake")
include("/root/repo/build/tests/properties_test[1]_include.cmake")
include("/root/repo/build/tests/strategy_test[1]_include.cmake")
include("/root/repo/build/tests/coverage_test[1]_include.cmake")
include("/root/repo/build/tests/words_test[1]_include.cmake")
