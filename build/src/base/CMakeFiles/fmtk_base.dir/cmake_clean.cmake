file(REMOVE_RECURSE
  "CMakeFiles/fmtk_base.dir/status.cc.o"
  "CMakeFiles/fmtk_base.dir/status.cc.o.d"
  "CMakeFiles/fmtk_base.dir/string_util.cc.o"
  "CMakeFiles/fmtk_base.dir/string_util.cc.o.d"
  "libfmtk_base.a"
  "libfmtk_base.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fmtk_base.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
