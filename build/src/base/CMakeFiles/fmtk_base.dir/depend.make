# Empty dependencies file for fmtk_base.
# This may be replaced when dependencies are built.
