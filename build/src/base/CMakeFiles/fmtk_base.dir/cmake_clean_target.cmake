file(REMOVE_RECURSE
  "libfmtk_base.a"
)
