file(REMOVE_RECURSE
  "CMakeFiles/fmtk_structures.dir/generators.cc.o"
  "CMakeFiles/fmtk_structures.dir/generators.cc.o.d"
  "CMakeFiles/fmtk_structures.dir/graph.cc.o"
  "CMakeFiles/fmtk_structures.dir/graph.cc.o.d"
  "CMakeFiles/fmtk_structures.dir/io.cc.o"
  "CMakeFiles/fmtk_structures.dir/io.cc.o.d"
  "CMakeFiles/fmtk_structures.dir/isomorphism.cc.o"
  "CMakeFiles/fmtk_structures.dir/isomorphism.cc.o.d"
  "CMakeFiles/fmtk_structures.dir/relation.cc.o"
  "CMakeFiles/fmtk_structures.dir/relation.cc.o.d"
  "CMakeFiles/fmtk_structures.dir/signature.cc.o"
  "CMakeFiles/fmtk_structures.dir/signature.cc.o.d"
  "CMakeFiles/fmtk_structures.dir/structure.cc.o"
  "CMakeFiles/fmtk_structures.dir/structure.cc.o.d"
  "libfmtk_structures.a"
  "libfmtk_structures.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fmtk_structures.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
