# Empty compiler generated dependencies file for fmtk_structures.
# This may be replaced when dependencies are built.
