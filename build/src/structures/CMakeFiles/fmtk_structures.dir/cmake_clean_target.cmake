file(REMOVE_RECURSE
  "libfmtk_structures.a"
)
