
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/structures/generators.cc" "src/structures/CMakeFiles/fmtk_structures.dir/generators.cc.o" "gcc" "src/structures/CMakeFiles/fmtk_structures.dir/generators.cc.o.d"
  "/root/repo/src/structures/graph.cc" "src/structures/CMakeFiles/fmtk_structures.dir/graph.cc.o" "gcc" "src/structures/CMakeFiles/fmtk_structures.dir/graph.cc.o.d"
  "/root/repo/src/structures/io.cc" "src/structures/CMakeFiles/fmtk_structures.dir/io.cc.o" "gcc" "src/structures/CMakeFiles/fmtk_structures.dir/io.cc.o.d"
  "/root/repo/src/structures/isomorphism.cc" "src/structures/CMakeFiles/fmtk_structures.dir/isomorphism.cc.o" "gcc" "src/structures/CMakeFiles/fmtk_structures.dir/isomorphism.cc.o.d"
  "/root/repo/src/structures/relation.cc" "src/structures/CMakeFiles/fmtk_structures.dir/relation.cc.o" "gcc" "src/structures/CMakeFiles/fmtk_structures.dir/relation.cc.o.d"
  "/root/repo/src/structures/signature.cc" "src/structures/CMakeFiles/fmtk_structures.dir/signature.cc.o" "gcc" "src/structures/CMakeFiles/fmtk_structures.dir/signature.cc.o.d"
  "/root/repo/src/structures/structure.cc" "src/structures/CMakeFiles/fmtk_structures.dir/structure.cc.o" "gcc" "src/structures/CMakeFiles/fmtk_structures.dir/structure.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/base/CMakeFiles/fmtk_base.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
