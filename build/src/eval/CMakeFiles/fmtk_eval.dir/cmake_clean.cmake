file(REMOVE_RECURSE
  "CMakeFiles/fmtk_eval.dir/model_check.cc.o"
  "CMakeFiles/fmtk_eval.dir/model_check.cc.o.d"
  "CMakeFiles/fmtk_eval.dir/query_eval.cc.o"
  "CMakeFiles/fmtk_eval.dir/query_eval.cc.o.d"
  "libfmtk_eval.a"
  "libfmtk_eval.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fmtk_eval.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
