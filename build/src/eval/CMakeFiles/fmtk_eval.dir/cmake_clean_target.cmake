file(REMOVE_RECURSE
  "libfmtk_eval.a"
)
