# Empty compiler generated dependencies file for fmtk_eval.
# This may be replaced when dependencies are built.
