# Empty dependencies file for fmtk_circuits.
# This may be replaced when dependencies are built.
