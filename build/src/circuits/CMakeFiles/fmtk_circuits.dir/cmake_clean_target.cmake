file(REMOVE_RECURSE
  "libfmtk_circuits.a"
)
