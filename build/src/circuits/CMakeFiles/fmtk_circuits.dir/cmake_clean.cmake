file(REMOVE_RECURSE
  "CMakeFiles/fmtk_circuits.dir/circuit.cc.o"
  "CMakeFiles/fmtk_circuits.dir/circuit.cc.o.d"
  "CMakeFiles/fmtk_circuits.dir/compile.cc.o"
  "CMakeFiles/fmtk_circuits.dir/compile.cc.o.d"
  "libfmtk_circuits.a"
  "libfmtk_circuits.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fmtk_circuits.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
