# CMake generated Testfile for 
# Source directory: /root/repo/src
# Build directory: /root/repo/build/src
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
subdirs("base")
subdirs("structures")
subdirs("logic")
subdirs("eval")
subdirs("circuits")
subdirs("qbf")
subdirs("datalog")
subdirs("queries")
subdirs("core")
subdirs("words")
