file(REMOVE_RECURSE
  "libfmtk_words.a"
)
