# Empty dependencies file for fmtk_words.
# This may be replaced when dependencies are built.
