file(REMOVE_RECURSE
  "CMakeFiles/fmtk_words.dir/dfa.cc.o"
  "CMakeFiles/fmtk_words.dir/dfa.cc.o.d"
  "CMakeFiles/fmtk_words.dir/fo_language.cc.o"
  "CMakeFiles/fmtk_words.dir/fo_language.cc.o.d"
  "CMakeFiles/fmtk_words.dir/word_structure.cc.o"
  "CMakeFiles/fmtk_words.dir/word_structure.cc.o.d"
  "libfmtk_words.a"
  "libfmtk_words.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fmtk_words.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
