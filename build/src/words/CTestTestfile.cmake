# CMake generated Testfile for 
# Source directory: /root/repo/src/words
# Build directory: /root/repo/build/src/words
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
