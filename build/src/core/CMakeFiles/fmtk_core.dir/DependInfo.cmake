
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/core/algorithmic/basic_local.cc" "src/core/CMakeFiles/fmtk_core.dir/algorithmic/basic_local.cc.o" "gcc" "src/core/CMakeFiles/fmtk_core.dir/algorithmic/basic_local.cc.o.d"
  "/root/repo/src/core/algorithmic/bounded_degree.cc" "src/core/CMakeFiles/fmtk_core.dir/algorithmic/bounded_degree.cc.o" "gcc" "src/core/CMakeFiles/fmtk_core.dir/algorithmic/bounded_degree.cc.o.d"
  "/root/repo/src/core/algorithmic/local_formula.cc" "src/core/CMakeFiles/fmtk_core.dir/algorithmic/local_formula.cc.o" "gcc" "src/core/CMakeFiles/fmtk_core.dir/algorithmic/local_formula.cc.o.d"
  "/root/repo/src/core/games/ef_game.cc" "src/core/CMakeFiles/fmtk_core.dir/games/ef_game.cc.o" "gcc" "src/core/CMakeFiles/fmtk_core.dir/games/ef_game.cc.o.d"
  "/root/repo/src/core/games/hintikka.cc" "src/core/CMakeFiles/fmtk_core.dir/games/hintikka.cc.o" "gcc" "src/core/CMakeFiles/fmtk_core.dir/games/hintikka.cc.o.d"
  "/root/repo/src/core/games/linear_order.cc" "src/core/CMakeFiles/fmtk_core.dir/games/linear_order.cc.o" "gcc" "src/core/CMakeFiles/fmtk_core.dir/games/linear_order.cc.o.d"
  "/root/repo/src/core/games/pebble_game.cc" "src/core/CMakeFiles/fmtk_core.dir/games/pebble_game.cc.o" "gcc" "src/core/CMakeFiles/fmtk_core.dir/games/pebble_game.cc.o.d"
  "/root/repo/src/core/games/strategy.cc" "src/core/CMakeFiles/fmtk_core.dir/games/strategy.cc.o" "gcc" "src/core/CMakeFiles/fmtk_core.dir/games/strategy.cc.o.d"
  "/root/repo/src/core/interp/interpretation.cc" "src/core/CMakeFiles/fmtk_core.dir/interp/interpretation.cc.o" "gcc" "src/core/CMakeFiles/fmtk_core.dir/interp/interpretation.cc.o.d"
  "/root/repo/src/core/interp/reductions.cc" "src/core/CMakeFiles/fmtk_core.dir/interp/reductions.cc.o" "gcc" "src/core/CMakeFiles/fmtk_core.dir/interp/reductions.cc.o.d"
  "/root/repo/src/core/locality/bndp.cc" "src/core/CMakeFiles/fmtk_core.dir/locality/bndp.cc.o" "gcc" "src/core/CMakeFiles/fmtk_core.dir/locality/bndp.cc.o.d"
  "/root/repo/src/core/locality/gaifman_local.cc" "src/core/CMakeFiles/fmtk_core.dir/locality/gaifman_local.cc.o" "gcc" "src/core/CMakeFiles/fmtk_core.dir/locality/gaifman_local.cc.o.d"
  "/root/repo/src/core/locality/hanf.cc" "src/core/CMakeFiles/fmtk_core.dir/locality/hanf.cc.o" "gcc" "src/core/CMakeFiles/fmtk_core.dir/locality/hanf.cc.o.d"
  "/root/repo/src/core/locality/neighborhood.cc" "src/core/CMakeFiles/fmtk_core.dir/locality/neighborhood.cc.o" "gcc" "src/core/CMakeFiles/fmtk_core.dir/locality/neighborhood.cc.o.d"
  "/root/repo/src/core/order/order_invariance.cc" "src/core/CMakeFiles/fmtk_core.dir/order/order_invariance.cc.o" "gcc" "src/core/CMakeFiles/fmtk_core.dir/order/order_invariance.cc.o.d"
  "/root/repo/src/core/types/atom_enumeration.cc" "src/core/CMakeFiles/fmtk_core.dir/types/atom_enumeration.cc.o" "gcc" "src/core/CMakeFiles/fmtk_core.dir/types/atom_enumeration.cc.o.d"
  "/root/repo/src/core/types/rank_type.cc" "src/core/CMakeFiles/fmtk_core.dir/types/rank_type.cc.o" "gcc" "src/core/CMakeFiles/fmtk_core.dir/types/rank_type.cc.o.d"
  "/root/repo/src/core/zeroone/almost_sure.cc" "src/core/CMakeFiles/fmtk_core.dir/zeroone/almost_sure.cc.o" "gcc" "src/core/CMakeFiles/fmtk_core.dir/zeroone/almost_sure.cc.o.d"
  "/root/repo/src/core/zeroone/mu.cc" "src/core/CMakeFiles/fmtk_core.dir/zeroone/mu.cc.o" "gcc" "src/core/CMakeFiles/fmtk_core.dir/zeroone/mu.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/base/CMakeFiles/fmtk_base.dir/DependInfo.cmake"
  "/root/repo/build/src/structures/CMakeFiles/fmtk_structures.dir/DependInfo.cmake"
  "/root/repo/build/src/logic/CMakeFiles/fmtk_logic.dir/DependInfo.cmake"
  "/root/repo/build/src/eval/CMakeFiles/fmtk_eval.dir/DependInfo.cmake"
  "/root/repo/build/src/queries/CMakeFiles/fmtk_queries.dir/DependInfo.cmake"
  "/root/repo/build/src/datalog/CMakeFiles/fmtk_datalog.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
