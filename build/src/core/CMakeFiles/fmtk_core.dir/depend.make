# Empty dependencies file for fmtk_core.
# This may be replaced when dependencies are built.
