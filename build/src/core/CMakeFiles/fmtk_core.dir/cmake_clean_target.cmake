file(REMOVE_RECURSE
  "libfmtk_core.a"
)
