file(REMOVE_RECURSE
  "libfmtk_queries.a"
)
