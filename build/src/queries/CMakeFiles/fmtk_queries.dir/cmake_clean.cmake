file(REMOVE_RECURSE
  "CMakeFiles/fmtk_queries.dir/boolean_query.cc.o"
  "CMakeFiles/fmtk_queries.dir/boolean_query.cc.o.d"
  "CMakeFiles/fmtk_queries.dir/relation_query.cc.o"
  "CMakeFiles/fmtk_queries.dir/relation_query.cc.o.d"
  "libfmtk_queries.a"
  "libfmtk_queries.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fmtk_queries.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
