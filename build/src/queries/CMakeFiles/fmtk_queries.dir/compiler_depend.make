# Empty compiler generated dependencies file for fmtk_queries.
# This may be replaced when dependencies are built.
