file(REMOVE_RECURSE
  "libfmtk_qbf.a"
)
