# Empty dependencies file for fmtk_qbf.
# This may be replaced when dependencies are built.
