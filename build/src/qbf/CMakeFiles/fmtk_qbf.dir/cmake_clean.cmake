file(REMOVE_RECURSE
  "CMakeFiles/fmtk_qbf.dir/qbf.cc.o"
  "CMakeFiles/fmtk_qbf.dir/qbf.cc.o.d"
  "libfmtk_qbf.a"
  "libfmtk_qbf.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fmtk_qbf.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
