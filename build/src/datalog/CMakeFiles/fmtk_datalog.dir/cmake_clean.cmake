file(REMOVE_RECURSE
  "CMakeFiles/fmtk_datalog.dir/evaluator.cc.o"
  "CMakeFiles/fmtk_datalog.dir/evaluator.cc.o.d"
  "CMakeFiles/fmtk_datalog.dir/program.cc.o"
  "CMakeFiles/fmtk_datalog.dir/program.cc.o.d"
  "libfmtk_datalog.a"
  "libfmtk_datalog.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fmtk_datalog.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
