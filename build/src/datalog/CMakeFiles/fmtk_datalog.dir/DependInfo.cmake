
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/datalog/evaluator.cc" "src/datalog/CMakeFiles/fmtk_datalog.dir/evaluator.cc.o" "gcc" "src/datalog/CMakeFiles/fmtk_datalog.dir/evaluator.cc.o.d"
  "/root/repo/src/datalog/program.cc" "src/datalog/CMakeFiles/fmtk_datalog.dir/program.cc.o" "gcc" "src/datalog/CMakeFiles/fmtk_datalog.dir/program.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/base/CMakeFiles/fmtk_base.dir/DependInfo.cmake"
  "/root/repo/build/src/structures/CMakeFiles/fmtk_structures.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
