# Empty dependencies file for fmtk_datalog.
# This may be replaced when dependencies are built.
