file(REMOVE_RECURSE
  "libfmtk_datalog.a"
)
