file(REMOVE_RECURSE
  "libfmtk_logic.a"
)
