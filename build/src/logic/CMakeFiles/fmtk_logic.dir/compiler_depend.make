# Empty compiler generated dependencies file for fmtk_logic.
# This may be replaced when dependencies are built.
