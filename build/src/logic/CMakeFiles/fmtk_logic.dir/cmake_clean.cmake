file(REMOVE_RECURSE
  "CMakeFiles/fmtk_logic.dir/analysis.cc.o"
  "CMakeFiles/fmtk_logic.dir/analysis.cc.o.d"
  "CMakeFiles/fmtk_logic.dir/formula.cc.o"
  "CMakeFiles/fmtk_logic.dir/formula.cc.o.d"
  "CMakeFiles/fmtk_logic.dir/parser.cc.o"
  "CMakeFiles/fmtk_logic.dir/parser.cc.o.d"
  "CMakeFiles/fmtk_logic.dir/random_formula.cc.o"
  "CMakeFiles/fmtk_logic.dir/random_formula.cc.o.d"
  "CMakeFiles/fmtk_logic.dir/transform.cc.o"
  "CMakeFiles/fmtk_logic.dir/transform.cc.o.d"
  "libfmtk_logic.a"
  "libfmtk_logic.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fmtk_logic.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
