# Empty dependencies file for inexpressibility_of_even.
# This may be replaced when dependencies are built.
