# CMAKE generated file: DO NOT EDIT!
# Timestamp file for compiler generated dependencies management for inexpressibility_of_even.
