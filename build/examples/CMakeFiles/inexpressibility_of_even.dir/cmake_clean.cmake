file(REMOVE_RECURSE
  "CMakeFiles/inexpressibility_of_even.dir/inexpressibility_of_even.cc.o"
  "CMakeFiles/inexpressibility_of_even.dir/inexpressibility_of_even.cc.o.d"
  "inexpressibility_of_even"
  "inexpressibility_of_even.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/inexpressibility_of_even.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
