# Empty compiler generated dependencies file for zero_one_law.
# This may be replaced when dependencies are built.
