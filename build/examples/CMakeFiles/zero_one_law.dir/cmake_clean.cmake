file(REMOVE_RECURSE
  "CMakeFiles/zero_one_law.dir/zero_one_law.cc.o"
  "CMakeFiles/zero_one_law.dir/zero_one_law.cc.o.d"
  "zero_one_law"
  "zero_one_law.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/zero_one_law.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
