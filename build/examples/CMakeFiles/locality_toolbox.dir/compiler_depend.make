# Empty compiler generated dependencies file for locality_toolbox.
# This may be replaced when dependencies are built.
