file(REMOVE_RECURSE
  "CMakeFiles/locality_toolbox.dir/locality_toolbox.cc.o"
  "CMakeFiles/locality_toolbox.dir/locality_toolbox.cc.o.d"
  "locality_toolbox"
  "locality_toolbox.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/locality_toolbox.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
