# Empty dependencies file for query_engines.
# This may be replaced when dependencies are built.
