file(REMOVE_RECURSE
  "CMakeFiles/query_engines.dir/query_engines.cc.o"
  "CMakeFiles/query_engines.dir/query_engines.cc.o.d"
  "query_engines"
  "query_engines.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/query_engines.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
