# Empty compiler generated dependencies file for fmtk_cli.
# This may be replaced when dependencies are built.
