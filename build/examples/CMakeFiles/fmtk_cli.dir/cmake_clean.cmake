file(REMOVE_RECURSE
  "CMakeFiles/fmtk_cli.dir/fmtk_cli.cc.o"
  "CMakeFiles/fmtk_cli.dir/fmtk_cli.cc.o.d"
  "fmtk_cli"
  "fmtk_cli.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fmtk_cli.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
