# Empty dependencies file for bench_model_checking.
# This may be replaced when dependencies are built.
