file(REMOVE_RECURSE
  "CMakeFiles/bench_model_checking.dir/bench_model_checking.cc.o"
  "CMakeFiles/bench_model_checking.dir/bench_model_checking.cc.o.d"
  "bench_model_checking"
  "bench_model_checking.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_model_checking.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
