file(REMOVE_RECURSE
  "CMakeFiles/bench_ac0_circuits.dir/bench_ac0_circuits.cc.o"
  "CMakeFiles/bench_ac0_circuits.dir/bench_ac0_circuits.cc.o.d"
  "bench_ac0_circuits"
  "bench_ac0_circuits.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ac0_circuits.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
