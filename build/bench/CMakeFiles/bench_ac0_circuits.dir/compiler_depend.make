# Empty compiler generated dependencies file for bench_ac0_circuits.
# This may be replaced when dependencies are built.
