file(REMOVE_RECURSE
  "CMakeFiles/bench_linear_orders.dir/bench_linear_orders.cc.o"
  "CMakeFiles/bench_linear_orders.dir/bench_linear_orders.cc.o.d"
  "bench_linear_orders"
  "bench_linear_orders.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_linear_orders.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
