# Empty dependencies file for bench_linear_orders.
# This may be replaced when dependencies are built.
