# Empty dependencies file for bench_bounded_degree.
# This may be replaced when dependencies are built.
