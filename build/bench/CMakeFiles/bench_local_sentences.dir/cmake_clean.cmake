file(REMOVE_RECURSE
  "CMakeFiles/bench_local_sentences.dir/bench_local_sentences.cc.o"
  "CMakeFiles/bench_local_sentences.dir/bench_local_sentences.cc.o.d"
  "bench_local_sentences"
  "bench_local_sentences.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_local_sentences.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
