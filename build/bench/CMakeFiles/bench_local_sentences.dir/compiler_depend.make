# Empty compiler generated dependencies file for bench_local_sentences.
# This may be replaced when dependencies are built.
