
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/bench/bench_local_sentences.cc" "bench/CMakeFiles/bench_local_sentences.dir/bench_local_sentences.cc.o" "gcc" "bench/CMakeFiles/bench_local_sentences.dir/bench_local_sentences.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/core/CMakeFiles/fmtk_core.dir/DependInfo.cmake"
  "/root/repo/build/src/queries/CMakeFiles/fmtk_queries.dir/DependInfo.cmake"
  "/root/repo/build/src/eval/CMakeFiles/fmtk_eval.dir/DependInfo.cmake"
  "/root/repo/build/src/logic/CMakeFiles/fmtk_logic.dir/DependInfo.cmake"
  "/root/repo/build/src/datalog/CMakeFiles/fmtk_datalog.dir/DependInfo.cmake"
  "/root/repo/build/src/structures/CMakeFiles/fmtk_structures.dir/DependInfo.cmake"
  "/root/repo/build/src/base/CMakeFiles/fmtk_base.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
