file(REMOVE_RECURSE
  "CMakeFiles/bench_order_invariance.dir/bench_order_invariance.cc.o"
  "CMakeFiles/bench_order_invariance.dir/bench_order_invariance.cc.o.d"
  "bench_order_invariance"
  "bench_order_invariance.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_order_invariance.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
