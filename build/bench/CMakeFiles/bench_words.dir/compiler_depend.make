# Empty compiler generated dependencies file for bench_words.
# This may be replaced when dependencies are built.
