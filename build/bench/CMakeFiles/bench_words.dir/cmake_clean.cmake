file(REMOVE_RECURSE
  "CMakeFiles/bench_words.dir/bench_words.cc.o"
  "CMakeFiles/bench_words.dir/bench_words.cc.o.d"
  "bench_words"
  "bench_words.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_words.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
