file(REMOVE_RECURSE
  "CMakeFiles/bench_hanf_locality.dir/bench_hanf_locality.cc.o"
  "CMakeFiles/bench_hanf_locality.dir/bench_hanf_locality.cc.o.d"
  "bench_hanf_locality"
  "bench_hanf_locality.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_hanf_locality.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
