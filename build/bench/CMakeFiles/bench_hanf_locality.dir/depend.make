# Empty dependencies file for bench_hanf_locality.
# This may be replaced when dependencies are built.
