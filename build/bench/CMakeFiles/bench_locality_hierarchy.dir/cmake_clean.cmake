file(REMOVE_RECURSE
  "CMakeFiles/bench_locality_hierarchy.dir/bench_locality_hierarchy.cc.o"
  "CMakeFiles/bench_locality_hierarchy.dir/bench_locality_hierarchy.cc.o.d"
  "bench_locality_hierarchy"
  "bench_locality_hierarchy.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_locality_hierarchy.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
