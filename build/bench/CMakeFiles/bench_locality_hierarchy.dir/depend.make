# Empty dependencies file for bench_locality_hierarchy.
# This may be replaced when dependencies are built.
