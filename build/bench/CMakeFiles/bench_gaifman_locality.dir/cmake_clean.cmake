file(REMOVE_RECURSE
  "CMakeFiles/bench_gaifman_locality.dir/bench_gaifman_locality.cc.o"
  "CMakeFiles/bench_gaifman_locality.dir/bench_gaifman_locality.cc.o.d"
  "bench_gaifman_locality"
  "bench_gaifman_locality.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_gaifman_locality.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
