# Empty dependencies file for bench_gaifman_locality.
# This may be replaced when dependencies are built.
