# Empty dependencies file for bench_bndp.
# This may be replaced when dependencies are built.
