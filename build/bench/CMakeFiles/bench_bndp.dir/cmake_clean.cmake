file(REMOVE_RECURSE
  "CMakeFiles/bench_bndp.dir/bench_bndp.cc.o"
  "CMakeFiles/bench_bndp.dir/bench_bndp.cc.o.d"
  "bench_bndp"
  "bench_bndp.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_bndp.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
