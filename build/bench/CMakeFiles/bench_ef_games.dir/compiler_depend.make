# Empty compiler generated dependencies file for bench_ef_games.
# This may be replaced when dependencies are built.
