file(REMOVE_RECURSE
  "CMakeFiles/bench_ef_games.dir/bench_ef_games.cc.o"
  "CMakeFiles/bench_ef_games.dir/bench_ef_games.cc.o.d"
  "bench_ef_games"
  "bench_ef_games.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ef_games.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
