// Tests for the query server stack (PR 9): the JSON request parser, the
// HTTP request parser's malformed-input table, the QueryServer request
// router driven in-process (no sockets), real-socket round trips through
// the poll loop + worker pool, and the multithreaded hammer that the TSan
// CI leg runs against registry swaps and the shared plan cache.

#include <netinet/in.h>
#include <sys/socket.h>
#include <unistd.h>

#include <arpa/inet.h>

#include <atomic>
#include <string>
#include <thread>
#include <vector>

#include "gtest/gtest.h"
#include "planner/plan_cache.h"
#include "server/http.h"
#include "server/json_value.h"
#include "server/query_server.h"
#include "structures/generators.h"
#include "structures/io.h"

namespace fmtk {
namespace {

// --- JsonValue --------------------------------------------------------------

TEST(JsonValueTest, ParsesScalars) {
  EXPECT_TRUE(JsonValue::Parse("null")->is_null());
  EXPECT_TRUE(JsonValue::Parse("true")->bool_value());
  EXPECT_FALSE(JsonValue::Parse("false")->bool_value());
  EXPECT_DOUBLE_EQ(JsonValue::Parse("-12.5e2")->number_value(), -1250.0);
  EXPECT_EQ(JsonValue::Parse("\"hi\"")->string_value(), "hi");
}

TEST(JsonValueTest, ParsesNestedDocument) {
  auto v = JsonValue::Parse(
      R"js({"structure":"g","outputs":["x","y"],"explain":true,"max_rows":10})js");
  ASSERT_TRUE(v.ok());
  EXPECT_EQ(v->FindString("structure"), "g");
  EXPECT_EQ(v->Find("outputs")->array_items().size(), 2u);
  EXPECT_EQ(v->FindBool("explain"), true);
  EXPECT_EQ(v->FindNumber("max_rows"), 10.0);
  EXPECT_EQ(v->Find("missing"), nullptr);
  EXPECT_FALSE(v->FindString("explain").has_value());  // Wrong type.
}

TEST(JsonValueTest, DecodesEscapesAndSurrogatePairs) {
  auto v = JsonValue::Parse(R"js("a\"b\\c\n\t\u00e9\ud83d\ude00")js");
  ASSERT_TRUE(v.ok());
  EXPECT_EQ(v->string_value(),
            "a\"b\\c\n\t\xc3\xa9\xf0\x9f\x98\x80");  // é and 😀 in UTF-8.
}

TEST(JsonValueTest, RejectsMalformedDocuments) {
  const char* bad[] = {
      "",           "{",           "[1,]",        "{\"a\":}",
      "tru",        "01",          "1.",          "1e",
      "\"\x01\"",   "\"unterminated", "{\"a\" 1}", "[1] tail",
      "\"\\u12\"",  "\"\\ud800\"", "\"\\ud800\\u0020\"", "nan",
  };
  for (const char* text : bad) {
    EXPECT_FALSE(JsonValue::Parse(text).ok()) << text;
  }
}

TEST(JsonValueTest, RejectsExcessiveNesting) {
  std::string deep(300, '[');
  deep += std::string(300, ']');
  EXPECT_FALSE(JsonValue::Parse(deep).ok());
}

// --- HttpRequestParser ------------------------------------------------------

TEST(HttpParserTest, ParsesSimpleGet) {
  HttpRequestParser parser;
  const std::string raw = "GET /stats?x=1&y=2 HTTP/1.1\r\nHost: a\r\n\r\n";
  ASSERT_EQ(parser.Parse(raw), HttpRequestParser::State::kComplete);
  EXPECT_EQ(parser.request().method, "GET");
  EXPECT_EQ(parser.request().path, "/stats");
  EXPECT_EQ(parser.request().QueryParam("y"), "2");
  EXPECT_EQ(parser.request().Header("host"), "a");  // Name lowercased.
  EXPECT_EQ(parser.consumed(), raw.size());
}

TEST(HttpParserTest, ParsesBodyAndPipelinedRemainder) {
  HttpRequestParser parser;
  const std::string raw =
      "POST /query HTTP/1.1\r\nContent-Length: 4\r\n\r\nbodyGET /next...";
  ASSERT_EQ(parser.Parse(raw), HttpRequestParser::State::kComplete);
  EXPECT_EQ(parser.request().body, "body");
  EXPECT_EQ(raw.substr(parser.consumed()), "GET /next...");
}

TEST(HttpParserTest, ToleratesBareLfLineEndings) {
  HttpRequestParser parser;
  ASSERT_EQ(parser.Parse("GET / HTTP/1.1\nHost: b\n\n"),
            HttpRequestParser::State::kComplete);
  EXPECT_EQ(parser.request().Header("host"), "b");
}

TEST(HttpParserTest, IncrementalFeedingNeedsMoreThenCompletes) {
  HttpRequestParser parser;
  std::string buffer = "POST /q HTTP/1.1\r\nContent-Length: 10\r\n";
  EXPECT_EQ(parser.Parse(buffer), HttpRequestParser::State::kNeedMore);
  buffer += "\r\n12345";
  EXPECT_EQ(parser.Parse(buffer), HttpRequestParser::State::kNeedMore);
  buffer += "67890";
  ASSERT_EQ(parser.Parse(buffer), HttpRequestParser::State::kComplete);
  EXPECT_EQ(parser.request().body, "1234567890");
}

// The fuzz-ish malformed-input table: every entry must be rejected with
// the given status, never crash, never be accepted.
TEST(HttpParserTest, MalformedRequestTable) {
  struct Case {
    const char* raw;
    int status;
  };
  const Case cases[] = {
      {"\r\n\r\n", 400},                                  // Empty line.
      {"GET\r\n\r\n", 400},                               // No target.
      {"GET /\r\n\r\n", 400},                             // No version.
      {"GET / HTTP/2.0\r\n\r\n", 505},                    // Bad version.
      {"GET / HTTP/1.1 extra\r\n\r\n", 400},              // Extra token.
      {"G@T / HTTP/1.1\r\n\r\n", 400},                    // Bad method char.
      {"GET relative HTTP/1.1\r\n\r\n", 400},             // Non-origin form.
      {"GET /a\x01json HTTP/1.1\r\n\r\n", 400},           // Ctrl in target.
      {"GET / HTTP/1.1\r\nNoColonHere\r\n\r\n", 400},     // No colon.
      {"GET / HTTP/1.1\r\n: empty\r\n\r\n", 400},         // Empty name.
      {"GET / HTTP/1.1\r\nBad Name: x\r\n\r\n", 400},     // Space in name.
      {"GET / HTTP/1.1\r\nA: b\r\n c\r\n\r\n", 400},      // Obs-fold.
      {"GET / HTTP/1.1\r\nA: b\x01\r\n\r\n", 400},        // Ctrl in value.
      {"POST / HTTP/1.1\r\nContent-Length: x\r\n\r\n", 400},
      {"POST / HTTP/1.1\r\nContent-Length: -1\r\n\r\n", 400},
      {"POST / HTTP/1.1\r\nContent-Length: 1\r\nContent-Length: 2\r\n\r\n",
       400},
      {"POST / HTTP/1.1\r\nTransfer-Encoding: chunked\r\n\r\n", 501},
      {"POST / HTTP/1.1\r\nContent-Length: 999999999\r\n\r\n", 413},
  };
  HttpRequestParser::Limits limits;
  limits.max_body_bytes = 1024;
  for (const Case& c : cases) {
    HttpRequestParser parser(limits);
    EXPECT_EQ(parser.Parse(c.raw), HttpRequestParser::State::kError) << c.raw;
    EXPECT_EQ(parser.error_status(), c.status) << c.raw;
  }
}

TEST(HttpParserTest, OversizedHeaderBlockIs431) {
  HttpRequestParser::Limits limits;
  limits.max_header_bytes = 128;
  HttpRequestParser parser(limits);
  std::string raw = "GET / HTTP/1.1\r\nX: ";
  raw += std::string(500, 'a');  // Never even terminates the head.
  EXPECT_EQ(parser.Parse(raw), HttpRequestParser::State::kError);
  EXPECT_EQ(parser.error_status(), 431);
}

// --- QueryServer::Handle (in-process, no sockets) ---------------------------

HttpRequest MakeRequest(std::string method, std::string target,
                        std::string body = {}) {
  HttpRequest r;
  r.method = std::move(method);
  const std::size_t qmark = target.find('?');
  r.path = target.substr(0, qmark);
  if (qmark != std::string::npos) r.query = target.substr(qmark + 1);
  r.target = std::move(target);
  r.body = std::move(body);
  return r;
}

Structure RingStructure(std::size_t n) { return MakeDirectedCycle(n); }

class QueryServerTest : public ::testing::Test {
 protected:
  QueryServerTest() {
    QueryServerOptions options;
    options.planner.cache = &cache_;
    server_ = std::make_unique<QueryServer>(options);
    server_->PutStructure("ring", RingStructure(8), "test");
  }

  PlanCache cache_;
  std::unique_ptr<QueryServer> server_;
};

TEST_F(QueryServerTest, HealthzAndUnknownRoutes) {
  EXPECT_EQ(server_->Handle(MakeRequest("GET", "/healthz")).status, 200);
  EXPECT_EQ(server_->Handle(MakeRequest("GET", "/nope")).status, 404);
  EXPECT_EQ(server_->Handle(MakeRequest("GET", "/query")).status, 405);
  EXPECT_EQ(server_->Handle(MakeRequest("PATCH", "/structure/x")).status, 405);
}

TEST_F(QueryServerTest, SentenceQueryEvaluatesAndReportsEngine) {
  const HttpResponse r = server_->Handle(MakeRequest(
      "POST", "/query",
      R"js({"structure":"ring","query":"forall x. exists y. E(x,y)"})js"));
  ASSERT_EQ(r.status, 200) << r.body;
  EXPECT_NE(r.body.find("\"result\":true"), std::string::npos) << r.body;
  EXPECT_NE(r.body.find("\"engine\":"), std::string::npos);
  EXPECT_NE(r.body.find("\"admission\""), std::string::npos);
}

TEST_F(QueryServerTest, OutputQueryReturnsRows) {
  const HttpResponse r = server_->Handle(MakeRequest(
      "POST", "/query",
      R"js({"structure":"ring","query":"E(x,y)","outputs":["x","y"]})js"));
  ASSERT_EQ(r.status, 200) << r.body;
  EXPECT_NE(r.body.find("\"row_count\":8"), std::string::npos) << r.body;
  EXPECT_NE(r.body.find("\"columns\":[\"x\",\"y\"]"), std::string::npos);
}

TEST_F(QueryServerTest, MaxRowsTruncatesResponse) {
  const HttpResponse r = server_->Handle(MakeRequest(
      "POST", "/query",
      R"js({"structure":"ring","query":"E(x,y)","outputs":["x","y"],)js"
      R"js("max_rows":3})js"));
  ASSERT_EQ(r.status, 200) << r.body;
  EXPECT_NE(r.body.find("\"row_count\":8"), std::string::npos);
  EXPECT_NE(r.body.find("\"truncated\":true"), std::string::npos);
}

TEST_F(QueryServerTest, RepeatQueryHitsPlanCache) {
  const std::string body =
      R"js({"structure":"ring","query":"exists x. E(x,x)","explain":true})js";
  server_->Handle(MakeRequest("POST", "/query", body));
  const HttpResponse warm = server_->Handle(MakeRequest("POST", "/query", body));
  ASSERT_EQ(warm.status, 200);
  EXPECT_NE(warm.body.find("\"cache_hit\":true"), std::string::npos)
      << warm.body;
  EXPECT_NE(warm.body.find("\"text_cache_hit\":true"), std::string::npos);
}

TEST_F(QueryServerTest, UnknownStructureIs404AndBadBodyIs400) {
  EXPECT_EQ(server_
                ->Handle(MakeRequest(
                    "POST", "/query",
                    R"js({"structure":"missing","query":"exists x. E(x,x)"})js"))
                .status,
            404);
  EXPECT_EQ(server_->Handle(MakeRequest("POST", "/query", "{oops")).status,
            400);
  EXPECT_EQ(server_->Handle(MakeRequest("POST", "/query", "[1,2]")).status,
            400);
  EXPECT_EQ(server_
                ->Handle(MakeRequest("POST", "/query",
                                     R"js({"structure":"ring"})js"))
                .status,
            400);
  EXPECT_EQ(
      server_
          ->Handle(MakeRequest(
              "POST", "/query",
              R"js({"structure":"ring","query":"E(x,x)","engine":"warp"})js"))
          .status,
      400);
}

TEST_F(QueryServerTest, AnalyzerErrorCarriesDiagnosticsJson) {
  const HttpResponse r = server_->Handle(MakeRequest(
      "POST", "/query",
      R"js({"structure":"ring","query":"exists x. Q(x)"})js"));
  EXPECT_GE(r.status, 400);
  EXPECT_NE(r.body.find("\"diagnostics\""), std::string::npos) << r.body;
  EXPECT_NE(r.body.find("FMTK001"), std::string::npos) << r.body;
}

TEST_F(QueryServerTest, AdmissionRejectsOverRankBudget) {
  QueryServerOptions options;
  options.planner.cache = &cache_;
  options.admission.max_quantifier_rank = 2;
  QueryServer strict(options);
  strict.PutStructure("ring", RingStructure(8), "test");
  const HttpResponse r = strict.Handle(MakeRequest(
      "POST", "/query",
      R"js({"structure":"ring","query":)js"
      R"js("exists x. exists y. exists z. exists w. E(x,y) & E(z,w)"})js"));
  ASSERT_EQ(r.status, 429) << r.body;
  EXPECT_NE(r.body.find("\"rejected\":true"), std::string::npos);
  EXPECT_NE(r.body.find("quantifier rank"), std::string::npos);
  EXPECT_EQ(strict.stats().admission_rejected, 1u);
}

TEST_F(QueryServerTest, AdmissionRejectsOverCostBudget) {
  QueryServerOptions options;
  options.planner.cache = &cache_;
  options.admission.max_cost_units = 0.5;  // Everything is over budget.
  QueryServer strict(options);
  strict.PutStructure("ring", RingStructure(8), "test");
  const HttpResponse r = strict.Handle(MakeRequest(
      "POST", "/query",
      R"js({"structure":"ring","query":"forall x. exists y. E(x,y)"})js"));
  ASSERT_EQ(r.status, 429) << r.body;
  EXPECT_NE(r.body.find("estimated cost"), std::string::npos) << r.body;
}

TEST_F(QueryServerTest, ForcedEngineCannotDodgeCostBudget) {
  // The planner prices a forced engine with a 0-cost sentinel row; the
  // server must re-price it off the unforced scoring or "engine" in the
  // request body would bypass every cost budget.
  QueryServerOptions options;
  options.planner.cache = &cache_;
  options.admission.max_cost_units = 0.5;
  QueryServer strict(options);
  strict.PutStructure("ring", RingStructure(8), "test");
  const HttpResponse r = strict.Handle(MakeRequest(
      "POST", "/query",
      R"js({"structure":"ring","query":"forall x. exists y. E(x,y)",)js"
      R"js("engine":"compiled"})js"));
  ASSERT_EQ(r.status, 429) << r.body;
  EXPECT_NE(r.body.find("estimated cost"), std::string::npos) << r.body;
}

TEST_F(QueryServerTest, HeavyLaneSerializesExpensiveQueries) {
  QueryServerOptions options;
  options.planner.cache = &cache_;
  options.admission.heavy_cost_units = 0.001;  // Everything is heavy.
  options.admission.heavy_concurrency = 1;
  options.admission.heavy_max_waiting = 8;
  QueryServer lane(options);
  lane.PutStructure("ring", RingStructure(8), "test");
  const HttpResponse r = lane.Handle(MakeRequest(
      "POST", "/query",
      R"js({"structure":"ring","query":"exists x. E(x,x)"})js"));
  ASSERT_EQ(r.status, 200) << r.body;
  EXPECT_NE(r.body.find("\"lane\":\"heavy\""), std::string::npos) << r.body;
  EXPECT_EQ(lane.stats().heavy_lane_entries, 1u);
}

TEST_F(QueryServerTest, DatalogEvaluatesTransitiveClosure) {
  const HttpResponse r = server_->Handle(MakeRequest(
      "POST", "/datalog",
      R"js({"structure":"ring","program":)js"
      R"js("tc(x,y) :- E(x,y). tc(x,y) :- E(x,z), tc(z,y).")js"
      R"js(,"outputs":["tc"]})js"));
  ASSERT_EQ(r.status, 200) << r.body;
  EXPECT_NE(r.body.find("\"row_count\":64"), std::string::npos) << r.body;
  EXPECT_NE(r.body.find("\"iterations\""), std::string::npos);
}

TEST_F(QueryServerTest, DatalogAdmissionRejectsRecursionShape) {
  QueryServerOptions options;
  options.planner.cache = &cache_;
  options.admission.reject_nonlinear_recursion = true;
  QueryServer strict(options);
  strict.PutStructure("ring", RingStructure(8), "test");
  // Linear recursion passes ...
  EXPECT_EQ(strict
                .Handle(MakeRequest(
                    "POST", "/datalog",
                    R"js({"structure":"ring","program":)js"
                    R"js("tc(x,y) :- E(x,y). tc(x,y) :- E(x,z), tc(z,y)."})js"))
                .status,
            200);
  // ... the nonlinear variant is rejected before any fixpoint work.
  const HttpResponse r = strict.Handle(MakeRequest(
      "POST", "/datalog",
      R"js({"structure":"ring","program":)js"
      R"js("tc(x,y) :- E(x,y). tc(x,y) :- tc(x,z), tc(z,y)."})js"));
  ASSERT_EQ(r.status, 429) << r.body;
  EXPECT_NE(r.body.find("nonlinear"), std::string::npos);
}

TEST_F(QueryServerTest, StructureLifecycleOverHttpSurface) {
  const HttpResponse put = server_->Handle(MakeRequest(
      "PUT", "/structure/tri?format=text",
      "domain 3\nrelation E/2 { (0 1) (1 2) (2 0) }\n"));
  ASSERT_EQ(put.status, 201) << put.body;
  EXPECT_NE(put.body.find("\"generation\":"), std::string::npos);

  EXPECT_EQ(server_->Handle(MakeRequest("GET", "/structure/tri")).status, 200);
  const HttpResponse list = server_->Handle(MakeRequest("GET", "/structures"));
  EXPECT_NE(list.body.find("\"tri\""), std::string::npos);

  EXPECT_EQ(server_->Handle(MakeRequest("DELETE", "/structure/tri")).status,
            200);
  EXPECT_EQ(server_->Handle(MakeRequest("GET", "/structure/tri")).status, 404);
}

TEST_F(QueryServerTest, EdgeListUploadSniffsFormat) {
  const HttpResponse r = server_->Handle(MakeRequest(
      "PUT", "/structure/web", "# comment\n0 1\n1 2\n2 0\n0 1\n"));
  ASSERT_EQ(r.status, 201) << r.body;
  EXPECT_NE(r.body.find("\"format\":\"edges\""), std::string::npos) << r.body;
  // The duplicate edge surfaces as an FMTK204 warning in the diagnostics.
  EXPECT_NE(r.body.find("FMTK204"), std::string::npos) << r.body;
}

TEST_F(QueryServerTest, RegistrySwapBumpsGenerationAndKeepsServing) {
  const auto before = server_->GetStructure("ring");
  const std::uint64_t g1 =
      server_->PutStructure("ring", RingStructure(16), "swap");
  const auto after = server_->GetStructure("ring");
  EXPECT_NE(before.get(), after.get());
  EXPECT_EQ(after->domain_size(), 16u);
  EXPECT_GT(g1, 0u);
  // The old snapshot stays valid for in-flight readers.
  EXPECT_EQ(before->domain_size(), 8u);
}

// --- Concurrency hammer (the TSan CI leg runs this binary) ------------------

// Many client threads issue mixed queries through Handle() while a writer
// thread keeps swapping the structure under the same name: exercises the
// registry shared_mutex, per-structure engine memos keyed by uid, and the
// sharded plan cache, all under real concurrency.
TEST(QueryServerConcurrencyTest, HammerWithRegistrySwaps) {
  QueryServerOptions options;
  PlanCache cache;
  options.planner.cache = &cache;
  options.admission.heavy_cost_units = 5000.0;  // Some requests go heavy.
  QueryServer server(options);
  server.PutStructure("g", RingStructure(12), "seed");

  constexpr int kClientThreads = 4;
  constexpr int kIterations = 120;
  std::atomic<int> failures{0};

  std::thread swapper([&] {
    for (int i = 0; i < 40; ++i) {
      server.PutStructure("g", RingStructure(8 + (i % 5)), "swap");
      std::this_thread::yield();
    }
  });

  std::vector<std::thread> clients;
  for (int t = 0; t < kClientThreads; ++t) {
    clients.emplace_back([&, t] {
      const char* queries[] = {
          R"js({"structure":"g","query":"forall x. exists y. E(x,y)"})js",
          R"js({"structure":"g","query":"exists x. E(x,x)"})js",
          R"js({"structure":"g","query":"E(x,y)","outputs":["x","y"]})js",
          R"js({"structure":"g","program":"tc(x,y) :- E(x,y). )js"
          R"js(tc(x,y) :- E(x,z), tc(z,y)."})js",
      };
      for (int i = 0; i < kIterations; ++i) {
        const int pick = (i + t) % 4;
        const char* endpoint = pick == 3 ? "/datalog" : "/query";
        const HttpResponse r =
            server.Handle(MakeRequest("POST", endpoint, queries[pick]));
        if (r.status != 200) failures.fetch_add(1);
      }
    });
  }
  for (std::thread& c : clients) c.join();
  swapper.join();

  EXPECT_EQ(failures.load(), 0);
  EXPECT_EQ(server.stats().queries + server.stats().datalog_queries,
            static_cast<std::uint64_t>(kClientThreads * kIterations));
}

// --- Real sockets through the poll loop + worker pool -----------------------

// Minimal blocking HTTP client for the tests: one round trip on an open
// socket (reads the response head, then Content-Length body bytes).
class TestClient {
 public:
  explicit TestClient(std::uint16_t port) {
    fd_ = socket(AF_INET, SOCK_STREAM, 0);
    sockaddr_in addr{};
    addr.sin_family = AF_INET;
    addr.sin_port = htons(port);
    inet_pton(AF_INET, "127.0.0.1", &addr.sin_addr);
    connected_ =
        connect(fd_, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) == 0;
  }
  ~TestClient() {
    if (fd_ >= 0) close(fd_);
  }

  bool connected() const { return connected_; }

  /// Sends `raw` and returns the full response (head + body), or "" on
  /// any failure.
  std::string RoundTrip(const std::string& raw) {
    if (send(fd_, raw.data(), raw.size(), 0) !=
        static_cast<ssize_t>(raw.size())) {
      return {};
    }
    std::string response;
    char chunk[4096];
    std::size_t body_needed = std::string::npos;
    std::size_t head_end = std::string::npos;
    while (true) {
      if (head_end != std::string::npos &&
          response.size() >= head_end + body_needed) {
        return response;
      }
      const ssize_t n = recv(fd_, chunk, sizeof(chunk), 0);
      if (n <= 0) return response;
      response.append(chunk, static_cast<std::size_t>(n));
      if (head_end == std::string::npos) {
        const std::size_t pos = response.find("\r\n\r\n");
        if (pos == std::string::npos) continue;
        head_end = pos + 4;
        const std::size_t cl = response.find("Content-Length: ");
        if (cl == std::string::npos || cl > pos) return response;
        body_needed = static_cast<std::size_t>(
            std::atol(response.c_str() + cl + 16));
      }
    }
  }

 private:
  int fd_ = -1;
  bool connected_ = false;
};

class LiveServerTest : public ::testing::Test {
 protected:
  void SetUp() override {
    QueryServerOptions options;
    options.planner.cache = &cache_;
    options.http.port = 0;  // Ephemeral.
    options.http.worker_threads = 3;
    server_ = std::make_unique<QueryServer>(options);
    server_->PutStructure("g", RingStructure(8), "test");
    ASSERT_TRUE(server_->Start().ok());
  }
  void TearDown() override { server_->Stop(); }

  PlanCache cache_;
  std::unique_ptr<QueryServer> server_;
};

TEST_F(LiveServerTest, RoundTripsQueryOverRealSocket) {
  TestClient client(server_->port());
  ASSERT_TRUE(client.connected());
  const std::string body =
      R"js({"structure":"g","query":"forall x. exists y. E(x,y)"})js";
  const std::string response = client.RoundTrip(
      "POST /query HTTP/1.1\r\nContent-Length: " +
      std::to_string(body.size()) + "\r\n\r\n" + body);
  EXPECT_NE(response.find("HTTP/1.1 200 OK"), std::string::npos) << response;
  EXPECT_NE(response.find("\"result\":true"), std::string::npos) << response;
}

TEST_F(LiveServerTest, KeepAliveServesSequentialRequestsOnOneConnection) {
  TestClient client(server_->port());
  ASSERT_TRUE(client.connected());
  for (int i = 0; i < 3; ++i) {
    const std::string response =
        client.RoundTrip("GET /healthz HTTP/1.1\r\n\r\n");
    EXPECT_NE(response.find("{\"ok\":true}"), std::string::npos) << i;
    EXPECT_NE(response.find("Connection: keep-alive"), std::string::npos);
  }
}

TEST_F(LiveServerTest, MalformedRequestGets400AndClose) {
  TestClient client(server_->port());
  ASSERT_TRUE(client.connected());
  const std::string response =
      client.RoundTrip("BROKEN_REQUEST\r\n\r\n");
  EXPECT_NE(response.find("HTTP/1.1 400"), std::string::npos) << response;
  EXPECT_NE(response.find("Connection: close"), std::string::npos);
  EXPECT_GE(server_->http_stats().parse_errors, 1u);
}

TEST_F(LiveServerTest, ConcurrentSocketClientsAllSucceed) {
  constexpr int kThreads = 6;
  constexpr int kRequests = 25;
  std::atomic<int> ok{0};
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&] {
      TestClient client(server_->port());
      if (!client.connected()) return;
      const std::string body =
          R"js({"structure":"g","query":"exists x. E(x,x)"})js";
      const std::string raw = "POST /query HTTP/1.1\r\nContent-Length: " +
                              std::to_string(body.size()) + "\r\n\r\n" + body;
      for (int i = 0; i < kRequests; ++i) {
        const std::string response = client.RoundTrip(raw);
        if (response.find("HTTP/1.1 200 OK") != std::string::npos) {
          ok.fetch_add(1);
        }
      }
    });
  }
  for (std::thread& t : threads) t.join();
  EXPECT_EQ(ok.load(), kThreads * kRequests);
  EXPECT_GE(server_->http_stats().requests_handled,
            static_cast<std::uint64_t>(kThreads * kRequests));
}

TEST_F(LiveServerTest, StatsEndpointReportsPlanCacheCounters) {
  TestClient client(server_->port());
  ASSERT_TRUE(client.connected());
  const std::string body = R"js({"structure":"g","query":"exists x. E(x,x)"})js";
  const std::string raw = "POST /query HTTP/1.1\r\nContent-Length: " +
                          std::to_string(body.size()) + "\r\n\r\n" + body;
  client.RoundTrip(raw);
  client.RoundTrip(raw);
  const std::string stats = client.RoundTrip("GET /stats HTTP/1.1\r\n\r\n");
  EXPECT_NE(stats.find("\"plan_cache\""), std::string::npos) << stats;
  EXPECT_NE(stats.find("\"requests_handled\""), std::string::npos);
}

}  // namespace
}  // namespace fmtk
