#include <gtest/gtest.h>

#include <random>

#include "eval/model_check.h"
#include "logic/analysis.h"
#include "eval/query_eval.h"
#include "logic/parser.h"
#include "logic/transform.h"
#include "structures/generators.h"

namespace fmtk {
namespace {

Formula Parse(const char* text, const Signature* sig = nullptr) {
  Result<Formula> f = ParseFormula(text, sig);
  EXPECT_TRUE(f.ok()) << text << ": " << f.status().ToString();
  return *f;
}

bool Holds(const Structure& s, const char* text) {
  Result<bool> r = Satisfies(s, Parse(text, &s.signature()));
  EXPECT_TRUE(r.ok()) << text << ": " << r.status().ToString();
  return *r;
}

TEST(ModelCheckTest, AtomsAndBooleans) {
  Structure p = MakeDirectedPath(3);
  EXPECT_TRUE(Holds(p, "exists x y. E(x,y)"));
  EXPECT_FALSE(Holds(p, "exists x. E(x,x)"));
  EXPECT_TRUE(Holds(p, "true"));
  EXPECT_FALSE(Holds(p, "false"));
  EXPECT_TRUE(Holds(p, "forall x y. E(x,y) -> !E(y,x)"));
}

TEST(ModelCheckTest, SurveyLambdaN) {
  // λ_n: "there are at least n elements".
  Structure s = MakeSet(3);
  EXPECT_TRUE(Holds(s, "exists x y. x != y"));
  EXPECT_TRUE(Holds(s, "exists x y z. x != y & x != z & y != z"));
  EXPECT_FALSE(Holds(
      s, "exists x y z w. x != y & x != z & x != w & y != z & y != w & z != w"));
}

TEST(ModelCheckTest, ExactlyOneSuccessorInCycle) {
  Structure c = MakeDirectedCycle(5);
  EXPECT_TRUE(Holds(c, "forall x. exists y. E(x,y)"));
  EXPECT_TRUE(
      Holds(c, "forall x y z. E(x,y) & E(x,z) -> y = z"));
}

TEST(ModelCheckTest, LinearOrderAxioms) {
  Structure l = MakeLinearOrder(5);
  EXPECT_TRUE(Holds(l, "forall x. !(x < x)"));
  EXPECT_TRUE(Holds(l, "forall x y z. x < y & y < z -> x < z"));
  EXPECT_TRUE(Holds(l, "forall x y. x < y | y < x | x = y"));
  // There is a least element.
  EXPECT_TRUE(Holds(l, "exists x. forall y. x = y | x < y"));
}

TEST(ModelCheckTest, EmptyDomainSemantics) {
  Structure empty = MakeEmptyGraph(0);
  EXPECT_FALSE(Holds(empty, "exists x. true"));
  EXPECT_TRUE(Holds(empty, "forall x. false"));
}

TEST(ModelCheckTest, ConstantsResolve) {
  auto sig = std::make_shared<Signature>();
  sig->AddRelation("E", 2).AddConstant("root");
  Structure s(sig, 3);
  s.AddTuple(0, {0, 1});
  s.AddTuple(0, {0, 2});
  s.SetConstant(0, 0);
  EXPECT_TRUE(Holds(s, "forall x. x = root | E(root,x)"));
  EXPECT_FALSE(Holds(s, "exists x. E(x,root)"));
}

TEST(ModelCheckTest, UninterpretedConstantIsError) {
  auto sig = std::make_shared<Signature>();
  sig->AddRelation("E", 2).AddConstant("c");
  Structure s(sig, 2);
  Result<bool> r = Satisfies(s, Parse("exists x. E(x,c)", sig.get()));
  EXPECT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), StatusCode::kInvalidArgument);
}

TEST(ModelCheckTest, SignatureMismatchIsError) {
  Structure p = MakeDirectedPath(3);
  Result<bool> r = Satisfies(p, Parse("exists x. F(x,x)"));
  EXPECT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), StatusCode::kSignatureMismatch);
}

TEST(ModelCheckTest, FreeVariablesViaAssignment) {
  Structure p = MakeDirectedPath(4);
  Formula f = Parse("E(x,y)");
  EXPECT_TRUE(*Satisfies(p, f, {{"x", 0}, {"y", 1}}));
  EXPECT_FALSE(*Satisfies(p, f, {{"x", 1}, {"y", 0}}));
  // Unbound free variable is an error.
  Result<bool> r = Satisfies(p, f, {{"x", 0}});
  EXPECT_FALSE(r.ok());
}

TEST(ModelCheckTest, ShadowingRestoresOuterBinding) {
  Structure p = MakeDirectedPath(3);
  // Outer x = 0; inner quantifier rebinds x; afterwards outer x applies.
  Formula f = Parse("(exists x. E(x,x)) | E(x,y)");
  EXPECT_TRUE(*Satisfies(p, f, {{"x", 0}, {"y", 1}}));
}

TEST(ModelCheckTest, StatsCountWork) {
  Structure c = MakeDirectedCycle(10);
  ModelChecker checker(c);
  ASSERT_TRUE(checker.Check(Parse("forall x. exists y. E(x,y)")).ok());
  EXPECT_GE(checker.stats().quantifier_instantiations, 10u);
  EXPECT_GE(checker.stats().atom_lookups, 10u);
  checker.ResetStats();
  EXPECT_EQ(checker.stats().node_visits, 0u);
}

TEST(QueryEvalTest, AnswerRelationOfEdgeQuery) {
  Structure p = MakeDirectedPath(3);
  Result<Relation> ans = EvaluateQuery(p, Parse("E(x,y)"), {"x", "y"});
  ASSERT_TRUE(ans.ok());
  EXPECT_EQ(ans->size(), 2u);
  EXPECT_TRUE(ans->Contains({0, 1}));
  EXPECT_TRUE(ans->Contains({1, 2}));
}

TEST(QueryEvalTest, JoinQuery) {
  // Two-step reachability on a path.
  Structure p = MakeDirectedPath(4);
  Result<Relation> ans =
      EvaluateQuery(p, Parse("exists z. E(x,z) & E(z,y)"), {"x", "y"});
  ASSERT_TRUE(ans.ok());
  EXPECT_EQ(ans->size(), 2u);
  EXPECT_TRUE(ans->Contains({0, 2}));
  EXPECT_TRUE(ans->Contains({1, 3}));
}

TEST(QueryEvalTest, NegationUsesFullDomain) {
  Structure p = MakeDirectedPath(3);
  Result<Relation> ans = EvaluateQuery(p, Parse("!E(x,y)"), {"x", "y"});
  ASSERT_TRUE(ans.ok());
  EXPECT_EQ(ans->size(), 9u - 2u);
}

TEST(QueryEvalTest, BooleanQueryZeroArity) {
  Structure p = MakeDirectedPath(3);
  Result<Relation> yes = EvaluateQuery(p, Parse("exists x y. E(x,y)"), {});
  ASSERT_TRUE(yes.ok());
  EXPECT_EQ(yes->size(), 1u);  // {()} = true.
  Result<Relation> no = EvaluateQuery(p, Parse("exists x. E(x,x)"), {});
  ASSERT_TRUE(no.ok());
  EXPECT_EQ(no->size(), 0u);  // {} = false.
}

TEST(QueryEvalTest, ExtraOutputVariablesRangeOverDomain) {
  Structure p = MakeDirectedPath(3);
  Result<Relation> ans = EvaluateQuery(p, Parse("E(x,y)"), {"x", "y", "z"});
  ASSERT_TRUE(ans.ok());
  EXPECT_EQ(ans->size(), 2u * 3u);
}

TEST(QueryEvalTest, MissingFreeVariableIsError) {
  Structure p = MakeDirectedPath(3);
  Result<Relation> r = EvaluateQuery(p, Parse("E(x,y)"), {"x"});
  EXPECT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), StatusCode::kInvalidArgument);
}

TEST(QueryEvalTest, DuplicateOutputVariableIsError) {
  Structure p = MakeDirectedPath(3);
  Result<Relation> r = EvaluateQuery(p, Parse("E(x,y)"), {"x", "y", "x"});
  EXPECT_FALSE(r.ok());
}

TEST(QueryEvalTest, RepeatedVariableInAtom) {
  Structure c = MakeDirectedCycle(1);  // single loop
  Result<Relation> ans = EvaluateQuery(c, Parse("E(x,x)"), {"x"});
  ASSERT_TRUE(ans.ok());
  EXPECT_EQ(ans->size(), 1u);
}

TEST(QueryEvalTest, ConstantInAtom) {
  auto sig = std::make_shared<Signature>();
  sig->AddRelation("E", 2).AddConstant("c");
  Structure s(sig, 3);
  s.AddTuple(0, {0, 1});
  s.AddTuple(0, {2, 1});
  s.SetConstant(0, 1);
  Result<Relation> ans =
      EvaluateQuery(s, Parse("E(x,c)", sig.get()), {"x"});
  ASSERT_TRUE(ans.ok());
  EXPECT_EQ(ans->size(), 2u);
  EXPECT_TRUE(ans->Contains({0}));
  EXPECT_TRUE(ans->Contains({2}));
}

TEST(QueryEvalTest, ForallInsideQuery) {
  // Elements with edges to all others: complete graph centers.
  Structure k = MakeCompleteGraph(4);
  Result<Relation> ans = EvaluateQuery(
      k, Parse("forall y. y = x | E(x,y)"), {"x"});
  ASSERT_TRUE(ans.ok());
  EXPECT_EQ(ans->size(), 4u);
}

// Property sweep: the bottom-up evaluator agrees with the naive one on
// random graphs for a panel of queries.
class EvaluatorAgreementTest : public ::testing::TestWithParam<const char*> {};

TEST_P(EvaluatorAgreementTest, BottomUpMatchesNaive) {
  std::mt19937_64 rng(42);
  Formula f = Parse(GetParam());
  for (int trial = 0; trial < 8; ++trial) {
    Structure g = MakeRandomGraph(5, 0.35, rng);
    std::vector<std::string> vars;
    for (const std::string& v : FreeVariables(f)) {
      vars.push_back(v);
    }
    Result<Relation> a = EvaluateQuery(g, f, vars);
    Result<Relation> b = EvaluateQueryNaive(g, f, vars);
    ASSERT_TRUE(a.ok()) << a.status().ToString();
    ASSERT_TRUE(b.ok()) << b.status().ToString();
    EXPECT_TRUE(*a == *b) << GetParam() << "\nbottom-up: " << a->ToString()
                          << "\nnaive:     " << b->ToString();
  }
}

INSTANTIATE_TEST_SUITE_P(
    QueryPanel, EvaluatorAgreementTest,
    ::testing::Values(
        "E(x,y)", "!E(x,y)", "E(x,y) & E(y,x)", "E(x,y) | E(y,x)",
        "E(x,y) -> E(y,x)", "E(x,y) <-> E(y,z)",
        "exists z. E(x,z) & E(z,y)", "forall z. E(x,z) -> E(z,y)",
        "exists y. E(x,y) & !(exists z. E(y,z))",
        "x = y | exists z. E(x,z) & E(z,y) & x != z",
        "forall y. exists z. E(y,z) | E(x,x)",
        "exists x. E(x,x)", "forall x y. E(x,y) -> E(y,x)"));

TEST(EvaluatorTransformConsistencyTest, NnfAndPrenexPreserveMeaning) {
  std::mt19937_64 rng(7);
  const char* sentences[] = {
      "forall x. exists y. E(x,y) -> E(y,x)",
      "!(exists x. forall y. E(x,y) <-> E(y,x))",
      "(exists x. E(x,x)) -> (forall y. exists z. E(y,z))",
  };
  for (const char* text : sentences) {
    Formula f = Parse(text);
    Formula nnf = NegationNormalForm(f);
    Formula prenex = PrenexNormalForm(f);
    for (int trial = 0; trial < 6; ++trial) {
      Structure g = MakeRandomGraph(1 + trial, 0.4, rng);
      Result<bool> a = Satisfies(g, f);
      Result<bool> b = Satisfies(g, nnf);
      ASSERT_TRUE(a.ok() && b.ok());
      EXPECT_EQ(*a, *b) << text << " NNF mismatch, n=" << g.domain_size();
      if (g.domain_size() > 0) {  // Prenex caveat: nonempty domains.
        Result<bool> c = Satisfies(g, prenex);
        ASSERT_TRUE(c.ok());
        EXPECT_EQ(*a, *c) << text << " prenex mismatch";
      }
    }
  }
}

}  // namespace
}  // namespace fmtk
