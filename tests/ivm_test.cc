#include "datalog/ivm.h"

#include <gtest/gtest.h>

#include <random>
#include <string>
#include <vector>

#include "datalog/compiled_engine.h"
#include "datalog/program.h"
#include "structures/generators.h"
#include "structures/structure.h"

namespace fmtk {
namespace {

// The differential oracle: from-scratch evaluation of `program` on the
// session's current EDB must equal the incrementally maintained IDB.
void ExpectMatchesScratch(const DatalogProgram& program,
                          const IncrementalDatalogSession& session,
                          const std::string& context) {
  Result<CompiledDatalogEngine> engine =
      CompiledDatalogEngine::Create(program, session.edb());
  ASSERT_TRUE(engine.ok()) << context << ": " << engine.status().ToString();
  Result<std::map<std::string, Relation>> expected = engine->Evaluate();
  ASSERT_TRUE(expected.ok()) << context << ": "
                             << expected.status().ToString();
  const std::map<std::string, const Relation*> got = session.Materialized();
  ASSERT_EQ(got.size(), expected->size()) << context;
  for (const auto& [name, rel] : *expected) {
    auto it = got.find(name);
    ASSERT_NE(it, got.end()) << context << ": missing " << name;
    EXPECT_TRUE(*it->second == rel)
        << context << ": " << name << " diverged (incremental "
        << it->second->size() << " tuples, scratch " << rel.size() << ")";
  }
}

std::vector<Tuple> RandomEdges(std::size_t count, std::size_t n,
                               std::mt19937_64& rng) {
  std::vector<Tuple> out;
  out.reserve(count);
  for (std::size_t i = 0; i < count; ++i) {
    out.push_back({static_cast<Element>(rng() % n),
                   static_cast<Element>(rng() % n)});
  }
  return out;
}

// Drives a fixed-seed mixed insert/delete workload and differential-tests
// the session against from-scratch evaluation after every batch.
void RunMixedWorkload(const DatalogProgram& program, std::size_t n,
                      double density, std::uint64_t seed) {
  std::mt19937_64 rng(seed);
  Structure g = MakeRandomGraph(n, density, rng);
  Result<IncrementalDatalogSession> session =
      IncrementalDatalogSession::Create(program, g);
  ASSERT_TRUE(session.ok()) << session.status().ToString();
  ExpectMatchesScratch(program, *session, "initial");
  for (int batch = 0; batch < 6; ++batch) {
    const std::vector<Tuple> edges = RandomEdges(8, n, rng);
    const std::string tag = "batch " + std::to_string(batch);
    if (batch % 2 == 0) {
      ASSERT_TRUE(session->ApplyInsert("E", edges).ok()) << tag;
      ExpectMatchesScratch(program, *session, tag + " insert");
    } else {
      ASSERT_TRUE(session->ApplyDelete("E", edges).ok()) << tag;
      ExpectMatchesScratch(program, *session, tag + " delete");
    }
  }
}

TEST(IvmTest, TransitiveClosureMixedWorkload) {
  RunMixedWorkload(DatalogProgram::TransitiveClosure(), 25, 0.06, 101);
}

TEST(IvmTest, SameGenerationMixedWorkload) {
  // sg has a fact schema (the diagonal): deletes must never remove it.
  RunMixedWorkload(DatalogProgram::SameGeneration(), 18, 0.06, 202);
}

TEST(IvmTest, NonlinearTransitiveClosureMixedWorkload) {
  // Two recursive body atoms: the delta-at-every-position scheme and DRed
  // both get exercised through multi-IDB-atom rules.
  RunMixedWorkload(DatalogProgram::NonlinearTransitiveClosure(), 20, 0.06,
                   303);
}

TEST(IvmTest, ConstantsInRules) {
  // Reachability from source 0: constants appear in EDB atom positions,
  // which become probe columns of delta and rederive plans.
  Result<DatalogProgram> program = ParseDatalogProgram(
      "r(y) :- E(0, y). r(y) :- r(x), E(x, y).");
  ASSERT_TRUE(program.ok());
  RunMixedWorkload(*program, 15, 0.08, 404);
}

TEST(IvmTest, PureEdbRule) {
  Result<DatalogProgram> program =
      ParseDatalogProgram("p(x, y) :- E(x, y), E(y, x).");
  ASSERT_TRUE(program.ok());
  RunMixedWorkload(*program, 12, 0.2, 505);
}

TEST(IvmTest, FactTuplesSurviveDeletion) {
  const DatalogProgram program = DatalogProgram::SameGeneration();
  Structure g = MakeDirectedPath(4);  // Edges 0->1->2->3.
  Result<IncrementalDatalogSession> session =
      IncrementalDatalogSession::Create(program, g);
  ASSERT_TRUE(session.ok()) << session.status().ToString();
  // Deleting every edge must leave exactly the fact-schema diagonal.
  ASSERT_TRUE(
      session->ApplyDelete("E", {{0, 1}, {1, 2}, {2, 3}}).ok());
  const Relation* sg = session->Materialized().at("sg");
  EXPECT_EQ(sg->size(), 4u);
  for (Element i = 0; i < 4; ++i) {
    EXPECT_TRUE(sg->Contains({i, i}));
  }
  ExpectMatchesScratch(program, *session, "all edges deleted");
}

TEST(IvmTest, InsertRestoresDeleted) {
  const DatalogProgram program = DatalogProgram::TransitiveClosure();
  Structure g = MakeDirectedCycle(6);
  Result<IncrementalDatalogSession> session =
      IncrementalDatalogSession::Create(program, g);
  ASSERT_TRUE(session.ok());
  EXPECT_EQ(session->Materialized().at("tc")->size(), 36u);
  ASSERT_TRUE(session->ApplyDelete("E", {{2, 3}}).ok());
  ExpectMatchesScratch(program, *session, "cycle cut");
  EXPECT_GT(session->last_stats().idb_deleted, 0u);
  ASSERT_TRUE(session->ApplyInsert("E", {{2, 3}}).ok());
  EXPECT_EQ(session->Materialized().at("tc")->size(), 36u);
  ExpectMatchesScratch(program, *session, "cycle restored");
}

TEST(IvmTest, CascadingRederivation) {
  // Diamond 0->{1,2}->3 plus chain 3->4: deleting 0->1 must keep every
  // closure tuple alive through the 0->2->3 path (rederivation), while
  // deleting both 0->1 and 0->2 must cascade the loss to (0,3) and (0,4).
  const DatalogProgram program = DatalogProgram::TransitiveClosure();
  auto make = [] {
    Structure g = MakeEmptyGraph(5);
    g.AddTuple(0, {0, 1});
    g.AddTuple(0, {0, 2});
    g.AddTuple(0, {1, 3});
    g.AddTuple(0, {2, 3});
    g.AddTuple(0, {3, 4});
    return g;
  };
  {
    Result<IncrementalDatalogSession> session =
        IncrementalDatalogSession::Create(program, make());
    ASSERT_TRUE(session.ok());
    ASSERT_TRUE(session->ApplyDelete("E", {{0, 1}}).ok());
    const Relation* tc = session->Materialized().at("tc");
    EXPECT_TRUE(tc->Contains({0, 3}));
    EXPECT_TRUE(tc->Contains({0, 4}));
    EXPECT_FALSE(tc->Contains({0, 1}));
    EXPECT_GT(session->last_stats().rederived, 0u);
    ExpectMatchesScratch(program, *session, "one diamond arm");
  }
  {
    Result<IncrementalDatalogSession> session =
        IncrementalDatalogSession::Create(program, make());
    ASSERT_TRUE(session.ok());
    ASSERT_TRUE(session->ApplyDelete("E", {{0, 1}, {0, 2}}).ok());
    const Relation* tc = session->Materialized().at("tc");
    EXPECT_FALSE(tc->Contains({0, 3}));
    EXPECT_FALSE(tc->Contains({0, 4}));
    EXPECT_TRUE(tc->Contains({1, 4}));
    ExpectMatchesScratch(program, *session, "both diamond arms");
  }
}

TEST(IvmTest, NoOpBatches) {
  const DatalogProgram program = DatalogProgram::TransitiveClosure();
  Structure g = MakeDirectedPath(4);
  Result<IncrementalDatalogSession> session =
      IncrementalDatalogSession::Create(program, g);
  ASSERT_TRUE(session.ok());
  const std::size_t before = session->Materialized().at("tc")->size();
  // Inserting present tuples and deleting absent ones are cheap no-ops.
  ASSERT_TRUE(session->ApplyInsert("E", {{0, 1}}).ok());
  EXPECT_EQ(session->last_stats().edb_changed, 0u);
  ASSERT_TRUE(session->ApplyDelete("E", {{3, 0}}).ok());
  EXPECT_EQ(session->last_stats().edb_changed, 0u);
  EXPECT_EQ(session->Materialized().at("tc")->size(), before);
}

TEST(IvmTest, ErrorPaths) {
  const DatalogProgram program = DatalogProgram::TransitiveClosure();
  Structure g = MakeDirectedPath(3);
  Result<IncrementalDatalogSession> session =
      IncrementalDatalogSession::Create(program, g);
  ASSERT_TRUE(session.ok());
  EXPECT_FALSE(session->ApplyInsert("nope", {{0, 1}}).ok());
  EXPECT_FALSE(session->ApplyInsert("E", {{0}}).ok());         // Arity.
  EXPECT_FALSE(session->ApplyInsert("E", {{0, 99}}).ok());     // Range.
  EXPECT_FALSE(session->ApplyDelete("nope", {{0, 1}}).ok());
  EXPECT_FALSE(session->ApplyDelete("E", {{0, 1, 2}}).ok());   // Arity.
  // The failed calls left the session consistent.
  ExpectMatchesScratch(program, *session, "after rejected batches");
}

TEST(IvmTest, StatsReflectWork) {
  const DatalogProgram program = DatalogProgram::TransitiveClosure();
  Structure g = MakeDirectedPath(5);  // tc = 10 tuples.
  Result<IncrementalDatalogSession> session =
      IncrementalDatalogSession::Create(program, g);
  ASSERT_TRUE(session.ok());
  ASSERT_TRUE(session->ApplyInsert("E", {{4, 0}}).ok());  // Close the cycle.
  const IvmStats& stats = session->last_stats();
  EXPECT_EQ(stats.edb_changed, 1u);
  EXPECT_EQ(stats.idb_inserted, 15u);  // 10 -> 25 (full cycle closure).
  EXPECT_GT(stats.rounds, 1u);
  ExpectMatchesScratch(program, *session, "cycle closed");
}

}  // namespace
}  // namespace fmtk
