#include <gtest/gtest.h>

#include <random>

#include "circuits/circuit.h"
#include "circuits/compile.h"
#include "eval/model_check.h"
#include "logic/parser.h"
#include "structures/generators.h"

namespace fmtk {
namespace {

TEST(CircuitTest, BasicGates) {
  Circuit c;
  Circuit::GateId p = c.AddInput("p");
  Circuit::GateId q = c.AddInput("q");
  // (!p | q) & (p & !q)  — the slide's example shape.
  Circuit::GateId left = c.AddOr({c.AddNot(p), q});
  Circuit::GateId right = c.AddAnd({p, c.AddNot(q)});
  c.SetOutput(c.AddAnd({left, right}));
  EXPECT_EQ(c.input_count(), 2u);
  // Contradictory: false on all inputs.
  for (bool bp : {false, true}) {
    for (bool bq : {false, true}) {
      EXPECT_FALSE(*c.Evaluate({bp, bq}));
    }
  }
}

TEST(CircuitTest, EmptyFanIn) {
  Circuit c;
  c.SetOutput(c.AddAnd({}));
  EXPECT_TRUE(*c.Evaluate({}));
  Circuit d;
  d.SetOutput(d.AddOr({}));
  EXPECT_FALSE(*d.Evaluate({}));
}

TEST(CircuitTest, DepthIgnoresNots) {
  Circuit c;
  Circuit::GateId p = c.AddInput("p");
  Circuit::GateId q = c.AddInput("q");
  c.SetOutput(c.AddAnd({c.AddNot(p), c.AddOr({q, c.AddNot(p)})}));
  EXPECT_EQ(c.Depth(), 2u);  // OR then AND; NOTs are wires.
}

TEST(CircuitTest, InputCountMismatch) {
  Circuit c;
  c.AddInput("p");
  c.SetOutput(c.AddConst(true));
  EXPECT_FALSE(c.Evaluate({}).ok());
  EXPECT_FALSE(c.Evaluate({true, false}).ok());
}

TEST(CircuitTest, InputLabels) {
  Circuit c;
  c.AddInput("E#0");
  c.AddInput("E#1");
  EXPECT_EQ(c.input_label(0), "E#0");
  EXPECT_EQ(c.input_label(1), "E#1");
}

TEST(CompileTest, InputBitCount) {
  EXPECT_EQ(InputBitCount(*Signature::Graph(), 3), 9u);
  Signature sig;
  sig.AddRelation("R", 3).AddRelation("P", 1);
  EXPECT_EQ(InputBitCount(sig, 2), 8u + 2u);
  EXPECT_EQ(InputBitCount(*Signature::Empty(), 5), 0u);
}

TEST(CompileTest, EncodeRoundTrip) {
  Structure p = MakeDirectedPath(3);
  Result<std::vector<bool>> bits = EncodeStructure(p);
  ASSERT_TRUE(bits.ok());
  ASSERT_EQ(bits->size(), 9u);
  // Edge (0,1) = index 0*3+1 = 1; edge (1,2) = index 1*3+2 = 5.
  EXPECT_TRUE((*bits)[1]);
  EXPECT_TRUE((*bits)[5]);
  EXPECT_EQ(std::count(bits->begin(), bits->end(), true), 2);
}

TEST(CompileTest, SentencesOnly) {
  Result<Circuit> c =
      CompileSentence(*ParseFormula("E(x,y)"), *Signature::Graph(), 3);
  EXPECT_FALSE(c.ok());
}

TEST(CompileTest, AgreementWithModelChecker) {
  const char* sentences[] = {
      "exists x. E(x,x)",
      "forall x. exists y. E(x,y)",
      "exists x. forall y. E(x,y) -> E(y,x)",
      "forall x y. E(x,y) <-> E(y,x)",
      "exists x y. x != y & E(x,y) & E(y,x)",
      "true",
      "false",
  };
  std::mt19937_64 rng(5);
  for (const char* text : sentences) {
    Formula f = *ParseFormula(text);
    for (std::size_t n = 0; n <= 4; ++n) {
      Result<Circuit> circuit = CompileSentence(f, *Signature::Graph(), n);
      ASSERT_TRUE(circuit.ok()) << text << " n=" << n << ": "
                                << circuit.status().ToString();
      for (int trial = 0; trial < 6; ++trial) {
        Structure g = MakeRandomStructure(Signature::Graph(), n, 0.4, rng);
        Result<std::vector<bool>> bits = EncodeStructure(g);
        ASSERT_TRUE(bits.ok());
        Result<bool> via_circuit = circuit->Evaluate(*bits);
        Result<bool> direct = Satisfies(g, f);
        ASSERT_TRUE(via_circuit.ok() && direct.ok());
        EXPECT_EQ(*via_circuit, *direct) << text << " n=" << n;
      }
    }
  }
}

TEST(CompileTest, DepthIsConstantInN) {
  // The AC0 claim: for a fixed sentence, depth does not grow with n.
  Formula f = *ParseFormula("forall x. exists y. E(x,y) & !E(y,x)");
  std::size_t depth4 = 0;
  for (std::size_t n : {2, 4, 8, 16}) {
    Result<Circuit> circuit = CompileSentence(f, *Signature::Graph(), n);
    ASSERT_TRUE(circuit.ok());
    if (n == 4) {
      depth4 = circuit->Depth();
    }
    if (n > 4) {
      EXPECT_EQ(circuit->Depth(), depth4) << "n=" << n;
    }
  }
}

TEST(CompileTest, SizeIsPolynomialInN) {
  // Gate count grows polynomially (here ~n^2 for a rank-2 sentence), not
  // exponentially.
  Formula f = *ParseFormula("forall x. exists y. E(x,y)");
  std::size_t size8 = 0;
  std::size_t size16 = 0;
  for (std::size_t n : {8, 16}) {
    Result<Circuit> circuit = CompileSentence(f, *Signature::Graph(), n);
    ASSERT_TRUE(circuit.ok());
    (n == 8 ? size8 : size16) = circuit->gate_count();
  }
  // Quadratic-ish: quadrupling allowed, anything near 2^8 x is not.
  EXPECT_LE(size16, size8 * 8);
}

TEST(CompileTest, MemoizationSharesSubcircuits) {
  // (φ ∧ φ) compiles with shared gates: barely larger than φ alone.
  Formula f = *ParseFormula("forall x. exists y. E(x,y)");
  Formula ff = Formula::And(f, f);
  Result<Circuit> one = CompileSentence(f, *Signature::Graph(), 6);
  Result<Circuit> two = CompileSentence(ff, *Signature::Graph(), 6);
  ASSERT_TRUE(one.ok() && two.ok());
  EXPECT_LE(two->gate_count(), one->gate_count() + 2);
}

TEST(CompileTest, ConstantsUnsupported) {
  auto sig = std::make_shared<Signature>();
  sig->AddRelation("E", 2).AddConstant("c");
  Result<Circuit> c =
      CompileSentence(*ParseFormula("exists x. E(x,x)"), *sig, 3);
  EXPECT_FALSE(c.ok());
  EXPECT_EQ(c.status().code(), StatusCode::kUnsupported);
}

TEST(CompileTest, EmptyDomain) {
  Formula f = *ParseFormula("exists x. E(x,x)");
  Result<Circuit> circuit = CompileSentence(f, *Signature::Graph(), 0);
  ASSERT_TRUE(circuit.ok());
  EXPECT_FALSE(*circuit->Evaluate({}));
}

}  // namespace
}  // namespace fmtk
