#include <algorithm>
#include <cstddef>
#include <map>
#include <numeric>
#include <optional>
#include <random>
#include <utility>
#include <vector>

#include <gtest/gtest.h>

#include "core/locality/locality_engine.h"
#include "core/locality/neighborhood.h"
#include "structures/generators.h"
#include "structures/graph.h"
#include "structures/isomorphism.h"
#include "structures/structure.h"

namespace fmtk {
namespace {

// Fixed-seed pool spanning the shapes the locality layer meets in practice:
// paths, cycles, unions, trees, grids, cliques, and sparse random graphs.
std::vector<Structure> TestPool() {
  std::vector<Structure> pool;
  pool.push_back(MakeDirectedPath(9));
  pool.push_back(MakeDirectedCycle(8));
  pool.push_back(MakeDisjointCycles(2, 5));
  pool.push_back(MakePathPlusCycle(5));
  pool.push_back(MakeFullBinaryTree(3));
  pool.push_back(MakeGrid(4, 3));
  pool.push_back(MakeCompleteGraph(5));
  pool.push_back(MakeEmptyGraph(6));
  std::mt19937_64 rng(20260807);
  for (int i = 0; i < 4; ++i) {
    pool.push_back(MakeRandomGraph(10, 0.25, rng));
  }
  return pool;
}

// Relabels `s` by a uniformly random permutation — an isomorphic copy whose
// literal content differs.
Structure Permuted(const Structure& s, std::mt19937_64& rng) {
  std::vector<Element> pi(s.domain_size());
  std::iota(pi.begin(), pi.end(), 0);
  std::shuffle(pi.begin(), pi.end(), rng);
  Structure out(s.signature_ptr(), s.domain_size());
  for (std::size_t r = 0; r < s.signature().relation_count(); ++r) {
    for (const Tuple& t : s.relation(r).tuples()) {
      Tuple mapped;
      mapped.reserve(t.size());
      for (Element e : t) {
        mapped.push_back(pi[e]);
      }
      out.AddTuple(r, mapped);
    }
  }
  for (std::size_t c = 0; c < s.signature().constant_count(); ++c) {
    if (std::optional<Element> v = s.constant(c)) {
      out.SetConstant(c, pi[*v]);
    }
  }
  return out;
}

TEST(LocalityEngineTest, BallsAndNeighborhoodsMatchFreeFunctions) {
  for (const Structure& s : TestPool()) {
    LocalityEngine engine(s);
    Adjacency gaifman = GaifmanAdjacency(s);
    for (std::size_t r = 0; r <= 3; ++r) {
      for (Element v = 0; v < s.domain_size(); ++v) {
        EXPECT_EQ(engine.Ball({v}, r), Ball(gaifman, {v}, r));
        Neighborhood ours = engine.NeighborhoodAt({v}, r);
        Neighborhood ref = NeighborhoodOf(s, gaifman, {v}, r);
        EXPECT_TRUE(ours.structure == ref.structure);
        EXPECT_EQ(ours.distinguished, ref.distinguished);
      }
      // Multi-element centers (the ā of N_r(ā)).
      if (s.domain_size() >= 2) {
        const Tuple pair = {0, static_cast<Element>(s.domain_size() - 1)};
        EXPECT_EQ(engine.Ball(pair, r), Ball(gaifman, pair, r));
        Neighborhood ours = engine.NeighborhoodAt(pair, r);
        Neighborhood ref = NeighborhoodOf(s, gaifman, pair, r);
        EXPECT_TRUE(ours.structure == ref.structure);
        EXPECT_EQ(ours.distinguished, ref.distinguished);
      }
    }
  }
}

// BallSizeHistogram is a cross-check of the vectorized popcount sweep: the
// size counted over the visited bitset must equal Ball().size() for every
// element at every radius, and each per-radius histogram is exactly the
// multiset of those sizes.
TEST(LocalityEngineTest, BallSizeHistogramMatchesBallSizes) {
  const std::size_t kRadius = 3;
  for (const Structure& s : TestPool()) {
    LocalityEngine engine(s);
    const std::vector<std::map<std::size_t, std::size_t>> hist =
        engine.BallSizeHistogram(kRadius);
    ASSERT_EQ(hist.size(), kRadius + 1);
    for (std::size_t r = 0; r <= kRadius; ++r) {
      std::map<std::size_t, std::size_t> ref;
      for (Element v = 0; v < s.domain_size(); ++v) {
        ++ref[engine.Ball({v}, r).size()];
      }
      EXPECT_EQ(hist[r], ref) << "radius " << r;
    }
  }
}

// The tentpole correctness claim: canonical-code equality coincides exactly
// with AreIsomorphic. >= 500 fixed-seed pairs across shapes and radii.
TEST(LocalityEngineTest, DifferentialSweepCodesMatchIsomorphism) {
  std::vector<Structure> pool = TestPool();
  std::mt19937_64 rng(7);
  const std::size_t base = pool.size();
  for (std::size_t i = 0; i < base; ++i) {
    pool.push_back(Permuted(pool[i], rng));
  }
  std::size_t pairs_checked = 0;
  for (std::size_t r = 0; r <= 3; ++r) {
    struct Entry {
      Neighborhood n;
      CanonicalCode code;
    };
    std::vector<Entry> entries;
    for (const Structure& s : pool) {
      LocalityEngine engine(s);
      // Sampling every third element keeps the quadratic pair loop fast
      // while still crossing structure boundaries.
      for (Element v = 0; v < s.domain_size(); v += 3) {
        Neighborhood n = engine.NeighborhoodAt({v}, r);
        std::optional<CanonicalCode> code = CanonicalNeighborhoodCode(n);
        ASSERT_TRUE(code.has_value());  // all pool balls are small
        entries.push_back(Entry{std::move(n), std::move(*code)});
      }
    }
    for (std::size_t i = 0; i < entries.size(); ++i) {
      for (std::size_t j = i + 1; j < entries.size(); ++j) {
        const bool codes_equal = entries[i].code == entries[j].code;
        const bool iso = NeighborhoodsIsomorphic(entries[i].n, entries[j].n);
        ASSERT_EQ(codes_equal, iso)
            << "radius " << r << " pair (" << i << "," << j << ")";
        ++pairs_checked;
      }
    }
  }
  EXPECT_GE(pairs_checked, 500u);
}

// A permuted copy realizes the same multiset of neighborhood types, so a
// shared index must produce identical histograms for both.
TEST(LocalityEngineTest, PermutedCopiesShareHistograms) {
  std::mt19937_64 rng(11);
  for (const Structure& s : TestPool()) {
    Structure p = Permuted(s, rng);
    LocalityEngine engine_s(s);
    LocalityEngine engine_p(p);
    NeighborhoodTypeIndex index;
    for (std::size_t r = 0; r <= 3; ++r) {
      EXPECT_EQ(engine_s.TypeHistogram(r, index),
                engine_p.TypeHistogram(r, index));
    }
  }
}

TEST(LocalityEngineTest, ParallelHistogramIsBitIdenticalToSequential) {
  ParallelPolicy policy;
  policy.enabled = true;
  policy.num_threads = 4;
  policy.min_domain = 1;
  for (const Structure& s : TestPool()) {
    for (std::size_t r = 0; r <= 3; ++r) {
      LocalityEngine seq_engine(s);
      LocalityEngine par_engine(s);
      NeighborhoodTypeIndex seq_index;
      NeighborhoodTypeIndex par_index;
      auto seq = seq_engine.TypeHistogram(r, seq_index);
      auto par = par_engine.TypeHistogram(r, par_index, policy);
      ASSERT_EQ(seq, par);
      // Same interned types in the same order...
      ASSERT_EQ(seq_index.size(), par_index.size());
      for (NeighborhoodTypeIndex::TypeId id = 0; id < seq_index.size();
           ++id) {
        EXPECT_TRUE(NeighborhoodsIsomorphic(seq_index.representative(id),
                                            par_index.representative(id)));
      }
      // ...and bit-identical counters, engine- and index-side.
      EXPECT_EQ(seq_engine.stats().ToString(),
                par_engine.stats().ToString());
      EXPECT_EQ(seq_index.stats().canon_codes, par_index.stats().canon_codes);
      EXPECT_EQ(seq_index.stats().canon_hits, par_index.stats().canon_hits);
      EXPECT_EQ(seq_index.stats().iso_tests, par_index.stats().iso_tests);
    }
  }
}

// Both paths assign TypeIds in first-occurrence element order, so the maps
// agree key for key even across separate indexes.
TEST(LocalityEngineTest, EngineHistogramMatchesFreeFunction) {
  for (const Structure& s : TestPool()) {
    for (std::size_t r = 0; r <= 3; ++r) {
      NeighborhoodTypeIndex free_index;
      NeighborhoodTypeIndex engine_index;
      auto via_free = NeighborhoodTypeHistogram(s, r, free_index);
      LocalityEngine engine(s);
      auto via_engine = engine.TypeHistogram(r, engine_index);
      EXPECT_EQ(via_free, via_engine);
    }
  }
}

// The canonical-code regime and the seed's invariant-bucket regime induce
// the same partition into types.
TEST(LocalityEngineTest, CanonicalAndFallbackRegimesAgree) {
  NeighborhoodTypeIndex::Options no_canon;
  no_canon.use_canonical_codes = false;
  for (const Structure& s : TestPool()) {
    LocalityEngine engine(s);
    for (std::size_t r = 0; r <= 3; ++r) {
      NeighborhoodTypeIndex canon_index;
      NeighborhoodTypeIndex oracle_index(no_canon);
      auto with_codes = engine.TypeHistogram(r, canon_index);
      std::map<NeighborhoodTypeIndex::TypeId, std::size_t> with_oracle;
      for (Element v = 0; v < s.domain_size(); ++v) {
        ++with_oracle[oracle_index.TypeOf(engine.NeighborhoodAt({v}, r))];
      }
      EXPECT_EQ(with_codes, with_oracle);
      EXPECT_EQ(canon_index.size(), oracle_index.size());
    }
  }
}

TEST(LocalityEngineTest, SweepMatchesFreshHistogramsAndReusesFrontiers) {
  for (const Structure& s : TestPool()) {
    LocalityEngine sweep_engine(s);
    NeighborhoodSweep sweep = sweep_engine.NewSweep();
    for (std::size_t r = 0; r <= 3; ++r) {
      LocalityEngine fresh_engine(s);
      NeighborhoodTypeIndex sweep_index;
      NeighborhoodTypeIndex fresh_index;
      EXPECT_EQ(sweep.HistogramAt(r, sweep_index),
                fresh_engine.TypeHistogram(r, fresh_index));
    }
    // Radii past 0 grow from saved frontiers rather than fresh BFS runs.
    EXPECT_GT(sweep_engine.stats().frontier_reuses, 0u);
  }
}

TEST(LocalityEngineTest, SweepVisitsEachNodeOncePerElement) {
  Structure s = MakeGrid(5, 4);
  LocalityEngine sweep_engine(s);
  NeighborhoodSweep sweep = sweep_engine.NewSweep();
  NeighborhoodTypeIndex index;
  for (std::size_t r = 0; r <= 3; ++r) {
    (void)sweep.HistogramAt(r, index);
  }
  LocalityEngine oneshot(s);
  NeighborhoodTypeIndex index2;
  (void)oneshot.TypeHistogram(3, index2);
  EXPECT_EQ(sweep_engine.stats().bfs_node_visits,
            oneshot.stats().bfs_node_visits);
}

// Regression guard for the seed bug: once the exemplar cap is reached,
// probing novel contents must not grow empty exact-cache rows.
TEST(LocalityEngineTest, ExactCacheRespectsExemplarCap) {
  NeighborhoodTypeIndex::Options options;
  options.max_exemplars = 4;
  options.use_canonical_codes = false;
  NeighborhoodTypeIndex index(options);
  std::vector<Structure> paths;
  paths.reserve(20);
  for (std::size_t n = 2; n < 22; ++n) {
    paths.push_back(MakeDirectedPath(n));
  }
  for (const Structure& p : paths) {
    LocalityEngine engine(p);
    (void)index.TypeOf(engine.NeighborhoodAt({0}, p.domain_size()));
  }
  EXPECT_EQ(index.size(), 20u);  // all distinct types
  EXPECT_LE(index.exact_cache_rows(), options.max_exemplars);
  const std::size_t rows = index.exact_cache_rows();
  // Re-probing novel contents past the cap: still no new rows.
  for (const Structure& p : paths) {
    LocalityEngine engine(p);
    (void)index.TypeOf(engine.NeighborhoodAt({0}, p.domain_size()));
  }
  EXPECT_EQ(index.exact_cache_rows(), rows);
  EXPECT_EQ(index.size(), 20u);
}

TEST(LocalityEngineTest, StatsCountBallsAndCanonWork) {
  Structure s = MakeDirectedCycle(10);
  LocalityEngine engine(s);
  NeighborhoodTypeIndex index;
  (void)engine.TypeHistogram(2, index);
  EXPECT_EQ(engine.stats().balls_extracted, 10u);
  EXPECT_GT(engine.stats().bfs_node_visits, 0u);
  // One isomorphism class, ten elements: one code interned, nine hits.
  EXPECT_EQ(engine.stats().canon_codes, 10u);
  EXPECT_EQ(engine.stats().canon_hits, 9u);
  EXPECT_EQ(engine.stats().iso_tests, 0u);
  EXPECT_EQ(index.size(), 1u);
}

TEST(LocalityEngineTest, CachedMaxDegreeMatchesGraphScan) {
  for (const Structure& s : TestPool()) {
    LocalityEngine engine(s);
    for (std::size_t r = 0; r < s.signature().relation_count(); ++r) {
      EXPECT_EQ(engine.CachedMaxDegree(r), MaxDegree(s, r));
      // Second call served from the cache — same answer.
      EXPECT_EQ(engine.CachedMaxDegree(r), MaxDegree(s, r));
    }
  }
}

}  // namespace
}  // namespace fmtk
