#include <gtest/gtest.h>

#include "datalog/evaluator.h"
#include "datalog/program.h"
#include "queries/relation_query.h"
#include "structures/generators.h"
#include "structures/graph.h"

namespace fmtk {
namespace {

TEST(DatalogProgramTest, BuiltinsValidate) {
  EXPECT_TRUE(DatalogProgram::TransitiveClosure().Validate().ok());
  EXPECT_TRUE(DatalogProgram::SameGeneration().Validate().ok());
}

TEST(DatalogProgramTest, IdbEdbSplit) {
  DatalogProgram tc = DatalogProgram::TransitiveClosure();
  EXPECT_EQ(tc.IdbPredicates(), (std::set<std::string>{"tc"}));
  EXPECT_EQ(tc.EdbPredicates(), (std::set<std::string>{"E"}));
}

TEST(DatalogProgramTest, RangeRestrictionEnforced) {
  Result<DatalogProgram> bad =
      ParseDatalogProgram("p(x,y) :- E(x,x).", /*validate=*/false);
  ASSERT_TRUE(bad.ok()) << bad.status().ToString();
  EXPECT_EQ(bad->Validate().code(), StatusCode::kInvalidArgument);
}

TEST(DatalogProgramTest, ArityConsistencyEnforced) {
  Result<DatalogProgram> bad = ParseDatalogProgram(
      "p(x) :- E(x,y). p(x,y) :- E(x,y).", /*validate=*/false);
  ASSERT_TRUE(bad.ok()) << bad.status().ToString();
  EXPECT_FALSE(bad->Validate().ok());
}

TEST(DatalogParserTest, ParsesTransitiveClosure) {
  Result<DatalogProgram> p = ParseDatalogProgram(
      "tc(x,y) :- E(x,y). tc(x,y) :- E(x,z), tc(z,y).");
  ASSERT_TRUE(p.ok()) << p.status().ToString();
  EXPECT_EQ(p->rules().size(), 2u);
  EXPECT_EQ(p->rules()[1].body.size(), 2u);
  EXPECT_EQ(p->ToString(), DatalogProgram::TransitiveClosure().ToString());
}

TEST(DatalogParserTest, FactsAndConstants) {
  Result<DatalogProgram> p = ParseDatalogProgram(
      "start(0).  reach(x) :- start(x). reach(y) :- reach(x), E(x,y).");
  ASSERT_TRUE(p.ok()) << p.status().ToString();
  EXPECT_EQ(p->rules().size(), 3u);
  EXPECT_FALSE(p->rules()[0].head.terms[0].is_variable);
  EXPECT_EQ(p->rules()[0].head.terms[0].value, 0u);
}

TEST(DatalogParserTest, FactSchemaWithEmptyBody) {
  Result<DatalogProgram> p = ParseDatalogProgram("sg(x,x) :- .");
  ASSERT_TRUE(p.ok()) << p.status().ToString();
  EXPECT_TRUE(p->rules()[0].body.empty());
}

TEST(DatalogParserTest, Errors) {
  EXPECT_FALSE(ParseDatalogProgram("tc(x,y)").ok());     // Missing '.'.
  EXPECT_FALSE(ParseDatalogProgram("tc(x, :- .").ok());
  EXPECT_FALSE(ParseDatalogProgram("p(x) :- q(x. ").ok());
  // Range restriction via parser validation.
  EXPECT_FALSE(ParseDatalogProgram("p(x) :- q(y).").ok());
}

TEST(DatalogEvalTest, TransitiveClosureMatchesGraphAlgorithm) {
  for (std::size_t n : {2, 5, 9}) {
    Structure chain = MakeDirectedPath(n);
    Result<std::map<std::string, Relation>> out =
        EvaluateDatalog(DatalogProgram::TransitiveClosure(), chain);
    ASSERT_TRUE(out.ok()) << out.status().ToString();
    EXPECT_TRUE(out->at("tc") == TransitiveClosure(chain, 0));
  }
  Structure cycle = MakeDirectedCycle(6);
  Result<std::map<std::string, Relation>> out =
      EvaluateDatalog(DatalogProgram::TransitiveClosure(), cycle);
  ASSERT_TRUE(out.ok());
  EXPECT_TRUE(out->at("tc") == TransitiveClosure(cycle, 0));
}

TEST(DatalogEvalTest, NaiveAndSemiNaiveAgree) {
  Structure tree = MakeFullBinaryTree(3);
  DatalogStats naive_stats;
  DatalogStats semi_stats;
  Result<std::map<std::string, Relation>> naive =
      EvaluateDatalog(DatalogProgram::SameGeneration(), tree,
                      DatalogStrategy::kNaive, &naive_stats);
  Result<std::map<std::string, Relation>> semi =
      EvaluateDatalog(DatalogProgram::SameGeneration(), tree,
                      DatalogStrategy::kSemiNaive, &semi_stats);
  ASSERT_TRUE(naive.ok() && semi.ok());
  EXPECT_TRUE(naive->at("sg") == semi->at("sg"));
  // Semi-naive derives strictly fewer duplicate tuples.
  EXPECT_LT(semi_stats.tuples_derived, naive_stats.tuples_derived);
}

TEST(DatalogEvalTest, SameGenerationMatchesQueryLibrary) {
  Structure tree = MakeFullBinaryTree(3);
  Result<std::map<std::string, Relation>> dl =
      EvaluateDatalog(DatalogProgram::SameGeneration(), tree);
  Result<Relation> direct = RelationQuery::SameGeneration().Evaluate(tree);
  ASSERT_TRUE(dl.ok() && direct.ok());
  EXPECT_TRUE(dl->at("sg") == *direct);
}

TEST(DatalogEvalTest, SameGenerationOnTreeIsLevelEquality) {
  Structure tree = MakeFullBinaryTree(2);  // 7 nodes, levels {0},{1,2},{3..6}
  Result<Relation> sg = RelationQuery::SameGeneration().Evaluate(tree);
  ASSERT_TRUE(sg.ok());
  EXPECT_TRUE(sg->Contains({1, 2}));
  EXPECT_TRUE(sg->Contains({3, 6}));
  EXPECT_FALSE(sg->Contains({0, 1}));
  EXPECT_FALSE(sg->Contains({2, 3}));
  EXPECT_EQ(sg->size(), 1u + 4u + 16u);
}

TEST(DatalogEvalTest, UnknownEdbPredicateIsError) {
  Result<DatalogProgram> p = ParseDatalogProgram("p(x) :- R(x,y).");
  ASSERT_TRUE(p.ok());
  Structure chain = MakeDirectedPath(3);
  Result<std::map<std::string, Relation>> out = EvaluateDatalog(*p, chain);
  EXPECT_FALSE(out.ok());
  EXPECT_EQ(out.status().code(), StatusCode::kSignatureMismatch);
}

TEST(DatalogEvalTest, IdbEdbNameCollisionIsError) {
  Result<DatalogProgram> p = ParseDatalogProgram("E(x,y) :- E(y,x).");
  ASSERT_TRUE(p.ok());
  Structure chain = MakeDirectedPath(3);
  Result<std::map<std::string, Relation>> out = EvaluateDatalog(*p, chain);
  EXPECT_FALSE(out.ok());
  EXPECT_EQ(out.status().code(), StatusCode::kInvalidArgument);
}

TEST(DatalogEvalTest, ConstantOutsideDomainIsError) {
  Result<DatalogProgram> p =
      ParseDatalogProgram("p(9). q(x) :- p(x), E(x,x).");
  ASSERT_TRUE(p.ok());
  Structure chain = MakeDirectedPath(3);
  Result<std::map<std::string, Relation>> out = EvaluateDatalog(*p, chain);
  EXPECT_FALSE(out.ok());
  EXPECT_EQ(out.status().code(), StatusCode::kInvalidArgument);
}

TEST(DatalogEvalTest, EmptyDomain) {
  Structure empty = MakeEmptyGraph(0);
  Result<std::map<std::string, Relation>> out =
      EvaluateDatalog(DatalogProgram::SameGeneration(), empty);
  ASSERT_TRUE(out.ok());
  EXPECT_EQ(out->at("sg").size(), 0u);
}

TEST(DatalogEvalTest, ReachabilityWithConstant) {
  Result<DatalogProgram> p = ParseDatalogProgram(
      "reach(0). reach(y) :- reach(x), E(x,y).");
  ASSERT_TRUE(p.ok());
  Structure chain = MakeDirectedPath(5);
  Result<std::map<std::string, Relation>> out = EvaluateDatalog(*p, chain);
  ASSERT_TRUE(out.ok()) << out.status().ToString();
  EXPECT_EQ(out->at("reach").size(), 5u);
  Structure two = MakeDisjointCycles(2, 3);
  out = EvaluateDatalog(*p, two);
  ASSERT_TRUE(out.ok());
  EXPECT_EQ(out->at("reach").size(), 3u);  // Only the first cycle.
}

TEST(DatalogEvalTest, StatsTrackIterations) {
  Structure chain = MakeDirectedPath(8);
  DatalogStats stats;
  ASSERT_TRUE(EvaluateDatalog(DatalogProgram::TransitiveClosure(), chain,
                              DatalogStrategy::kSemiNaive, &stats)
                  .ok());
  // A chain of 8 nodes needs ~7 rounds to close paths of length 7.
  EXPECT_GE(stats.iterations, 7u);
  EXPECT_GT(stats.tuples_new, 0u);
}

TEST(DatalogEvalTest, AllThreeStrategiesAgree) {
  for (const DatalogProgram& program :
       {DatalogProgram::TransitiveClosure(), DatalogProgram::SameGeneration(),
        DatalogProgram::NonlinearTransitiveClosure()}) {
    for (const Structure& s :
         {MakeFullBinaryTree(3), MakeDirectedCycle(5), MakeDirectedPath(7)}) {
      Result<std::map<std::string, Relation>> naive =
          EvaluateDatalog(program, s, DatalogStrategy::kNaive);
      Result<std::map<std::string, Relation>> seed_semi =
          EvaluateDatalog(program, s, DatalogStrategy::kSeedSemiNaive);
      Result<std::map<std::string, Relation>> compiled =
          EvaluateDatalog(program, s, DatalogStrategy::kSemiNaive);
      ASSERT_TRUE(naive.ok() && seed_semi.ok() && compiled.ok());
      EXPECT_TRUE(*naive == *seed_semi);
      EXPECT_TRUE(*naive == *compiled);
    }
  }
}

TEST(DatalogEvalTest, StandardDeltaDecompositionDerivesLess) {
  // Nonlinear TC has two recursive body atoms: the seed's per-position
  // scheme joins the delta against the FULL relation at the other
  // position, re-deriving tuples; the standard decomposition (full-new
  // before the delta, pre-round snapshots after) does not.
  Structure chain = MakeDirectedPath(24);
  DatalogStats seed_semi;
  DatalogStats compiled;
  Result<std::map<std::string, Relation>> a =
      EvaluateDatalog(DatalogProgram::NonlinearTransitiveClosure(), chain,
                      DatalogStrategy::kSeedSemiNaive, &seed_semi);
  Result<std::map<std::string, Relation>> b =
      EvaluateDatalog(DatalogProgram::NonlinearTransitiveClosure(), chain,
                      DatalogStrategy::kSemiNaive, &compiled);
  ASSERT_TRUE(a.ok() && b.ok());
  EXPECT_TRUE(a->at("tc") == b->at("tc"));
  EXPECT_LT(compiled.tuples_derived, seed_semi.tuples_derived);
  EXPECT_EQ(compiled.tuples_new, seed_semi.tuples_new);
}

TEST(DatalogEvalTest, PureEdbRuleFiresOnlyInRoundOne) {
  // A non-recursive pure-EDB rule derives everything in round 1; round 2
  // only confirms the fixpoint. Both semi-naive engines must derive each
  // edge exactly once (the seed used to re-fire the rule every round).
  Result<DatalogProgram> p = ParseDatalogProgram("e2(x,y) :- E(x,y).");
  ASSERT_TRUE(p.ok());
  Structure chain = MakeDirectedPath(10);
  const std::uint64_t edges = chain.relation(0).size();
  for (DatalogStrategy strategy :
       {DatalogStrategy::kSeedSemiNaive, DatalogStrategy::kSemiNaive}) {
    DatalogStats stats;
    Result<std::map<std::string, Relation>> out =
        EvaluateDatalog(*p, chain, strategy, &stats);
    ASSERT_TRUE(out.ok());
    EXPECT_EQ(out->at("e2").size(), edges);
    EXPECT_EQ(stats.tuples_derived, edges);
  }
}

TEST(DatalogEvalTest, RuleApplicationsCountFirings) {
  // rule_applications counts rule-body executions (one per delta variant
  // per round), not body-atom visits — those are atom_visits. TC has a
  // pure-EDB rule (1 firing, round 1 only) and a 1-IDB-atom rule (1 firing
  // per round).
  Structure chain = MakeDirectedPath(8);
  for (DatalogStrategy strategy :
       {DatalogStrategy::kSeedSemiNaive, DatalogStrategy::kSemiNaive}) {
    DatalogStats stats;
    ASSERT_TRUE(EvaluateDatalog(DatalogProgram::TransitiveClosure(), chain,
                                strategy, &stats)
                    .ok());
    EXPECT_EQ(stats.rule_applications, stats.iterations + 1);
    EXPECT_GT(stats.atom_visits, stats.rule_applications);
  }
}

TEST(DatalogEvalTest, CompiledEngineUsesIndexes) {
  Structure tree = MakeFullBinaryTree(5);
  DatalogStats seed_semi;
  DatalogStats compiled;
  ASSERT_TRUE(EvaluateDatalog(DatalogProgram::SameGeneration(), tree,
                              DatalogStrategy::kSeedSemiNaive, &seed_semi)
                  .ok());
  ASSERT_TRUE(EvaluateDatalog(DatalogProgram::SameGeneration(), tree,
                              DatalogStrategy::kSemiNaive, &compiled)
                  .ok());
  EXPECT_GT(compiled.index_probes, 0u);
  EXPECT_EQ(seed_semi.index_probes, 0u);
  // Posting-list probes replace full scans: orders of magnitude fewer
  // candidate tuples examined.
  EXPECT_LT(compiled.tuples_scanned * 100, seed_semi.tuples_scanned);
  ASSERT_FALSE(compiled.join_orders.empty());
  bool has_delta = false;
  bool has_probe = false;
  for (const std::string& line : compiled.join_orders) {
    has_delta = has_delta || line.find(":delta") != std::string::npos;
    has_probe = has_probe || line.find(":probe(") != std::string::npos;
  }
  EXPECT_TRUE(has_delta);
  EXPECT_TRUE(has_probe);
}

TEST(DatalogEvalTest, ParallelDeltaFanOutMatchesSequential) {
  Structure tree = MakeFullBinaryTree(5);
  DatalogStats sequential;
  DatalogStats parallel;
  Result<std::map<std::string, Relation>> a =
      EvaluateDatalog(DatalogProgram::SameGeneration(), tree,
                      DatalogStrategy::kSemiNaive, &sequential);
  ParallelPolicy policy;
  policy.enabled = true;
  policy.num_threads = 3;
  policy.min_domain = 1;
  Result<std::map<std::string, Relation>> b =
      EvaluateDatalog(DatalogProgram::SameGeneration(), tree,
                      DatalogStrategy::kSemiNaive, &parallel, policy);
  ASSERT_TRUE(a.ok() && b.ok());
  EXPECT_TRUE(*a == *b);
  // The fan-out only partitions the delta: every counter is unchanged.
  EXPECT_EQ(sequential.iterations, parallel.iterations);
  EXPECT_EQ(sequential.tuples_derived, parallel.tuples_derived);
  EXPECT_EQ(sequential.tuples_new, parallel.tuples_new);
  EXPECT_EQ(sequential.atom_visits, parallel.atom_visits);
  EXPECT_EQ(sequential.tuples_scanned, parallel.tuples_scanned);
}

TEST(DatalogEvalTest, RepeatedVariablesAndBodyConstants) {
  // Repeated variables become equality pre-checks and constants become
  // probe keys in the compiled engine; pin both against the naive oracle.
  Result<DatalogProgram> p = ParseDatalogProgram(
      "loop(x) :- E(x,x). from0(y) :- E(0,y). "
      "chain2(x,y) :- E(x,z), E(z,y), loop(x).");
  ASSERT_TRUE(p.ok()) << p.status().ToString();
  Structure g = MakeDisjointCycles(2, 3);  // Two 3-cycles, no self loops.
  Structure loops = MakeDisjointCycles(3, 1);  // Self loops only.
  for (const Structure* s : {&g, &loops}) {
    Result<std::map<std::string, Relation>> naive =
        EvaluateDatalog(*p, *s, DatalogStrategy::kNaive);
    Result<std::map<std::string, Relation>> compiled =
        EvaluateDatalog(*p, *s, DatalogStrategy::kSemiNaive);
    ASSERT_TRUE(naive.ok() && compiled.ok());
    EXPECT_TRUE(*naive == *compiled);
  }
}

}  // namespace
}  // namespace fmtk
