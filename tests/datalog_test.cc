#include <gtest/gtest.h>

#include "datalog/evaluator.h"
#include "datalog/program.h"
#include "queries/relation_query.h"
#include "structures/generators.h"
#include "structures/graph.h"

namespace fmtk {
namespace {

TEST(DatalogProgramTest, BuiltinsValidate) {
  EXPECT_TRUE(DatalogProgram::TransitiveClosure().Validate().ok());
  EXPECT_TRUE(DatalogProgram::SameGeneration().Validate().ok());
}

TEST(DatalogProgramTest, IdbEdbSplit) {
  DatalogProgram tc = DatalogProgram::TransitiveClosure();
  EXPECT_EQ(tc.IdbPredicates(), (std::set<std::string>{"tc"}));
  EXPECT_EQ(tc.EdbPredicates(), (std::set<std::string>{"E"}));
}

TEST(DatalogProgramTest, RangeRestrictionEnforced) {
  DatalogProgram bad;
  bad.AddRule({{"p", {DlTerm::Var("x"), DlTerm::Var("y")}},
               {{"E", {DlTerm::Var("x"), DlTerm::Var("x")}}}});
  EXPECT_EQ(bad.Validate().code(), StatusCode::kInvalidArgument);
}

TEST(DatalogProgramTest, ArityConsistencyEnforced) {
  DatalogProgram bad;
  bad.AddRule({{"p", {DlTerm::Var("x")}},
               {{"E", {DlTerm::Var("x"), DlTerm::Var("y")}}}});
  bad.AddRule({{"p", {DlTerm::Var("x"), DlTerm::Var("y")}},
               {{"E", {DlTerm::Var("x"), DlTerm::Var("y")}}}});
  EXPECT_FALSE(bad.Validate().ok());
}

TEST(DatalogParserTest, ParsesTransitiveClosure) {
  Result<DatalogProgram> p = ParseDatalogProgram(
      "tc(x,y) :- E(x,y). tc(x,y) :- E(x,z), tc(z,y).");
  ASSERT_TRUE(p.ok()) << p.status().ToString();
  EXPECT_EQ(p->rules().size(), 2u);
  EXPECT_EQ(p->rules()[1].body.size(), 2u);
  EXPECT_EQ(p->ToString(), DatalogProgram::TransitiveClosure().ToString());
}

TEST(DatalogParserTest, FactsAndConstants) {
  Result<DatalogProgram> p = ParseDatalogProgram(
      "start(0).  reach(x) :- start(x). reach(y) :- reach(x), E(x,y).");
  ASSERT_TRUE(p.ok()) << p.status().ToString();
  EXPECT_EQ(p->rules().size(), 3u);
  EXPECT_FALSE(p->rules()[0].head.terms[0].is_variable);
  EXPECT_EQ(p->rules()[0].head.terms[0].value, 0u);
}

TEST(DatalogParserTest, FactSchemaWithEmptyBody) {
  Result<DatalogProgram> p = ParseDatalogProgram("sg(x,x) :- .");
  ASSERT_TRUE(p.ok()) << p.status().ToString();
  EXPECT_TRUE(p->rules()[0].body.empty());
}

TEST(DatalogParserTest, Errors) {
  EXPECT_FALSE(ParseDatalogProgram("tc(x,y)").ok());     // Missing '.'.
  EXPECT_FALSE(ParseDatalogProgram("tc(x, :- .").ok());
  EXPECT_FALSE(ParseDatalogProgram("p(x) :- q(x. ").ok());
  // Range restriction via parser validation.
  EXPECT_FALSE(ParseDatalogProgram("p(x) :- q(y).").ok());
}

TEST(DatalogEvalTest, TransitiveClosureMatchesGraphAlgorithm) {
  for (std::size_t n : {2, 5, 9}) {
    Structure chain = MakeDirectedPath(n);
    Result<std::map<std::string, Relation>> out =
        EvaluateDatalog(DatalogProgram::TransitiveClosure(), chain);
    ASSERT_TRUE(out.ok()) << out.status().ToString();
    EXPECT_TRUE(out->at("tc") == TransitiveClosure(chain, 0));
  }
  Structure cycle = MakeDirectedCycle(6);
  Result<std::map<std::string, Relation>> out =
      EvaluateDatalog(DatalogProgram::TransitiveClosure(), cycle);
  ASSERT_TRUE(out.ok());
  EXPECT_TRUE(out->at("tc") == TransitiveClosure(cycle, 0));
}

TEST(DatalogEvalTest, NaiveAndSemiNaiveAgree) {
  Structure tree = MakeFullBinaryTree(3);
  DatalogStats naive_stats;
  DatalogStats semi_stats;
  Result<std::map<std::string, Relation>> naive =
      EvaluateDatalog(DatalogProgram::SameGeneration(), tree,
                      DatalogStrategy::kNaive, &naive_stats);
  Result<std::map<std::string, Relation>> semi =
      EvaluateDatalog(DatalogProgram::SameGeneration(), tree,
                      DatalogStrategy::kSemiNaive, &semi_stats);
  ASSERT_TRUE(naive.ok() && semi.ok());
  EXPECT_TRUE(naive->at("sg") == semi->at("sg"));
  // Semi-naive derives strictly fewer duplicate tuples.
  EXPECT_LT(semi_stats.tuples_derived, naive_stats.tuples_derived);
}

TEST(DatalogEvalTest, SameGenerationMatchesQueryLibrary) {
  Structure tree = MakeFullBinaryTree(3);
  Result<std::map<std::string, Relation>> dl =
      EvaluateDatalog(DatalogProgram::SameGeneration(), tree);
  Result<Relation> direct = RelationQuery::SameGeneration().Evaluate(tree);
  ASSERT_TRUE(dl.ok() && direct.ok());
  EXPECT_TRUE(dl->at("sg") == *direct);
}

TEST(DatalogEvalTest, SameGenerationOnTreeIsLevelEquality) {
  Structure tree = MakeFullBinaryTree(2);  // 7 nodes, levels {0},{1,2},{3..6}
  Result<Relation> sg = RelationQuery::SameGeneration().Evaluate(tree);
  ASSERT_TRUE(sg.ok());
  EXPECT_TRUE(sg->Contains({1, 2}));
  EXPECT_TRUE(sg->Contains({3, 6}));
  EXPECT_FALSE(sg->Contains({0, 1}));
  EXPECT_FALSE(sg->Contains({2, 3}));
  EXPECT_EQ(sg->size(), 1u + 4u + 16u);
}

TEST(DatalogEvalTest, UnknownEdbPredicateIsError) {
  Result<DatalogProgram> p = ParseDatalogProgram("p(x) :- R(x,y).");
  ASSERT_TRUE(p.ok());
  Structure chain = MakeDirectedPath(3);
  Result<std::map<std::string, Relation>> out = EvaluateDatalog(*p, chain);
  EXPECT_FALSE(out.ok());
  EXPECT_EQ(out.status().code(), StatusCode::kSignatureMismatch);
}

TEST(DatalogEvalTest, IdbEdbNameCollisionIsError) {
  Result<DatalogProgram> p = ParseDatalogProgram("E(x,y) :- E(y,x).");
  ASSERT_TRUE(p.ok());
  Structure chain = MakeDirectedPath(3);
  Result<std::map<std::string, Relation>> out = EvaluateDatalog(*p, chain);
  EXPECT_FALSE(out.ok());
  EXPECT_EQ(out.status().code(), StatusCode::kInvalidArgument);
}

TEST(DatalogEvalTest, ConstantOutsideDomainIsError) {
  Result<DatalogProgram> p =
      ParseDatalogProgram("p(9). q(x) :- p(x), E(x,x).");
  ASSERT_TRUE(p.ok());
  Structure chain = MakeDirectedPath(3);
  Result<std::map<std::string, Relation>> out = EvaluateDatalog(*p, chain);
  EXPECT_FALSE(out.ok());
  EXPECT_EQ(out.status().code(), StatusCode::kInvalidArgument);
}

TEST(DatalogEvalTest, EmptyDomain) {
  Structure empty = MakeEmptyGraph(0);
  Result<std::map<std::string, Relation>> out =
      EvaluateDatalog(DatalogProgram::SameGeneration(), empty);
  ASSERT_TRUE(out.ok());
  EXPECT_EQ(out->at("sg").size(), 0u);
}

TEST(DatalogEvalTest, ReachabilityWithConstant) {
  Result<DatalogProgram> p = ParseDatalogProgram(
      "reach(0). reach(y) :- reach(x), E(x,y).");
  ASSERT_TRUE(p.ok());
  Structure chain = MakeDirectedPath(5);
  Result<std::map<std::string, Relation>> out = EvaluateDatalog(*p, chain);
  ASSERT_TRUE(out.ok()) << out.status().ToString();
  EXPECT_EQ(out->at("reach").size(), 5u);
  Structure two = MakeDisjointCycles(2, 3);
  out = EvaluateDatalog(*p, two);
  ASSERT_TRUE(out.ok());
  EXPECT_EQ(out->at("reach").size(), 3u);  // Only the first cycle.
}

TEST(DatalogEvalTest, StatsTrackIterations) {
  Structure chain = MakeDirectedPath(8);
  DatalogStats stats;
  ASSERT_TRUE(EvaluateDatalog(DatalogProgram::TransitiveClosure(), chain,
                              DatalogStrategy::kSemiNaive, &stats)
                  .ok());
  // A chain of 8 nodes needs ~7 rounds to close paths of length 7.
  EXPECT_GE(stats.iterations, 7u);
  EXPECT_GT(stats.tuples_new, 0u);
}

}  // namespace
}  // namespace fmtk
