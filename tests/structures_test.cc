#include <gtest/gtest.h>

#include <random>

#include "structures/generators.h"
#include "structures/relation.h"
#include "structures/signature.h"
#include "structures/structure.h"

namespace fmtk {
namespace {

TEST(SignatureTest, BuildAndLookup) {
  Signature sig;
  sig.AddRelation("E", 2).AddRelation("P", 1).AddConstant("c");
  EXPECT_EQ(sig.relation_count(), 2u);
  EXPECT_EQ(sig.constant_count(), 1u);
  EXPECT_EQ(sig.relation(0).name, "E");
  EXPECT_EQ(sig.relation(1).arity, 1u);
  EXPECT_EQ(*sig.FindRelation("P"), 1u);
  EXPECT_FALSE(sig.FindRelation("Q").has_value());
  EXPECT_EQ(*sig.FindConstant("c"), 0u);
  EXPECT_FALSE(sig.FindConstant("d").has_value());
}

TEST(SignatureTest, Equality) {
  Signature a;
  a.AddRelation("E", 2);
  Signature b;
  b.AddRelation("E", 2);
  EXPECT_TRUE(a == b);
  b.AddConstant("c");
  EXPECT_FALSE(a == b);
}

TEST(SignatureTest, ToString) {
  Signature sig;
  sig.AddRelation("E", 2).AddConstant("c");
  EXPECT_EQ(sig.ToString(), "{E/2; c}");
  EXPECT_EQ(Signature::Empty()->ToString(), "{}");
}

TEST(SignatureTest, CommonSignatures) {
  EXPECT_EQ(Signature::Graph()->relation(0).name, "E");
  EXPECT_EQ(Signature::Order()->relation(0).name, "<");
  EXPECT_EQ(Signature::Empty()->relation_count(), 0u);
}

TEST(RelationTest, AddAndContains) {
  Relation r(2);
  EXPECT_TRUE(r.Add({0, 1}));
  EXPECT_FALSE(r.Add({0, 1}));  // Duplicate.
  EXPECT_TRUE(r.Add({1, 0}));
  EXPECT_EQ(r.size(), 2u);
  EXPECT_TRUE(r.Contains({0, 1}));
  EXPECT_FALSE(r.Contains({1, 1}));
}

TEST(RelationTest, ZeroArity) {
  Relation r(0);
  EXPECT_TRUE(r.empty());
  EXPECT_TRUE(r.Add({}));
  EXPECT_TRUE(r.Contains({}));
  EXPECT_FALSE(r.Add({}));
  EXPECT_EQ(r.size(), 1u);
}

TEST(RelationTest, EqualityIsOrderInsensitive) {
  Relation a(1);
  a.Add({0});
  a.Add({1});
  Relation b(1);
  b.Add({1});
  b.Add({0});
  EXPECT_TRUE(a == b);
}

TEST(StructureTest, EmptyStructure) {
  Structure s(Signature::Empty(), 0);
  EXPECT_EQ(s.domain_size(), 0u);
  EXPECT_EQ(s.TupleCount(), 0u);
}

TEST(StructureTest, AddTupleByName) {
  Structure s(Signature::Graph(), 3);
  EXPECT_TRUE(s.AddTuple("E", {0, 1}));
  EXPECT_FALSE(s.AddTuple("E", {0, 1}));
  EXPECT_TRUE(s.relation(0).Contains({0, 1}));
}

TEST(StructureTest, TryAddTupleValidates) {
  Structure s(Signature::Graph(), 3);
  EXPECT_TRUE(s.TryAddTuple("E", {0, 2}).ok());
  EXPECT_EQ(s.TryAddTuple("F", {0, 1}).code(),
            StatusCode::kSignatureMismatch);
  EXPECT_EQ(s.TryAddTuple("E", {0, 1, 2}).code(),
            StatusCode::kInvalidArgument);
  EXPECT_EQ(s.TryAddTuple("E", {0, 3}).code(), StatusCode::kInvalidArgument);
}

TEST(StructureTest, Constants) {
  auto sig = std::make_shared<Signature>();
  sig->AddRelation("E", 2).AddConstant("c");
  Structure s(sig, 4);
  EXPECT_FALSE(s.constant(0).has_value());
  s.SetConstant(0, 2);
  EXPECT_EQ(*s.constant(0), 2u);
}

TEST(StructureTest, Equality) {
  Structure a(Signature::Graph(), 2);
  a.AddTuple(0, {0, 1});
  Structure b(Signature::Graph(), 2);
  b.AddTuple(0, {0, 1});
  EXPECT_TRUE(a == b);
  b.AddTuple(0, {1, 0});
  EXPECT_FALSE(a == b);
}

TEST(InducedSubstructureTest, KeepsInternalTuples) {
  Structure path = MakeDirectedPath(5);  // 0->1->2->3->4
  Structure sub = InducedSubstructure(path, {1, 2, 3});
  EXPECT_EQ(sub.domain_size(), 3u);
  // Edges 1->2 and 2->3 survive as 0->1, 1->2.
  EXPECT_EQ(sub.relation(0).size(), 2u);
  EXPECT_TRUE(sub.relation(0).Contains({0, 1}));
  EXPECT_TRUE(sub.relation(0).Contains({1, 2}));
}

TEST(InducedSubstructureTest, RenumbersByPosition) {
  Structure path = MakeDirectedPath(4);
  Structure sub = InducedSubstructure(path, {2, 1});  // reversed order
  // Edge 1->2 becomes 1->0 in the new numbering.
  EXPECT_TRUE(sub.relation(0).Contains({1, 0}));
  EXPECT_EQ(sub.relation(0).size(), 1u);
}

TEST(DisjointUnionTest, ShiftsSecondOperand) {
  Structure a = MakeDirectedCycle(3);
  Structure b = MakeDirectedCycle(4);
  Result<Structure> u = DisjointUnion(a, b);
  ASSERT_TRUE(u.ok());
  EXPECT_EQ(u->domain_size(), 7u);
  EXPECT_EQ(u->relation(0).size(), 7u);
  EXPECT_TRUE(u->relation(0).Contains({0, 1}));
  EXPECT_TRUE(u->relation(0).Contains({3, 4}));
  EXPECT_TRUE(u->relation(0).Contains({6, 3}));  // b's wrap edge shifted.
}

TEST(DisjointUnionTest, RejectsSignatureMismatch) {
  Result<Structure> u = DisjointUnion(MakeDirectedCycle(3), MakeLinearOrder(3));
  EXPECT_FALSE(u.ok());
  EXPECT_EQ(u.status().code(), StatusCode::kSignatureMismatch);
}

TEST(GeneratorsTest, LinearOrder) {
  Structure l = MakeLinearOrder(4);
  EXPECT_EQ(l.domain_size(), 4u);
  EXPECT_EQ(l.relation(0).size(), 6u);  // C(4,2)
  EXPECT_TRUE(l.relation(0).Contains({0, 3}));
  EXPECT_FALSE(l.relation(0).Contains({3, 0}));
  EXPECT_FALSE(l.relation(0).Contains({2, 2}));
}

TEST(GeneratorsTest, DirectedPathAndCycle) {
  EXPECT_EQ(MakeDirectedPath(5).relation(0).size(), 4u);
  EXPECT_EQ(MakeDirectedPath(1).relation(0).size(), 0u);
  EXPECT_EQ(MakeDirectedCycle(5).relation(0).size(), 5u);
  EXPECT_TRUE(MakeDirectedCycle(5).relation(0).Contains({4, 0}));
  // A 1-cycle is a loop.
  EXPECT_TRUE(MakeDirectedCycle(1).relation(0).Contains({0, 0}));
}

TEST(GeneratorsTest, DisjointCyclesAndPathPlusCycle) {
  Structure two = MakeDisjointCycles(2, 5);
  EXPECT_EQ(two.domain_size(), 10u);
  EXPECT_EQ(two.relation(0).size(), 10u);
  EXPECT_TRUE(two.relation(0).Contains({4, 0}));
  EXPECT_TRUE(two.relation(0).Contains({9, 5}));
  EXPECT_FALSE(two.relation(0).Contains({4, 5}));

  Structure pc = MakePathPlusCycle(4);
  EXPECT_EQ(pc.domain_size(), 8u);
  EXPECT_EQ(pc.relation(0).size(), 3u + 4u);
}

TEST(GeneratorsTest, CompleteAndEmpty) {
  EXPECT_EQ(MakeCompleteGraph(4).relation(0).size(), 12u);
  EXPECT_EQ(MakeEmptyGraph(4).relation(0).size(), 0u);
  EXPECT_EQ(MakeCompleteGraph(0).domain_size(), 0u);
}

TEST(GeneratorsTest, FullBinaryTree) {
  Structure t = MakeFullBinaryTree(3);
  EXPECT_EQ(t.domain_size(), 15u);
  EXPECT_EQ(t.relation(0).size(), 14u);  // n-1 edges.
  EXPECT_TRUE(t.relation(0).Contains({0, 1}));
  EXPECT_TRUE(t.relation(0).Contains({0, 2}));
  EXPECT_TRUE(t.relation(0).Contains({6, 14}));
}

TEST(GeneratorsTest, Grid) {
  Structure g = MakeGrid(3, 2);
  EXPECT_EQ(g.domain_size(), 6u);
  // Horizontal: 2 per row * 2 rows; vertical: 3.
  EXPECT_EQ(g.relation(0).size(), 7u);
}

TEST(GeneratorsTest, RandomGraphRespectsProbabilityExtremes) {
  std::mt19937_64 rng(1);
  EXPECT_EQ(MakeRandomGraph(6, 0.0, rng).relation(0).size(), 0u);
  EXPECT_EQ(MakeRandomGraph(6, 1.0, rng).relation(0).size(), 30u);
}

TEST(GeneratorsTest, RandomStructureCoversSignature) {
  auto sig = std::make_shared<Signature>();
  sig->AddRelation("R", 3).AddRelation("P", 1).AddConstant("c");
  std::mt19937_64 rng(7);
  Structure s = MakeRandomStructure(sig, 4, 1.0, rng);
  EXPECT_EQ(s.relation(0).size(), 64u);
  EXPECT_EQ(s.relation(1).size(), 4u);
  EXPECT_TRUE(s.constant(0).has_value());
}

TEST(GeneratorsTest, RandomStructureEmptyDomain) {
  std::mt19937_64 rng(7);
  Structure s = MakeRandomStructure(Signature::Graph(), 0, 0.5, rng);
  EXPECT_EQ(s.domain_size(), 0u);
  EXPECT_EQ(s.relation(0).size(), 0u);
}

TEST(GeneratorsTest, ZeroAryRelationRandom) {
  auto sig = std::make_shared<Signature>();
  sig->AddRelation("flag", 0);
  std::mt19937_64 rng(3);
  Structure s = MakeRandomStructure(sig, 3, 1.0, rng);
  EXPECT_TRUE(s.relation(0).Contains({}));
}

TEST(ColumnIndexTest, IncrementalMaintenanceAfterAdd) {
  Relation r(2);
  r.Add({3, 0});
  r.Add({1, 0});
  const Relation::ColumnIndex& index = r.column_index(0);
  EXPECT_EQ(index.indexed_upto, 2u);
  EXPECT_EQ(index.values, (std::vector<Element>{1, 3}));
  EXPECT_EQ(r.MatchesAt(0, 3), (std::vector<std::size_t>{0}));
  // Adds extend the existing index in place on the next sync — no rebuild.
  r.Add({2, 1});
  r.Add({3, 1});
  const Relation::ColumnIndex& resynced = r.column_index(0);
  EXPECT_EQ(&resynced, &index) << "index was rebuilt, not extended";
  EXPECT_EQ(index.indexed_upto, 4u);
  EXPECT_EQ(index.values, (std::vector<Element>{1, 2, 3}));
  EXPECT_EQ(r.MatchesAt(0, 3), (std::vector<std::size_t>{0, 3}));
  EXPECT_EQ(r.MatchesAt(0, 2), (std::vector<std::size_t>{2}));
  EXPECT_TRUE(r.MatchesAt(0, 9).empty());
}

TEST(ColumnIndexTest, StaleGenerationReadsConsistentPrefix) {
  Relation r(1);
  r.Add({5});
  const Relation::ColumnIndex& index = r.column_index(0);
  // Without an intervening sync, a held reference keeps describing the
  // prefix it was synced to (the Datalog engine's per-round freeze).
  r.Add({7});
  EXPECT_EQ(index.indexed_upto, 1u);
  EXPECT_EQ(index.values, (std::vector<Element>{5}));
  EXPECT_EQ(index.postings.Find(7), nullptr);
  (void)r.column_index(0);
  EXPECT_EQ(index.indexed_upto, 2u);
  ASSERT_NE(index.postings.Find(7), nullptr);
  EXPECT_EQ(*index.postings.Find(7), (std::vector<std::uint32_t>{1}));
}

TEST(ColumnIndexTest, DuplicateAddsDoNotGrowIndex) {
  Relation r(2);
  r.Add({0, 1});
  (void)r.column_index(1);
  r.Add({0, 1});  // Already present: no new posting on resync.
  EXPECT_EQ(r.MatchesAt(1, 1).size(), 1u);
  EXPECT_EQ(r.size(), 1u);
}

}  // namespace
}  // namespace fmtk
