#include <gtest/gtest.h>

#include <random>

#include "circuits/compile.h"
#include "core/zeroone/almost_sure.h"
#include "eval/model_check.h"
#include "eval/query_eval.h"
#include "logic/analysis.h"
#include "logic/parser.h"
#include "logic/transform.h"
#include "structures/generators.h"

namespace fmtk {
namespace {

TEST(CountingFormulaTest, FactoryAndAccessors) {
  Formula f = Formula::CountExists(3, "x", Formula::Atom("P", {V("x")}));
  EXPECT_EQ(f.kind(), FormulaKind::kCountExists);
  EXPECT_EQ(f.count(), 3u);
  EXPECT_EQ(f.variable(), "x");
  EXPECT_TRUE(f.is_quantifier());
  EXPECT_EQ(QuantifierRank(f), 1u);
  EXPECT_TRUE(FreeVariables(f).empty());
}

TEST(CountingFormulaTest, EqualityComparesCount) {
  Formula a = Formula::CountExists(2, "x", Formula::True());
  Formula b = Formula::CountExists(3, "x", Formula::True());
  Formula c = Formula::CountExists(2, "x", Formula::True());
  EXPECT_FALSE(a == b);
  EXPECT_TRUE(a == c);
}

TEST(CountingParserTest, RoundTrip) {
  Result<Formula> f = ParseFormula("atleast 3 x. E(x,x)");
  ASSERT_TRUE(f.ok()) << f.status().ToString();
  EXPECT_EQ(f->kind(), FormulaKind::kCountExists);
  EXPECT_EQ(f->count(), 3u);
  Result<Formula> again = ParseFormula(f->ToString());
  ASSERT_TRUE(again.ok()) << f->ToString();
  EXPECT_EQ(*f, *again);
}

TEST(CountingParserTest, ScopeExtendsRight) {
  Result<Formula> f = ParseFormula("atleast 2 x. P(x) & Q(x)");
  ASSERT_TRUE(f.ok());
  EXPECT_EQ(f->body().kind(), FormulaKind::kAnd);
  // Nested in a conjunction it gets parenthesized on print.
  Formula nested = Formula::And(*f, Formula::Atom("R", {}));
  Result<Formula> reparsed = ParseFormula(nested.ToString());
  ASSERT_TRUE(reparsed.ok()) << nested.ToString();
  EXPECT_EQ(nested, *reparsed);
}

TEST(CountingParserTest, Errors) {
  EXPECT_FALSE(ParseFormula("atleast x. P(x)").ok());
  EXPECT_FALSE(ParseFormula("atleast 0 x. P(x)").ok());
  EXPECT_FALSE(ParseFormula("atleast 2. P(x)").ok());
  EXPECT_FALSE(ParseFormula("atleast 2 x P(x)").ok());
}

TEST(CountingEvalTest, ThresholdSemantics) {
  // The 5-cycle has exactly 5 edges.
  Structure c = MakeDirectedCycle(5);
  EXPECT_TRUE(*Satisfies(c, *ParseFormula("atleast 5 x. exists y. E(x,y)")));
  EXPECT_FALSE(
      *Satisfies(c, *ParseFormula("atleast 6 x. exists y. E(x,y)")));
  // λ_n via counting: rank drops from n to 1.
  Formula at_least_4 = *ParseFormula("atleast 4 x. true");
  EXPECT_EQ(QuantifierRank(at_least_4), 1u);
  EXPECT_TRUE(*Satisfies(MakeSet(4), at_least_4));
  EXPECT_FALSE(*Satisfies(MakeSet(3), at_least_4));
}

TEST(CountingEvalTest, CountOneEqualsExists) {
  std::mt19937_64 rng(3);
  Formula counted = *ParseFormula("atleast 1 x. E(x,x)");
  Formula plain = *ParseFormula("exists x. E(x,x)");
  for (int i = 0; i < 10; ++i) {
    Structure g = MakeRandomStructure(Signature::Graph(), 4, 0.3, rng);
    EXPECT_EQ(*Satisfies(g, counted), *Satisfies(g, plain));
  }
}

TEST(CountingEvalTest, FreeVariablesInBody) {
  // "x has at least 2 out-neighbors": true for the root of a binary tree.
  Structure tree = MakeFullBinaryTree(2);
  Formula f = *ParseFormula("atleast 2 y. E(x,y)");
  EXPECT_TRUE(*Satisfies(tree, f, {{"x", 0}}));
  EXPECT_FALSE(*Satisfies(tree, f, {{"x", 3}}));  // A leaf.
}

TEST(CountingQueryEvalTest, BottomUpMatchesNaive) {
  std::mt19937_64 rng(17);
  const char* queries[] = {
      "atleast 2 y. E(x,y)",
      "atleast 2 y. E(x,y) | E(y,x)",
      "atleast 3 x. E(x,y)",
      "!(atleast 2 y. E(x,y))",
  };
  for (const char* text : queries) {
    Formula f = *ParseFormula(text);
    std::set<std::string> free = FreeVariables(f);
    std::vector<std::string> vars(free.begin(), free.end());
    for (int trial = 0; trial < 6; ++trial) {
      Structure g = MakeRandomGraph(5, 0.4, rng);
      Result<Relation> fast = EvaluateQuery(g, f, vars);
      Result<Relation> slow = EvaluateQueryNaive(g, f, vars);
      ASSERT_TRUE(fast.ok() && slow.ok()) << text;
      EXPECT_TRUE(*fast == *slow) << text;
    }
  }
}

TEST(CountingQueryEvalTest, VacuousCountingVariable) {
  // x not free in the body: at least k domain elements must exist.
  Structure s = MakeDirectedPath(3);
  Formula f = *ParseFormula("atleast 3 z. E(x,y)");
  Result<Relation> ans = EvaluateQuery(s, f, {"x", "y"});
  ASSERT_TRUE(ans.ok());
  EXPECT_EQ(ans->size(), 2u);  // Same as E(x,y): domain has >= 3 elements.
  Formula g = *ParseFormula("atleast 4 z. E(x,y)");
  Result<Relation> none = EvaluateQuery(s, g, {"x", "y"});
  ASSERT_TRUE(none.ok());
  EXPECT_TRUE(none->empty());
}

TEST(CountingTransformTest, NnfKeepsNegationOutside) {
  Formula f = *ParseFormula("!(atleast 2 x. P(x) -> Q(x))");
  Formula nnf = NegationNormalForm(f);
  EXPECT_EQ(nnf.kind(), FormulaKind::kNot);
  EXPECT_EQ(nnf.child(0).kind(), FormulaKind::kCountExists);
  // The body was normalized (no implications left).
  EXPECT_EQ(nnf.child(0).body().kind(), FormulaKind::kOr);
}

TEST(CountingTransformTest, NnfPreservesMeaning) {
  std::mt19937_64 rng(23);
  Formula f = *ParseFormula("!(atleast 2 x. exists y. E(x,y) -> E(y,x))");
  Formula nnf = NegationNormalForm(f);
  for (int i = 0; i < 8; ++i) {
    Structure g = MakeRandomGraph(4, 0.4, rng);
    EXPECT_EQ(*Satisfies(g, f), *Satisfies(g, nnf));
  }
}

TEST(CountingTransformTest, SubstitutionAndRenaming) {
  Formula f = *ParseFormula("atleast 2 y. E(x,y)");
  Formula g = SubstituteVariable(f, "x", Term::Var("z"));
  EXPECT_EQ(g, *ParseFormula("atleast 2 y. E(z,y)"));
  // Capture avoidance.
  Formula h = SubstituteVariable(f, "x", Term::Var("y"));
  EXPECT_EQ(h.kind(), FormulaKind::kCountExists);
  EXPECT_NE(h.variable(), "y");
  EXPECT_EQ(h.count(), 2u);
}

TEST(CountingCircuitTest, Unsupported) {
  Result<Circuit> c = CompileSentence(*ParseFormula("atleast 2 x. E(x,x)"),
                                      *Signature::Graph(), 3);
  EXPECT_FALSE(c.ok());
  EXPECT_EQ(c.status().code(), StatusCode::kUnsupported);
}

TEST(CountingAlmostSureTest, FreshTypesGiveInfinitelyManyWitnesses) {
  // "At least 5 loops" is almost surely true (loops keep appearing).
  EXPECT_TRUE(*AlmostSurelyTrue(*ParseFormula("atleast 5 x. E(x,x)")));
  // "At least 2 elements equal to x" is always false.
  EXPECT_FALSE(*AlmostSurelyTrue(
      *ParseFormula("exists x. atleast 2 y. y = x")));
  // "At least 1 element" is trivially true in the infinite random graph.
  EXPECT_TRUE(*AlmostSurelyTrue(*ParseFormula("atleast 1 x. true")));
}

TEST(CountingAlmostSureTest, NamedWitnessesCounted) {
  // ∃x∃y (x≠y ∧ at least 2 z with z=x or z=y): exactly the two named
  // points witness, so the count threshold 2 passes and 3 fails.
  EXPECT_TRUE(*AlmostSurelyTrue(
      *ParseFormula("exists x y. x != y & (atleast 2 z. z = x | z = y)")));
  EXPECT_FALSE(*AlmostSurelyTrue(
      *ParseFormula("exists x y. x != y & (atleast 3 z. z = x | z = y)")));
}

}  // namespace
}  // namespace fmtk
