// Coverage for introspection and bookkeeping surfaces not exercised by the
// main behavioural suites.

#include <gtest/gtest.h>

#include "core/games/linear_order.h"
#include "core/locality/neighborhood.h"
#include "core/types/atom_enumeration.h"
#include "core/types/rank_type.h"
#include "structures/generators.h"
#include "structures/graph.h"
#include "structures/io.h"

namespace fmtk {
namespace {

TEST(RankTypeIntrospectionTest, AtomicAndCompositeInfo) {
  RankTypeIndex index;
  Structure p = MakeDirectedPath(3);
  RankTypeIndex::TypeId atomic = index.TypeOf(p, {0, 1}, 0);
  ASSERT_TRUE(index.IsAtomic(atomic));
  const RankTypeIndex::AtomicInfo& info = index.atomic_info(atomic);
  EXPECT_EQ(info.tuple_length, 2u);
  // Graph signature, extended length 2: 4 relation slots + 1 equality.
  EXPECT_EQ(info.bits.size(), 5u);

  RankTypeIndex::TypeId composite = index.TypeOf(p, {0}, 2);
  ASSERT_FALSE(index.IsAtomic(composite));
  const RankTypeIndex::CompositeInfo& cinfo =
      index.composite_info(composite);
  EXPECT_EQ(cinfo.rank, 2u);
  EXPECT_GE(cinfo.extensions.size(), 2u);
  EXPECT_TRUE(index.IsAtomic(cinfo.atomic));
  EXPECT_GT(index.size(), 0u);
}

TEST(AtomEnumerationTest, SlotLayout) {
  Signature sig;
  sig.AddRelation("E", 2).AddRelation("P", 1).AddRelation("flag", 0);
  std::vector<AtomSlot> slots = EnumerateAtomSlots(sig, 2);
  // E: 4 position pairs; P: 2 positions; flag: 1; equalities: 1.
  EXPECT_EQ(slots.size(), 4u + 2u + 1u + 1u);
  EXPECT_EQ(slots[0].kind, AtomSlot::Kind::kRelation);
  EXPECT_EQ(slots.back().kind, AtomSlot::Kind::kEquality);
  // Zero extended length: only 0-ary relation slots survive.
  std::vector<AtomSlot> empty_slots = EnumerateAtomSlots(sig, 0);
  EXPECT_EQ(empty_slots.size(), 1u);
}

TEST(LinearOrderGameTableTest, MemoGrowsAndIsReused) {
  LinearOrderGameTable table;
  EXPECT_EQ(table.memo_size(), 0u);
  EXPECT_TRUE(table.Equivalent(7, 8, 3));
  const std::size_t after_first = table.memo_size();
  EXPECT_GT(after_first, 0u);
  // Re-asking reuses the memo without growth.
  EXPECT_TRUE(table.Equivalent(7, 8, 3));
  EXPECT_EQ(table.memo_size(), after_first);
  // A smaller query is largely contained in the memo already.
  EXPECT_FALSE(table.Equivalent(5, 6, 3));
}

TEST(NeighborhoodRepresentativeTest, StableAcrossGrowth) {
  // Representatives must stay valid as the index's buckets grow.
  NeighborhoodTypeIndex index;
  std::vector<NeighborhoodTypeIndex::TypeId> ids;
  for (std::size_t n : {3, 4, 5, 6, 7}) {
    Structure c = MakeDirectedCycle(n);
    Adjacency g = GaifmanAdjacency(c);
    ids.push_back(index.TypeOf(NeighborhoodOf(c, g, {0}, n / 2)));
  }
  for (NeighborhoodTypeIndex::TypeId id : ids) {
    // Round-trip: the representative's own type is itself.
    EXPECT_EQ(index.TypeOf(index.representative(id)), id);
  }
}

TEST(SerializeTest, UninterpretedConstantBecomesComment) {
  auto sig = std::make_shared<Signature>();
  sig->AddRelation("E", 2).AddConstant("c");
  Structure s(sig, 2);
  std::string text = SerializeStructure(s);
  EXPECT_NE(text.find("# constant c is uninterpreted"), std::string::npos);
  // Re-parsing drops the constant (documented behaviour).
  Result<Structure> back = ParseStructure(text);
  ASSERT_TRUE(back.ok());
  EXPECT_EQ(back->signature().constant_count(), 0u);
}

TEST(DegreeSetTest, RelationOverloadMatchesStructureOverload) {
  Structure tree = MakeFullBinaryTree(3);
  EXPECT_EQ(DegreeSet(tree, 0),
            DegreeSet(tree.relation(0), tree.domain_size()));
}

TEST(StructureToStringTest, MentionsEverything) {
  auto sig = std::make_shared<Signature>();
  sig->AddRelation("E", 2).AddConstant("c");
  Structure s(sig, 2);
  s.AddTuple(0, {0, 1});
  std::string text = s.ToString();
  EXPECT_NE(text.find("|A|=2"), std::string::npos);
  EXPECT_NE(text.find("(0,1)"), std::string::npos);
  EXPECT_NE(text.find("c = unset"), std::string::npos);
  s.SetConstant(0, 1);
  EXPECT_NE(s.ToString().find("c = 1"), std::string::npos);
}

}  // namespace
}  // namespace fmtk
