#include <gtest/gtest.h>

#include <memory>
#include <random>
#include <string>
#include <vector>

#include "eval/compiled_eval.h"
#include "eval/model_check.h"
#include "logic/analysis.h"
#include "logic/parser.h"
#include "logic/random_formula.h"
#include "structures/generators.h"

namespace fmtk {
namespace {

Formula Parse(const char* text) {
  Result<Formula> f = ParseFormula(text);
  EXPECT_TRUE(f.ok()) << text << ": " << f.status().ToString();
  return *f;
}

// Runs compile + evaluate, folding compile-time errors into the result so
// the two pipelines can be compared end to end.
Result<bool> CompiledVerdict(const Structure& s, const Formula& f,
                             const VarAssignment& assignment,
                             ParallelPolicy policy = {}) {
  Result<CompiledEvaluator> eval = CompiledEvaluator::Compile(s, f, policy);
  if (!eval.ok()) {
    return eval.status();
  }
  return eval->Evaluate(assignment);
}

TEST(CompiledEvalTest, BasicSentences) {
  Structure p = MakeDirectedPath(3);
  EXPECT_TRUE(*CompiledVerdict(p, Parse("exists x y. E(x,y)"), {}));
  EXPECT_FALSE(*CompiledVerdict(p, Parse("exists x. E(x,x)"), {}));
  EXPECT_TRUE(
      *CompiledVerdict(p, Parse("forall x y. E(x,y) -> !E(y,x)"), {}));
  Structure empty = MakeEmptyGraph(0);
  EXPECT_FALSE(*CompiledVerdict(empty, Parse("exists x. true"), {}));
  EXPECT_TRUE(*CompiledVerdict(empty, Parse("forall x. false"), {}));
}

TEST(CompiledEvalTest, FreeVariablesAndShadowing) {
  Structure p = MakeDirectedPath(4);
  Formula f = Parse("E(x,y)");
  EXPECT_TRUE(*CompiledVerdict(p, f, {{"x", 0}, {"y", 1}}));
  EXPECT_FALSE(*CompiledVerdict(p, f, {{"x", 1}, {"y", 0}}));
  Result<bool> unbound = CompiledVerdict(p, f, {{"x", 0}});
  EXPECT_FALSE(unbound.ok());
  EXPECT_EQ(unbound.status().code(), StatusCode::kInvalidArgument);
  Formula shadow = Parse("(exists x. E(x,x)) | E(x,y)");
  EXPECT_TRUE(*CompiledVerdict(p, shadow, {{"x", 0}, {"y", 1}}));
}

TEST(CompiledEvalTest, ErrorClassificationMatchesInterpreter) {
  Structure p = MakeDirectedPath(3);
  Result<bool> unknown_rel = CompiledVerdict(p, Parse("exists x. F(x,x)"), {});
  EXPECT_FALSE(unknown_rel.ok());
  EXPECT_EQ(unknown_rel.status().code(), StatusCode::kSignatureMismatch);

  auto sig = std::make_shared<Signature>();
  sig->AddRelation("E", 2).AddConstant("c");
  Structure s(sig, 2);
  Result<bool> uninterpreted =
      CompiledVerdict(s, Parse("exists x. E(x,c)"), {});
  EXPECT_FALSE(uninterpreted.ok());
  EXPECT_EQ(uninterpreted.status().code(), StatusCode::kInvalidArgument);
}

TEST(CompiledEvalTest, BindRejectsForeignSignature) {
  Structure p = MakeDirectedPath(3);
  Result<CompiledFormula> plan =
      CompiledFormula::Compile(Parse("exists x. E(x,x)"), p.signature());
  ASSERT_TRUE(plan.ok());
  auto other = std::make_shared<Signature>();
  other->AddRelation("R", 1);
  Structure foreign(other, 3);
  Result<CompiledEvaluator> bound = CompiledEvaluator::Bind(*plan, foreign);
  EXPECT_FALSE(bound.ok());
  EXPECT_EQ(bound.status().code(), StatusCode::kSignatureMismatch);
}

TEST(CompiledEvalTest, QuantifierPruningUsesPostingLists) {
  // One edge in a large domain: ∃x∃y E(x,y) should instantiate the inner
  // quantifier from E's second column, not the 100-element domain.
  Structure g = MakeEmptyGraph(100);
  g.AddTuple(0u, {7, 9});
  Result<CompiledEvaluator> eval =
      CompiledEvaluator::Compile(g, Parse("exists x y. E(x,y)"));
  ASSERT_TRUE(eval.ok());
  EXPECT_TRUE(*eval->Evaluate());
  EXPECT_GE(eval->stats().index_hits, 1u);
  // The inner loop saw only column values, so total instantiations stay far
  // below the 100 + 100*100 of a full scan.
  EXPECT_LE(eval->stats().quantifier_instantiations, 100u + 2u);

  // Universal guard form: ∀x (E(x,x) -> false) only visits elements that
  // occur in E's first column — just 7, from the single edge (7,9).
  Result<CompiledEvaluator> forall =
      CompiledEvaluator::Compile(g, Parse("forall x. E(x,x) -> false"));
  ASSERT_TRUE(forall.ok());
  EXPECT_TRUE(*forall->Evaluate());
  EXPECT_GE(forall->stats().index_hits, 1u);
  EXPECT_EQ(forall->stats().quantifier_instantiations, 1u);
}

TEST(CompiledEvalTest, PruningKeepsVerdictsOnSparseRelations) {
  std::mt19937_64 rng(11);
  const char* sentences[] = {
      "exists x. exists y. E(x,y) & !E(y,x)",
      "forall x. E(x,x) -> (exists y. E(x,y) & x != y)",
      "exists x. E(x,x)",
      "forall x. forall y. E(x,y) -> E(y,x)",
  };
  for (int trial = 0; trial < 10; ++trial) {
    Structure g = MakeRandomGraph(12, 0.05, rng);
    for (const char* text : sentences) {
      Formula f = Parse(text);
      ModelChecker oracle(g);
      Result<bool> expected = oracle.Check(f);
      Result<bool> actual = CompiledVerdict(g, f, {});
      ASSERT_TRUE(expected.ok() && actual.ok());
      EXPECT_EQ(*expected, *actual) << text;
    }
  }
}

TEST(CompiledEvalTest, ParallelPolicyMatchesSequential) {
  ParallelPolicy parallel;
  parallel.enabled = true;
  parallel.num_threads = 4;
  parallel.min_domain = 8;
  std::mt19937_64 rng(3);
  const char* sentences[] = {
      "forall x. exists y. E(x,y)",
      "exists x. forall y. E(x,y) | x = y",
      "forall x y. E(x,y) -> E(y,x)",
      "exists x. E(x,x)",
  };
  for (int trial = 0; trial < 5; ++trial) {
    Structure g = MakeRandomGraph(60, 0.1, rng);
    for (const char* text : sentences) {
      Formula f = Parse(text);
      Result<bool> sequential = CompiledVerdict(g, f, {});
      Result<bool> fanned = CompiledVerdict(g, f, {}, parallel);
      ASSERT_TRUE(sequential.ok() && fanned.ok()) << text;
      EXPECT_EQ(*sequential, *fanned) << text;
    }
  }
}

TEST(CompiledEvalTest, ParallelPolicyPropagatesErrors) {
  auto sig = std::make_shared<Signature>();
  sig->AddRelation("E", 2).AddConstant("c");
  Structure s(sig, 64);  // Constant left uninterpreted.
  ParallelPolicy parallel;
  parallel.enabled = true;
  parallel.num_threads = 4;
  parallel.min_domain = 8;
  Result<bool> r =
      CompiledVerdict(s, Parse("forall x. E(x,c)"), {}, parallel);
  EXPECT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), StatusCode::kInvalidArgument);
}

// The PR's acceptance gate: the compiled evaluator and the interpreting
// ModelChecker agree — same verdict, or same error classification — on
// hundreds of random formula/structure pairs, including open formulas with
// partially unbound assignments and uninterpreted constants.
TEST(CompiledDifferentialTest, AgreesWithInterpreterOn500RandomPairs) {
  auto sig = std::make_shared<Signature>();
  sig->AddRelation("E", 2).AddRelation("P", 1).AddRelation("T", 3);
  sig->AddRelation("Q", 0);
  sig->AddConstant("c");

  std::mt19937_64 rng(20260807);
  RandomFormulaOptions options;
  options.max_depth = 5;
  options.variable_pool = 3;
  options.counting = true;

  std::bernoulli_distribution drop_constants(0.3);
  std::bernoulli_distribution add_constant_atom(0.35);
  std::bernoulli_distribution quantify(0.5);
  std::bernoulli_distribution bind_var(0.85);
  std::uniform_int_distribution<std::size_t> pick_n(0, 5);

  std::size_t pairs = 0;
  std::size_t error_pairs = 0;
  while (pairs < 500) {
    const std::size_t n = pick_n(rng);
    Structure s = MakeRandomStructure(sig, n, 0.4, rng);
    if (drop_constants(rng)) {
      // Rebuild without constant interpretations to hit the lazy
      // "uninterpreted constant" error path.
      Structure bare(sig, n);
      for (std::size_t r = 0; r < sig->relation_count(); ++r) {
        for (const Tuple& t : s.relation(r).tuples()) {
          bare.AddTuple(r, t);
        }
      }
      s = std::move(bare);
    }

    Formula f = quantify(rng) ? MakeRandomSentence(*sig, options, rng)
                              : MakeRandomFormula(*sig, options, rng);
    if (add_constant_atom(rng)) {
      f = Formula::And(Formula::Atom("P", {C("c")}), std::move(f));
    }

    VarAssignment assignment;
    for (const std::string& v : FreeVariables(f)) {
      if (bind_var(rng)) {
        assignment[v] =
            n == 0 ? 0
                   : std::uniform_int_distribution<Element>(
                         0, static_cast<Element>(n - 1))(rng);
      }
    }

    ModelChecker oracle(s);
    Result<bool> expected = oracle.Check(f, assignment);
    Result<bool> actual = CompiledVerdict(s, f, assignment);

    ASSERT_EQ(expected.ok(), actual.ok())
        << f.ToString() << "\nn=" << n
        << "\ninterpreter: " << expected.status().ToString()
        << "\ncompiled:    " << actual.status().ToString();
    if (expected.ok()) {
      ASSERT_EQ(*expected, *actual) << f.ToString() << "\nn=" << n;
    } else {
      ASSERT_EQ(expected.status().code(), actual.status().code())
          << f.ToString() << "\ninterpreter: "
          << expected.status().ToString()
          << "\ncompiled:    " << actual.status().ToString();
      ++error_pairs;
    }
    ++pairs;
  }
  // The sweep must actually exercise the error paths, not just verdicts.
  EXPECT_GE(error_pairs, 10u);
}

// Unknown symbols classify identically through both pipelines.
TEST(CompiledDifferentialTest, UnknownSymbolClassification) {
  Structure p = MakeDirectedPath(4);
  const Formula cases[] = {
      Parse("exists x. Missing(x)"),
      Parse("forall x. E(x,x,x)"),  // Arity mismatch.
      Formula::Equal(C("ghost"), V("x")),
  };
  for (const Formula& f : cases) {
    ModelChecker oracle(p);
    Result<bool> expected = oracle.Check(f, {{"x", 0}});
    Result<bool> actual = CompiledVerdict(p, f, {{"x", 0}});
    ASSERT_FALSE(expected.ok()) << f.ToString();
    ASSERT_FALSE(actual.ok()) << f.ToString();
    EXPECT_EQ(expected.status().code(), actual.status().code())
        << f.ToString();
    EXPECT_EQ(actual.status().code(), StatusCode::kSignatureMismatch)
        << f.ToString();
  }
}

TEST(CompiledEvalTest, EvaluateRowFastPath) {
  Structure p = MakeDirectedPath(4);
  Result<CompiledEvaluator> eval =
      CompiledEvaluator::Compile(p, Parse("E(x,y)"));
  ASSERT_TRUE(eval.ok());
  ASSERT_EQ(eval->free_variables(), (std::vector<std::string>{"x", "y"}));
  EXPECT_TRUE(*eval->EvaluateRow({0, 1}));
  EXPECT_FALSE(*eval->EvaluateRow({1, 0}));
}

TEST(CompiledEvalTest, StatsCountShortCircuitsAndPrint) {
  Structure p = MakeDirectedPath(3);
  Result<CompiledEvaluator> eval = CompiledEvaluator::Compile(
      p, Parse("forall x. E(x,x) & true | !E(x,x)"));
  ASSERT_TRUE(eval.ok());
  ASSERT_TRUE(eval->Evaluate().ok());
  EXPECT_GE(eval->stats().short_circuits, 1u);
  const std::string text = eval->stats().ToString();
  EXPECT_NE(text.find("node_visits="), std::string::npos);
  EXPECT_NE(text.find("short_circuits="), std::string::npos);
  EXPECT_NE(text.find("index_hits="), std::string::npos);
  eval->ResetStats();
  EXPECT_EQ(eval->stats().node_visits, 0u);
}

}  // namespace
}  // namespace fmtk
