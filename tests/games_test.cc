#include <gtest/gtest.h>

#include <random>

#include "core/games/ef_game.h"
#include "core/games/linear_order.h"
#include "core/games/pebble_game.h"
#include "core/types/rank_type.h"
#include "structures/generators.h"

namespace fmtk {
namespace {

bool DupWins(const Structure& a, const Structure& b, std::size_t rounds) {
  EfGameSolver solver(a, b);
  Result<bool> r = solver.DuplicatorWins(rounds);
  EXPECT_TRUE(r.ok()) << r.status().ToString();
  return *r;
}

bool PebbleDupWins(const Structure& a, const Structure& b,
                   std::size_t pebbles, std::size_t rounds) {
  PebbleGameSolver solver(a, b, pebbles);
  Result<bool> r = solver.DuplicatorWins(rounds);
  EXPECT_TRUE(r.ok()) << r.status().ToString();
  return *r;
}

// --- The survey's EVEN-on-sets example (E4) -------------------------------

TEST(EfGameTest, SetsOfSizeAtLeastNAreNEquivalent) {
  // "In the n-round game on any two sets with at least n elements, the
  // duplicator has a very simple winning strategy."
  for (std::size_t n = 0; n <= 3; ++n) {
    for (std::size_t s1 = n; s1 <= n + 3; ++s1) {
      for (std::size_t s2 = n; s2 <= n + 3; ++s2) {
        EXPECT_TRUE(DupWins(MakeSet(s1), MakeSet(s2), n))
            << "sets " << s1 << "," << s2 << " rounds " << n;
      }
    }
  }
}

TEST(EfGameTest, SpoilerWinsOnSmallSets) {
  // Sets of sizes 2 and 3: spoiler wins in 3 rounds (pick 3 distinct
  // elements in the larger set) but not 2.
  EXPECT_TRUE(DupWins(MakeSet(2), MakeSet(3), 2));
  EXPECT_FALSE(DupWins(MakeSet(2), MakeSet(3), 3));
}

TEST(EfGameTest, EvenWitnessFamily) {
  // A_n = 2n-element set, B_n = (2n+1)-element set, A_n ≡n B_n.
  for (std::size_t n = 1; n <= 3; ++n) {
    EXPECT_TRUE(DupWins(MakeSet(2 * n), MakeSet(2 * n + 1), n));
  }
}

TEST(EfGameTest, ZeroRoundsIsAlwaysDuplicatorWinWithoutConstants) {
  EXPECT_TRUE(DupWins(MakeDirectedPath(2), MakeDirectedCycle(7), 0));
}

TEST(EfGameTest, EmptyVsNonemptyStructure) {
  EXPECT_TRUE(DupWins(MakeSet(0), MakeSet(1), 0));
  EXPECT_FALSE(DupWins(MakeSet(0), MakeSet(1), 1));
  EXPECT_TRUE(DupWins(MakeSet(0), MakeSet(0), 5));
}

TEST(EfGameTest, GraphsDistinguishedByLoop) {
  // One loop vs no edges: spoiler wins in one round.
  Structure loop = MakeDirectedCycle(1);
  Structure empty = MakeEmptyGraph(1);
  EXPECT_FALSE(DupWins(loop, empty, 1));
  EXPECT_TRUE(DupWins(loop, empty, 0));
}

TEST(EfGameTest, PathsOfDifferentParitySmall) {
  // Small paths: 2-path vs 3-path distinguished in few rounds.
  Structure a = MakeDirectedPath(2);
  Structure b = MakeDirectedPath(3);
  EfGameSolver solver(a, b);
  Result<std::optional<std::size_t>> needed = solver.SpoilerNeeds(4);
  ASSERT_TRUE(needed.ok());
  ASSERT_TRUE(needed->has_value());
  EXPECT_GE(**needed, 2u);
  EXPECT_LE(**needed, 3u);
}

TEST(EfGameTest, InitialPositionConstrains) {
  // On the 4-path, starting with endpoint pinned to a middle point is
  // already lost for the duplicator at 1 round (degrees differ at rank 1).
  Structure p = MakeDirectedPath(4);
  EfGameSolver solver(p, p);
  EXPECT_TRUE(*solver.DuplicatorWins(1, {{0, 0}}));
  EXPECT_FALSE(*solver.DuplicatorWins(1, {{0, 1}}));
}

TEST(EfGameTest, ConstantsSeedThePosition) {
  auto sig = std::make_shared<Signature>();
  sig->AddRelation("E", 2).AddConstant("c");
  Structure a(sig, 2);
  a.AddTuple(0, {0, 1});
  a.SetConstant(0, 0);  // c = edge source.
  Structure b(sig, 2);
  b.AddTuple(0, {0, 1});
  b.SetConstant(0, 1);  // c = edge target.
  // Even with zero rounds the constant pair breaks: c has an out-edge in a,
  // none in b — visible at round 1; at round 0 the single pair (0,1) is
  // fine... actually E(c,·): need second element. Round 1 breaks it.
  EfGameSolver solver(a, b);
  EXPECT_TRUE(*solver.DuplicatorWins(0));
  EXPECT_FALSE(*solver.DuplicatorWins(1));
}

TEST(EfGameTest, MismatchedConstantInterpretation) {
  auto sig = std::make_shared<Signature>();
  sig->AddRelation("E", 2).AddConstant("c");
  Structure a(sig, 2);
  a.SetConstant(0, 0);
  Structure b(sig, 2);  // c uninterpreted.
  EfGameSolver solver(a, b);
  EXPECT_FALSE(*solver.DuplicatorWins(0));
}

TEST(EfGameTest, NodeCapReturnsResourceExhausted) {
  EfOptions options;
  options.max_nodes = 10;
  Structure a = MakeDirectedCycle(6);
  Structure b = MakeDirectedCycle(7);
  EfGameSolver solver(a, b, options);
  Result<bool> r = solver.DuplicatorWins(4);
  EXPECT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), StatusCode::kResourceExhausted);
}

TEST(EfGameTest, AdversarialPlayEndsInBrokenPositionWhenSpoilerWins) {
  Structure a = MakeSet(2);
  Structure b = MakeSet(3);
  EfGameSolver solver(a, b);
  Result<std::vector<EfGameSolver::PlayStep>> play =
      solver.AdversarialPlay(3);
  ASSERT_TRUE(play.ok());
  ASSERT_EQ(play->size(), 3u);
  // Spoiler plays in the bigger set (B) each time; the duplicator's third
  // response must collide (sets of size 2 cannot host 3 distinct points).
  PartialMap position;
  for (const auto& step : *play) {
    ASSERT_TRUE(step.duplicator.has_value());
    position.emplace_back(step.spoiler_in_a ? step.spoiler : *step.duplicator,
                          step.spoiler_in_a ? *step.duplicator : step.spoiler);
  }
  EXPECT_FALSE(IsPartialIsomorphism(MakeSet(2), MakeSet(3), position));
}

TEST(EfGameTest, AdversarialPlaySurvivesWhenDuplicatorWins) {
  Structure a = MakeSet(4);
  Structure b = MakeSet(5);
  EfGameSolver solver(a, b);
  Result<std::vector<EfGameSolver::PlayStep>> play =
      solver.AdversarialPlay(3);
  ASSERT_TRUE(play.ok());
  PartialMap position;
  for (const auto& step : *play) {
    ASSERT_TRUE(step.duplicator.has_value());
    position.emplace_back(step.spoiler_in_a ? step.spoiler : *step.duplicator,
                          step.spoiler_in_a ? *step.duplicator : step.spoiler);
  }
  EXPECT_TRUE(IsPartialIsomorphism(a, b, position));
}

// --- Rank types and the fundamental theorem -------------------------------

TEST(RankTypeTest, AtomicTypesSeparateTuples) {
  RankTypeIndex index;
  Structure p = MakeDirectedPath(3);
  EXPECT_EQ(index.TypeOf(p, {0, 1}, 0), index.TypeOf(p, {1, 2}, 0));
  EXPECT_NE(index.TypeOf(p, {0, 1}, 0), index.TypeOf(p, {1, 0}, 0));
  EXPECT_NE(index.TypeOf(p, {0, 0}, 0), index.TypeOf(p, {0, 1}, 0));
}

TEST(RankTypeTest, RankRefinesTypes) {
  RankTypeIndex index;
  Structure p = MakeDirectedPath(3);  // 0->1->2
  // Endpoints 0 and 2 have equal atomic type (no loops) but differ at
  // rank 1 (0 has an out-neighbor, 2 does not... both have one neighbor;
  // 0's is outgoing, 2's is incoming).
  EXPECT_NE(index.TypeOf(p, {0}, 1), index.TypeOf(p, {2}, 1));
  EXPECT_EQ(index.TypeOf(p, {0}, 0), index.TypeOf(p, {2}, 0));
}

TEST(RankTypeTest, EquivalenceMatchesGameSolver) {
  // The fundamental theorem, cross-validated: τ_n equality == game value,
  // on a panel of small structure pairs.
  std::vector<std::pair<Structure, Structure>> pairs;
  pairs.emplace_back(MakeSet(2), MakeSet(3));
  pairs.emplace_back(MakeSet(4), MakeSet(5));
  pairs.emplace_back(MakeDirectedPath(3), MakeDirectedPath(4));
  pairs.emplace_back(MakeDirectedCycle(3), MakeDirectedCycle(4));
  pairs.emplace_back(MakeDirectedCycle(4), MakeDisjointCycles(2, 2));
  pairs.emplace_back(MakeLinearOrder(3), MakeLinearOrder(4));
  pairs.emplace_back(MakeEmptyGraph(3), MakeCompleteGraph(3));
  std::mt19937_64 rng(11);
  for (int i = 0; i < 3; ++i) {
    pairs.emplace_back(MakeRandomGraph(3, 0.4, rng),
                       MakeRandomGraph(3, 0.4, rng));
  }
  RankTypeIndex index;
  for (const auto& [a, b] : pairs) {
    EfGameSolver solver(a, b);
    for (std::size_t n = 0; n <= 3; ++n) {
      Result<bool> game = solver.DuplicatorWins(n);
      ASSERT_TRUE(game.ok()) << game.status().ToString();
      EXPECT_EQ(*game, index.EquivalentUpToRank(a, b, n))
          << "n=" << n << "\nA: " << a.ToString() << "\nB: " << b.ToString();
    }
  }
}

TEST(RankTypeTest, DistinguishingRank) {
  RankTypeIndex index;
  // Sets 2 vs 3 are distinguished exactly at rank 3.
  std::optional<std::size_t> r =
      index.DistinguishingRank(MakeSet(2), MakeSet(3), 5);
  ASSERT_TRUE(r.has_value());
  EXPECT_EQ(*r, 3u);
  // A structure is equivalent to itself at every rank.
  EXPECT_FALSE(
      index.DistinguishingRank(MakeDirectedCycle(4), MakeDirectedCycle(4), 4)
          .has_value());
}

TEST(RankTypeTest, SignatureMismatchNotEquivalent) {
  RankTypeIndex index;
  EXPECT_FALSE(
      index.EquivalentUpToRank(MakeLinearOrder(2), MakeDirectedPath(2), 1));
}

// --- Linear orders: Theorem 3.1 (E5) --------------------------------------

TEST(LinearOrderTest, ClosedFormMatchesCompositionDP) {
  for (std::size_t n = 0; n <= 4; ++n) {
    for (std::size_t m = 0; m <= 20; ++m) {
      for (std::size_t k = 0; k <= 20; ++k) {
        EXPECT_EQ(LinearOrdersEquivalent(m, k, n),
                  LinearOrdersEquivalentByComposition(m, k, n))
            << "m=" << m << " k=" << k << " n=" << n;
      }
    }
  }
}

TEST(LinearOrderTest, CompositionMatchesGameSolverOnSmallOrders) {
  for (std::size_t n = 0; n <= 3; ++n) {
    for (std::size_t m = 0; m <= 7; ++m) {
      for (std::size_t k = m; k <= 7; ++k) {
        EXPECT_EQ(DupWins(MakeLinearOrder(m), MakeLinearOrder(k), n),
                  LinearOrdersEquivalentByComposition(m, k, n))
            << "m=" << m << " k=" << k << " n=" << n;
      }
    }
  }
}

TEST(LinearOrderTest, TheoremThresholds) {
  // L_m ≡n L_k for m,k >= 2^n (the survey's statement; the sharp bound is
  // 2^n - 1).
  EXPECT_TRUE(LinearOrdersEquivalent(8, 9, 3));
  EXPECT_TRUE(LinearOrdersEquivalent(7, 100, 3));   // Sharp: 2^3-1 = 7.
  EXPECT_FALSE(LinearOrdersEquivalent(6, 7, 3));
  EXPECT_FALSE(LinearOrdersEquivalent(6, 100, 3));
  EXPECT_TRUE(LinearOrdersEquivalent(6, 6, 3));     // Equal sizes always.
  EXPECT_TRUE(LinearOrdersEquivalent(3, 4, 2));     // 2^2-1 = 3.
  EXPECT_FALSE(LinearOrdersEquivalent(2, 3, 2));
}

TEST(LinearOrderTest, EvenNotExpressibleWitness) {
  // The inexpressibility scaffold for EVEN over orders: L_{2^n} vs
  // L_{2^n+1} are n-equivalent but have different parity.
  for (std::size_t n = 1; n <= 10; ++n) {
    const std::size_t even_size = std::size_t{1} << n;
    EXPECT_TRUE(LinearOrdersEquivalent(even_size, even_size + 1, n));
    EXPECT_EQ(even_size % 2, 0u);
    EXPECT_EQ((even_size + 1) % 2, 1u);
  }
}

TEST(LinearOrderTest, HugeRankGuard) {
  EXPECT_TRUE(LinearOrdersEquivalent(5, 5, 100));
  EXPECT_FALSE(LinearOrdersEquivalent(5, 6, 100));
}

// --- Pebble games ----------------------------------------------------------

TEST(PebbleGameTest, ManyPebblesMatchEfGame) {
  // With pebbles >= rounds, the pebble game equals the EF game.
  std::vector<std::pair<Structure, Structure>> pairs;
  pairs.emplace_back(MakeSet(2), MakeSet(3));
  pairs.emplace_back(MakeDirectedPath(3), MakeDirectedCycle(3));
  pairs.emplace_back(MakeDirectedCycle(3), MakeDirectedCycle(4));
  for (const auto& [a, b] : pairs) {
    for (std::size_t rounds = 0; rounds <= 3; ++rounds) {
      EXPECT_EQ(PebbleDupWins(a, b, /*pebbles=*/3, rounds),
                DupWins(a, b, rounds))
          << "rounds=" << rounds;
    }
  }
}

TEST(PebbleGameTest, FewerPebblesAreWeaker) {
  // 2 sets of different sizes >= 2: with 2 pebbles the spoiler cannot
  // count to 3, so the duplicator survives arbitrarily many rounds.
  Structure a = MakeSet(2);
  Structure b = MakeSet(3);
  EXPECT_TRUE(PebbleDupWins(a, b, /*pebbles=*/2, 6));
  EXPECT_FALSE(PebbleDupWins(a, b, /*pebbles=*/3, 3));
}

TEST(PebbleGameTest, OnePebbleSeesOnlyPointTypes) {
  // One pebble distinguishes a loop from a non-loop but not set sizes.
  Structure loop = MakeDirectedCycle(1);
  Structure noloop = MakeEmptyGraph(1);
  EXPECT_FALSE(PebbleDupWins(loop, noloop, 1, 1));
  Structure s3 = MakeSet(3);
  Structure s5 = MakeSet(5);
  EXPECT_TRUE(PebbleDupWins(s3, s5, 1, 8));
}

TEST(PebbleGameTest, NodeCap) {
  Structure a = MakeDirectedCycle(5);
  Structure b = MakeDirectedCycle(6);
  PebbleGameSolver solver(a, b, 2, /*max_nodes=*/5);
  Result<bool> r = solver.DuplicatorWins(4);
  EXPECT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), StatusCode::kResourceExhausted);
}

}  // namespace
}  // namespace fmtk
