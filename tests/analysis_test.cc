#include <gtest/gtest.h>

#include <functional>
#include <map>
#include <random>
#include <set>
#include <string>
#include <vector>

#include "analysis/datalog_analyzer.h"
#include "analysis/diagnostics.h"
#include "analysis/fo_analyzer.h"
#include "datalog/evaluator.h"
#include "datalog/program.h"
#include "eval/compiled_eval.h"
#include "eval/query_eval.h"
#include "logic/analysis.h"
#include "logic/parser.h"
#include "logic/random_formula.h"
#include "structures/bulk_load.h"
#include "structures/generators.h"
#include "structures/signature.h"

namespace fmtk {
namespace {

std::shared_ptr<const Signature> GraphSig() { return Signature::Graph(); }

ParsedFormula ParseSpanned(const char* text, const Signature* sig = nullptr) {
  Result<ParsedFormula> parsed = ParseFormulaWithSpans(text, sig);
  EXPECT_TRUE(parsed.ok()) << text << ": " << parsed.status().ToString();
  return *std::move(parsed);
}

/// Full FO analysis of surface text: parse with spans (resolving constants
/// against `parse_sig` when given), analyze against `check_sig`.
FoAnalysis Analyze(const char* text, const Signature* check_sig,
                   FoProfile profile = FoProfile::kModelCheck,
                   const Signature* parse_sig = nullptr) {
  ParsedFormula parsed =
      ParseSpanned(text, parse_sig != nullptr ? parse_sig : check_sig);
  FoAnalyzerOptions options;
  options.signature = check_sig;
  options.spans = &parsed.spans;
  options.profile = profile;
  return AnalyzeFormula(parsed.formula, options);
}

DatalogAnalysis AnalyzeDl(const char* text, const Signature* sig = nullptr,
                          std::vector<std::string> outputs = {}) {
  Result<DatalogProgram> program =
      ParseDatalogProgram(text, /*validate=*/false);
  EXPECT_TRUE(program.ok()) << text << ": " << program.status().ToString();
  DatalogAnalyzerOptions options;
  options.signature = sig;
  options.outputs = std::move(outputs);
  return AnalyzeProgram(*program, options);
}

bool Has(const DiagnosticSink& sink, DiagCode code) {
  for (const Diagnostic& d : sink.diagnostics()) {
    if (d.code == code) {
      return true;
    }
  }
  return false;
}

// ---------------------------------------------------------------------------
// Golden diagnostics: for every registered FMTK### code, one input that
// triggers it and one near-miss that does not. Keyed off AllDiagCodes() so
// adding a code without a golden pair fails the suite.
// ---------------------------------------------------------------------------

struct GoldenPair {
  std::function<DiagnosticSink()> trigger;
  std::function<DiagnosticSink()> near_miss;
};

std::map<DiagCode, GoldenPair> GoldenCases() {
  auto graph = GraphSig();
  auto graph_c = std::make_shared<Signature>();
  graph_c->AddRelation("E", 2).AddConstant("c");
  auto fo = [graph](const char* text) {
    return Analyze(text, graph.get()).diagnostics;
  };
  auto dl = [](const char* text, const Signature* sig = nullptr,
               std::vector<std::string> outputs = {}) {
    return AnalyzeDl(text, sig, std::move(outputs)).diagnostics;
  };
  std::map<DiagCode, GoldenPair> cases;
  cases[DiagCode::kUnknownRelation] = {
      [fo] { return fo("R(x,y)"); },
      [fo] { return fo("E(x,y)"); }};
  cases[DiagCode::kRelationArityMismatch] = {
      [fo] { return fo("E(x)"); },
      [fo] { return fo("E(x,y)"); }};
  cases[DiagCode::kUnknownConstant] = {
      // 'c' parses as a constant under {E/2; c} but the analysis signature
      // {E/2} has no such constant.
      [graph, graph_c] {
        return Analyze("E(c,x)", graph.get(), FoProfile::kModelCheck,
                       graph_c.get())
            .diagnostics;
      },
      [graph_c] {
        return Analyze("E(c,x)", graph_c.get()).diagnostics;
      }};
  cases[DiagCode::kNotSafeRange] = {
      [fo] { return fo("!E(x,y)"); },
      [fo] { return fo("E(x,y)"); }};
  cases[DiagCode::kUnsafeQuantifier] = {
      [fo] { return fo("exists x. !E(x,x)"); },
      [fo] { return fo("exists x. E(x,x)"); }};
  cases[DiagCode::kUnusedQuantifiedVariable] = {
      [fo] { return fo("exists x. E(y,y)"); },
      [fo] { return fo("exists x. E(x,x)"); }};
  cases[DiagCode::kShadowedVariable] = {
      [fo] { return fo("exists x. exists x. E(x,x)"); },
      [fo] { return fo("exists x. exists y. E(x,y)"); }};
  cases[DiagCode::kDoubleNegation] = {
      [fo] { return fo("!!E(x,y)"); },
      [fo] { return fo("!E(x,y)"); }};
  cases[DiagCode::kConstantSubformula] = {
      [fo] { return fo("E(x,y) & true"); },
      [fo] { return fo("E(x,y) & E(y,x)"); }};
  cases[DiagCode::kTrivialEquality] = {
      [fo] { return fo("x = x"); },
      [fo] { return fo("x = y"); }};
  cases[DiagCode::kInconsistentPredicateArity] = {
      [dl] { return dl("p(x) :- E(x,y). p(x,y) :- E(x,y)."); },
      [dl] { return dl("p(x) :- E(x,y). p(x) :- E(y,x)."); }};
  cases[DiagCode::kUnboundHeadVariable] = {
      [dl] { return dl("p(x,y) :- E(x,x)."); },
      [dl] { return dl("p(x,y) :- E(x,y)."); }};
  cases[DiagCode::kUnknownEdbPredicate] = {
      [dl, graph] { return dl("p(x) :- Q(x,x).", graph.get()); },
      [dl, graph] { return dl("p(x) :- E(x,x).", graph.get()); }};
  cases[DiagCode::kEdbArityMismatch] = {
      [dl, graph] { return dl("p(x) :- E(x,x,x).", graph.get()); },
      [dl, graph] { return dl("p(x) :- E(x,x).", graph.get()); }};
  cases[DiagCode::kIdbEdbCollision] = {
      [dl, graph] { return dl("E(x,y) :- E(x,y).", graph.get()); },
      [dl, graph] { return dl("p(x,y) :- E(x,y).", graph.get()); }};
  cases[DiagCode::kUnreachableRule] = {
      [dl] {
        return dl("p(x) :- E(x,x). q(x) :- E(x,x).", nullptr, {"p"});
      },
      [dl] {
        return dl("p(x) :- q(x). q(x) :- E(x,x).", nullptr, {"p"});
      }};
  cases[DiagCode::kDomainDependentFactSchema] = {
      [dl] { return dl("p(x)."); },
      [dl] { return dl("p(0)."); }};
  // The FMTK2xx bulk-input codes run the loaders themselves: each lambda
  // feeds a tiny edge list / binary blob and returns whatever they report.
  auto edges = [](const char* text,
                  EdgeListOptions options = EdgeListOptions{}) {
    DiagnosticSink sink;
    (void)LoadEdgeListText(text, options, &sink);
    return sink;
  };
  auto binary = [](std::string bytes) {
    DiagnosticSink sink;
    (void)ParseStructureBinary(bytes, &sink);
    return sink;
  };
  cases[DiagCode::kIoTruncatedInput] = {
      [edges] { return edges("0 1\n2\n"); },
      [edges] { return edges("0 1\n2 3\n"); }};
  cases[DiagCode::kIoMalformedRecord] = {
      [binary] { return binary("NOTFMTK!"); },
      [binary] {
        return binary(SerializeStructureBinary(MakeDirectedPath(3)));
      }};
  EdgeListOptions numeric;
  numeric.id_mode = EdgeListOptions::IdMode::kNumeric;
  numeric.domain_size = 3;
  cases[DiagCode::kIoElementOutOfRange] = {
      [edges, numeric] { return edges("0 7\n", numeric); },
      [edges, numeric] { return edges("0 2\n", numeric); }};
  cases[DiagCode::kIoDuplicateTuple] = {
      [edges] { return edges("0 1\n0 1\n"); },
      [edges] { return edges("0 1\n1 0\n"); }};
  cases[DiagCode::kIoEmptyRelation] = {
      [edges] { return edges("# only comments\n"); },
      [edges] { return edges("0 1\n"); }};
  return cases;
}

TEST(GoldenDiagnosticsTest, EveryCodeHasTriggerAndNearMiss) {
  const std::map<DiagCode, GoldenPair> cases = GoldenCases();
  for (const DiagCodeInfo& info : AllDiagCodes()) {
    auto it = cases.find(info.code);
    ASSERT_NE(it, cases.end())
        << info.id << " (" << info.title << ") has no golden case";
    EXPECT_TRUE(Has(it->second.trigger(), info.code))
        << info.id << ": trigger input did not report the code";
    EXPECT_FALSE(Has(it->second.near_miss(), info.code))
        << info.id << ": near-miss input reported the code";
  }
  EXPECT_EQ(cases.size(), AllDiagCodes().size());
}

TEST(GoldenDiagnosticsTest, CodeTableIsConsistent) {
  std::set<std::string> ids;
  for (const DiagCodeInfo& info : AllDiagCodes()) {
    char expected[16];
    std::snprintf(expected, sizeof expected, "FMTK%03d",
                  static_cast<int>(info.code));
    EXPECT_STREQ(info.id, expected);
    EXPECT_TRUE(ids.insert(info.id).second) << info.id << " duplicated";
    EXPECT_EQ(GetDiagCodeInfo(info.code).id, info.id);
    EXPECT_STRNE(info.title, "");
  }
  EXPECT_STREQ(DiagCodeId(DiagCode::kUnknownRelation), "FMTK001");
  EXPECT_STREQ(DiagCodeId(DiagCode::kInconsistentPredicateArity), "FMTK101");
}

// ---------------------------------------------------------------------------
// Safe-range analysis.
// ---------------------------------------------------------------------------

bool SafeRange(const char* text) {
  return Analyze(text, GraphSig().get()).safe_range;
}

TEST(SafeRangeTest, ClassicalCases) {
  EXPECT_TRUE(SafeRange("E(x,y)"));
  EXPECT_TRUE(SafeRange("exists y. E(x,y)"));
  EXPECT_TRUE(SafeRange("E(x,y) & !E(y,x)"));
  EXPECT_TRUE(SafeRange("E(x,y) | E(y,x)"));
  EXPECT_TRUE(SafeRange("exists z. E(x,z) & E(z,y)"));
  // Equality propagates range restriction.
  EXPECT_TRUE(SafeRange("E(x,y) & z = x"));
  EXPECT_TRUE(SafeRange("E(x,y) & z = y & !E(z,z)"));

  // Negation alone restricts nothing.
  EXPECT_FALSE(SafeRange("!E(x,y)"));
  // One disjunct does not restrict y.
  EXPECT_FALSE(SafeRange("E(x,y) | E(x,x)"));
  // Universal quantification is not range-restricted.
  EXPECT_FALSE(SafeRange("forall y. E(x,y) -> E(y,x)"));
  // Equality with no anchor.
  EXPECT_FALSE(SafeRange("x = y"));
  // Unsafe quantifier poisons the whole formula even if rr covers the free
  // variables at the top level.
  EXPECT_FALSE(SafeRange("E(x,y) & (exists z. !E(z,z))"));
}

TEST(SafeRangeTest, SentencesAndBooleans) {
  // A sentence with only safe quantifiers is safe-range.
  EXPECT_TRUE(SafeRange("exists x y. E(x,y)"));
  EXPECT_FALSE(SafeRange("forall x. exists y. E(x,y)"));
  // Double negation around a safe body stays safe (polarity flips twice).
  EXPECT_TRUE(SafeRange("!!E(x,y)"));
  // De Morgan through implication: !(E(x,y) -> !E(y,x)) ==
  // E(x,y) & E(y,x).
  EXPECT_TRUE(SafeRange("!(E(x,y) -> !E(y,x))"));
}

TEST(SafeRangeTest, RangeRestrictedSetIsReported) {
  FoAnalysis a = Analyze("E(x,y) | E(x,x)", GraphSig().get());
  EXPECT_EQ(a.free_variables, (std::set<std::string>{"x", "y"}));
  EXPECT_EQ(a.range_restricted, (std::set<std::string>{"x"}));
  EXPECT_FALSE(a.safe_range);
}

TEST(SafeRangeTest, QueryProfileEscalatesToError) {
  FoAnalysis warn = Analyze("!E(x,y)", GraphSig().get());
  EXPECT_TRUE(warn.ok());
  EXPECT_GT(warn.diagnostics.warning_count(), 0u);

  FoAnalysis err =
      Analyze("!E(x,y)", GraphSig().get(), FoProfile::kQuery);
  EXPECT_FALSE(err.ok());
  EXPECT_EQ(err.status().code(), StatusCode::kInvalidArgument);
}

TEST(FoMeasuresTest, RankWidthAndCounts) {
  FoAnalysis a =
      Analyze("exists x. (E(x,y) & forall z. E(z,x))", GraphSig().get());
  EXPECT_EQ(a.quantifier_rank, 2u);
  EXPECT_EQ(a.quantifier_count, 2u);
  EXPECT_EQ(a.variable_width, 3u);
  EXPECT_EQ(a.free_variables, (std::set<std::string>{"y"}));
  EXPECT_GT(a.node_count, 4u);
}

// ---------------------------------------------------------------------------
// Rendering: spans, carets, JSON, Status.
// ---------------------------------------------------------------------------

TEST(RenderingTest, DiagnosticCarriesByteSpanOfTheAtom) {
  FoAnalysis a = Analyze("exists x. R(x,y)", GraphSig().get());
  ASSERT_FALSE(a.diagnostics.empty());
  const Diagnostic* unknown = nullptr;
  for (const Diagnostic& d : a.diagnostics.diagnostics()) {
    if (d.code == DiagCode::kUnknownRelation) {
      unknown = &d;
    }
  }
  ASSERT_NE(unknown, nullptr);
  EXPECT_EQ(unknown->span, SourceSpan::Of(10, 6));
  EXPECT_NE(unknown->ToString("exists x. R(x,y)").find("1:11"),
            std::string::npos);
}

TEST(RenderingTest, TextReportUnderlinesTheSource) {
  const char* text = "exists x. R(x,y)";
  FoAnalysis a = Analyze(text, GraphSig().get());
  const std::string report = a.diagnostics.ToText(text);
  EXPECT_NE(report.find("error[FMTK001]"), std::string::npos);
  EXPECT_NE(report.find(text), std::string::npos);
  EXPECT_NE(report.find("^~~~~"), std::string::npos);
}

TEST(RenderingTest, MultiLineDatalogSpans) {
  const char* text = "p(x) :- E(x,y).\np(x,y) :- E(x,y).";
  DatalogAnalysis a = AnalyzeDl(text);
  ASSERT_TRUE(Has(a.diagnostics, DiagCode::kInconsistentPredicateArity));
  const std::string report = a.diagnostics.ToText(text);
  EXPECT_NE(report.find("2:1"), std::string::npos);
  // The arity conflict carries a note pointing at the first use.
  bool found_note = false;
  for (const Diagnostic& d : a.diagnostics.diagnostics()) {
    if (d.code == DiagCode::kInconsistentPredicateArity) {
      found_note = !d.notes.empty();
    }
  }
  EXPECT_TRUE(found_note);
}

TEST(RenderingTest, JsonReport) {
  FoAnalysis a = Analyze("R(x,y)", GraphSig().get());
  const std::string json = a.diagnostics.ToJson();
  EXPECT_NE(json.find("\"code\":\"FMTK001\""), std::string::npos);
  EXPECT_NE(json.find("\"severity\":\"error\""), std::string::npos);
  EXPECT_NE(json.find("\"offset\":0"), std::string::npos);

  DiagnosticSink empty;
  EXPECT_EQ(empty.ToJson(), "[]");
}

TEST(RenderingTest, StatusCarriesOnlyErrors) {
  // One error (unknown relation) + one note (trivial equality).
  FoAnalysis a = Analyze("R(x,y) & x = x", GraphSig().get());
  EXPECT_TRUE(Has(a.diagnostics, DiagCode::kTrivialEquality));
  const Status status = a.status();
  EXPECT_EQ(status.code(), StatusCode::kSignatureMismatch);
  EXPECT_NE(status.message().find("FMTK001"), std::string::npos);
  EXPECT_EQ(status.message().find("FMTK016"), std::string::npos);
}

// ---------------------------------------------------------------------------
// Dependency graph / SCC classification.
// ---------------------------------------------------------------------------

TEST(SccTest, TransitiveClosureIsLinear) {
  DatalogAnalysis a = AnalyzeProgram(DatalogProgram::TransitiveClosure());
  ASSERT_EQ(a.sccs.size(), 1u);
  EXPECT_EQ(a.sccs[0].predicates, std::vector<std::string>{"tc"});
  EXPECT_TRUE(a.sccs[0].recursive);
  EXPECT_TRUE(a.sccs[0].linear);
  EXPECT_EQ(a.sccs[0].max_recursive_atoms, 1u);
}

TEST(SccTest, NonlinearTransitiveClosure) {
  DatalogAnalysis a =
      AnalyzeProgram(DatalogProgram::NonlinearTransitiveClosure());
  ASSERT_EQ(a.sccs.size(), 1u);
  EXPECT_TRUE(a.sccs[0].recursive);
  EXPECT_FALSE(a.sccs[0].linear);
  EXPECT_EQ(a.sccs[0].max_recursive_atoms, 2u);
  EXPECT_NE(a.sccs[0].ToString().find("nonlinear"), std::string::npos);
}

TEST(SccTest, SameGenerationIsLinear) {
  DatalogAnalysis a = AnalyzeProgram(DatalogProgram::SameGeneration());
  ASSERT_EQ(a.scc_of.count("sg"), 1u);
  const DatalogSccInfo& sg = a.sccs[a.scc_of.at("sg")];
  EXPECT_TRUE(sg.recursive);
  EXPECT_TRUE(sg.linear);
  // The builtin's sg(x,x) fact schema is flagged as domain-dependent.
  EXPECT_TRUE(Has(a.diagnostics, DiagCode::kDomainDependentFactSchema));
}

TEST(SccTest, CondensationIsDependenciesFirst) {
  DatalogAnalysis a = AnalyzeDl(
      "q(x) :- p(x). p(x) :- E(x,x). r(x,y) :- q(x), q(y).");
  ASSERT_EQ(a.sccs.size(), 3u);
  EXPECT_LT(a.scc_of.at("p"), a.scc_of.at("q"));
  EXPECT_LT(a.scc_of.at("q"), a.scc_of.at("r"));
  for (const DatalogSccInfo& scc : a.sccs) {
    EXPECT_FALSE(scc.recursive);
    EXPECT_NE(scc.ToString().find("non-recursive"), std::string::npos);
  }
}

TEST(SccTest, MutualRecursionFormsOneScc) {
  DatalogAnalysis a = AnalyzeDl(
      "even(x) :- Z(x). even(x) :- S(y,x), odd(y). odd(x) :- S(y,x), even(x).");
  ASSERT_EQ(a.scc_of.at("even"), a.scc_of.at("odd"));
  const DatalogSccInfo& scc = a.sccs[a.scc_of.at("even")];
  EXPECT_TRUE(scc.recursive);
  EXPECT_EQ(scc.predicates, (std::vector<std::string>{"even", "odd"}));
}

TEST(SccTest, IdbAndEdbPartition) {
  DatalogAnalysis a = AnalyzeDl("p(x) :- E(x,y). q(x) :- p(x), R(x).");
  EXPECT_EQ(a.idb_predicates, (std::set<std::string>{"p", "q"}));
  EXPECT_EQ(a.edb_predicates, (std::set<std::string>{"E", "R"}));
}

TEST(SccTest, ReachabilityRelativeToOutputs) {
  DatalogAnalysis a = AnalyzeDl(
      "p(x) :- q(x). q(x) :- E(x,x). dead(x) :- E(x,x).", nullptr, {"p"});
  ASSERT_EQ(a.rule_reachable.size(), 3u);
  EXPECT_TRUE(a.rule_reachable[0]);
  EXPECT_TRUE(a.rule_reachable[1]);
  EXPECT_FALSE(a.rule_reachable[2]);
  EXPECT_TRUE(Has(a.diagnostics, DiagCode::kUnreachableRule));
  EXPECT_TRUE(a.ok());  // Unreachable rules are warnings, not errors.
}

// ---------------------------------------------------------------------------
// Engine front doors.
// ---------------------------------------------------------------------------

TEST(FrontDoorTest, QueryEvalRejectsVocabularyErrors) {
  Structure g = MakeDirectedPath(3);
  ParsedFormula f = ParseSpanned("R(x,y)");
  Result<Relation> r = EvaluateQuery(g, f.formula, {"x", "y"});
  ASSERT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), StatusCode::kSignatureMismatch);
  EXPECT_NE(r.status().message().find("FMTK001"), std::string::npos);
}

TEST(FrontDoorTest, QueryEvalSafeRangeOptIn) {
  Structure g = MakeDirectedPath(3);
  ParsedFormula f = ParseSpanned("!E(x,y)", GraphSig().get());
  // Default: domain-relative semantics still evaluates the complement.
  Result<Relation> lenient = EvaluateQuery(g, f.formula, {"x", "y"});
  ASSERT_TRUE(lenient.ok()) << lenient.status().ToString();
  EXPECT_EQ(lenient->tuples().size(), 9u - 2u);
  // Opt-in: the analyzer rejects with the safe-range diagnostics.
  QueryEvalOptions options;
  options.require_safe_range = true;
  Result<Relation> strict = EvaluateQuery(g, f.formula, {"x", "y"}, options);
  ASSERT_FALSE(strict.ok());
  EXPECT_EQ(strict.status().code(), StatusCode::kInvalidArgument);
  EXPECT_NE(strict.status().message().find("FMTK010"), std::string::npos);
}

TEST(FrontDoorTest, QueryEvalSurfacesAnalysis) {
  Structure g = MakeDirectedPath(3);
  ParsedFormula f = ParseSpanned("exists z. E(x,z) & E(z,y)", GraphSig().get());
  FoAnalysis analysis;
  QueryEvalOptions options;
  options.analysis = &analysis;
  Result<Relation> r = EvaluateQuery(g, f.formula, {"x", "y"}, options);
  ASSERT_TRUE(r.ok()) << r.status().ToString();
  EXPECT_TRUE(analysis.safe_range);
  EXPECT_EQ(analysis.quantifier_rank, 1u);
  EXPECT_EQ(analysis.free_variables, (std::set<std::string>{"x", "y"}));
}

TEST(FrontDoorTest, CompiledEvalRejectsVocabularyErrors) {
  ParsedFormula f = ParseSpanned("E(x)");
  Result<CompiledFormula> compiled =
      CompiledFormula::Compile(f.formula, *GraphSig());
  ASSERT_FALSE(compiled.ok());
  EXPECT_EQ(compiled.status().code(), StatusCode::kSignatureMismatch);
  EXPECT_NE(compiled.status().message().find("FMTK002"), std::string::npos);
}

TEST(FrontDoorTest, DatalogEnginesRejectUnboundHeads) {
  Structure g = MakeDirectedPath(3);
  Result<DatalogProgram> bad =
      ParseDatalogProgram("p(x,y) :- E(x,x).", /*validate=*/false);
  ASSERT_TRUE(bad.ok());
  for (DatalogStrategy strategy :
       {DatalogStrategy::kNaive, DatalogStrategy::kSeedSemiNaive,
        DatalogStrategy::kSemiNaive}) {
    Result<std::map<std::string, Relation>> r =
        EvaluateDatalog(*bad, g, strategy);
    ASSERT_FALSE(r.ok());
    EXPECT_EQ(r.status().code(), StatusCode::kInvalidArgument);
    EXPECT_NE(r.status().message().find("FMTK102"), std::string::npos);
  }
}

TEST(FrontDoorTest, DatalogStatsCarryRecursionInfo) {
  Structure g = MakeDirectedPath(4);
  for (DatalogStrategy strategy :
       {DatalogStrategy::kSeedSemiNaive, DatalogStrategy::kSemiNaive}) {
    DatalogStats stats;
    Result<std::map<std::string, Relation>> r = EvaluateDatalog(
        DatalogProgram::NonlinearTransitiveClosure(), g, strategy, &stats);
    ASSERT_TRUE(r.ok()) << r.status().ToString();
    ASSERT_EQ(stats.recursion_info.size(), 1u);
    EXPECT_NE(stats.recursion_info[0].find("nonlinear"), std::string::npos);
  }
}

TEST(FrontDoorTest, DatalogStatsCarryAnalyzerWarnings) {
  Structure g = MakeDirectedPath(3);
  DatalogStats stats;
  Result<std::map<std::string, Relation>> r = EvaluateDatalog(
      DatalogProgram::SameGeneration(), g, DatalogStrategy::kSemiNaive,
      &stats);
  ASSERT_TRUE(r.ok()) << r.status().ToString();
  bool found = false;
  for (const std::string& w : stats.analyzer_warnings) {
    found = found || w.find("FMTK107") != std::string::npos;
  }
  EXPECT_TRUE(found);
}

TEST(FrontDoorTest, ValidateDelegatesToAnalyzer) {
  Result<DatalogProgram> bad = ParseDatalogProgram(
      "p(x) :- E(x,y). p(x,y) :- E(x,y).", /*validate=*/false);
  ASSERT_TRUE(bad.ok());
  const Status status = bad->Validate();
  ASSERT_FALSE(status.ok());
  EXPECT_NE(status.message().find("FMTK101"), std::string::npos);
}

// ---------------------------------------------------------------------------
// Property tests over random formulas.
// ---------------------------------------------------------------------------

TEST(PropertyTest, RandomFormulasLintCleanOfErrors) {
  std::mt19937_64 rng(20260807);
  auto graph = GraphSig();
  RandomFormulaOptions options;
  for (int trial = 0; trial < 200; ++trial) {
    options.max_depth = 2 + trial % 4;
    options.variable_pool = 2 + trial % 3;
    const Formula f = trial % 2 == 0 ? MakeRandomFormula(*graph, options, rng)
                                     : MakeRandomSentence(*graph, options, rng);
    FoAnalyzerOptions analyzer_options;
    analyzer_options.signature = graph.get();
    const FoAnalysis a = AnalyzeFormula(f, analyzer_options);
    EXPECT_TRUE(a.ok()) << f.ToString() << "\n"
                        << a.diagnostics.ToText();
    EXPECT_EQ(a.quantifier_rank, QuantifierRank(f));
    EXPECT_EQ(a.free_variables, FreeVariables(f));
  }
}

std::set<Element> ActiveDomain(const Structure& s) {
  std::set<Element> active;
  for (std::size_t i = 0; i < s.signature().relation_count(); ++i) {
    for (const Tuple& t : s.relation(i).tuples()) {
      active.insert(t.begin(), t.end());
    }
  }
  for (std::size_t i = 0; i < s.signature().constant_count(); ++i) {
    if (s.constant(i).has_value()) {
      active.insert(*s.constant(i));
    }
  }
  return active;
}

TEST(PropertyTest, SafeRangeAnswersStayInTheActiveDomain) {
  std::mt19937_64 rng(7);
  auto graph = GraphSig();
  RandomFormulaOptions options;
  options.max_depth = 3;
  options.variable_pool = 2;
  std::size_t safe_seen = 0;
  for (int trial = 0; trial < 300; ++trial) {
    const Formula f = MakeRandomFormula(*graph, options, rng);
    FoAnalyzerOptions analyzer_options;
    analyzer_options.signature = graph.get();
    const FoAnalysis a = AnalyzeFormula(f, analyzer_options);
    if (!a.safe_range || a.free_variables.empty()) {
      continue;
    }
    ++safe_seen;
    // Random graph with guaranteed isolated vertices: domain element n-1
    // and n-2 are never touched by an edge, so any answer mentioning them
    // would leave the active domain.
    Structure g = MakeRandomGraph(6, 0.5, rng);
    const std::set<Element> active = ActiveDomain(g);
    const std::vector<std::string> outputs(a.free_variables.begin(),
                                           a.free_variables.end());
    QueryEvalOptions eval_options;
    eval_options.require_safe_range = true;
    Result<Relation> answers = EvaluateQuery(g, f, outputs, eval_options);
    ASSERT_TRUE(answers.ok())
        << f.ToString() << ": " << answers.status().ToString();
    for (const Tuple& t : answers->tuples()) {
      for (const Element e : t) {
        EXPECT_TRUE(active.count(e) > 0)
            << f.ToString() << " produced non-active element "
            << e;
      }
    }
  }
  // The generator must have produced a healthy number of safe-range
  // formulas for the property to mean anything.
  EXPECT_GT(safe_seen, 20u);
}

TEST(PropertyTest, AnalyzerAgreesWithEvaluatorOnSafeQueries) {
  // Safe-range queries give the same answers under the checked and the
  // unchecked entry points (the analyzer must not perturb evaluation).
  std::mt19937_64 rng(99);
  auto graph = GraphSig();
  RandomFormulaOptions options;
  options.max_depth = 3;
  options.variable_pool = 2;
  for (int trial = 0; trial < 100; ++trial) {
    const Formula f = MakeRandomFormula(*graph, options, rng);
    FoAnalyzerOptions analyzer_options;
    analyzer_options.signature = graph.get();
    const FoAnalysis a = AnalyzeFormula(f, analyzer_options);
    if (!a.safe_range || a.free_variables.empty()) {
      continue;
    }
    Structure g = MakeRandomGraph(5, 0.4, rng);
    const std::vector<std::string> outputs(a.free_variables.begin(),
                                           a.free_variables.end());
    QueryEvalOptions strict;
    strict.require_safe_range = true;
    Result<Relation> checked = EvaluateQuery(g, f, outputs, strict);
    Result<Relation> unchecked = EvaluateQuery(g, f, outputs);
    ASSERT_TRUE(checked.ok());
    ASSERT_TRUE(unchecked.ok());
    EXPECT_EQ(*checked, *unchecked) << f.ToString();
  }
}

}  // namespace
}  // namespace fmtk
