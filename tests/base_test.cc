#include <gtest/gtest.h>

#include "base/hash.h"
#include "base/result.h"
#include "base/status.h"
#include "base/string_util.h"

namespace fmtk {
namespace {

TEST(StatusTest, DefaultIsOk) {
  Status s;
  EXPECT_TRUE(s.ok());
  EXPECT_EQ(s.code(), StatusCode::kOk);
  EXPECT_EQ(s.ToString(), "OK");
}

TEST(StatusTest, ErrorCarriesCodeAndMessage) {
  Status s = Status::ParseError("bad token");
  EXPECT_FALSE(s.ok());
  EXPECT_EQ(s.code(), StatusCode::kParseError);
  EXPECT_EQ(s.message(), "bad token");
  EXPECT_EQ(s.ToString(), "ParseError: bad token");
}

TEST(StatusTest, CopyIsCheap) {
  Status s = Status::Internal("boom");
  Status t = s;
  EXPECT_EQ(t.message(), "boom");
  EXPECT_EQ(t.code(), StatusCode::kInternal);
}

TEST(StatusTest, AllCodesHaveNames) {
  EXPECT_STREQ(StatusCodeToString(StatusCode::kOk), "OK");
  EXPECT_STREQ(StatusCodeToString(StatusCode::kInvalidArgument),
               "InvalidArgument");
  EXPECT_STREQ(StatusCodeToString(StatusCode::kSignatureMismatch),
               "SignatureMismatch");
  EXPECT_STREQ(StatusCodeToString(StatusCode::kParseError), "ParseError");
  EXPECT_STREQ(StatusCodeToString(StatusCode::kResourceExhausted),
               "ResourceExhausted");
  EXPECT_STREQ(StatusCodeToString(StatusCode::kUnsupported), "Unsupported");
  EXPECT_STREQ(StatusCodeToString(StatusCode::kInternal), "Internal");
}

TEST(ResultTest, HoldsValue) {
  Result<int> r = 42;
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(*r, 42);
  EXPECT_TRUE(r.status().ok());
}

TEST(ResultTest, HoldsError) {
  Result<int> r = Status::InvalidArgument("nope");
  EXPECT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), StatusCode::kInvalidArgument);
}

Result<int> Doubled(Result<int> in) {
  FMTK_ASSIGN_OR_RETURN(int v, std::move(in));
  return 2 * v;
}

TEST(ResultTest, AssignOrReturnPropagates) {
  EXPECT_EQ(*Doubled(21), 42);
  Result<int> err = Doubled(Status::Internal("x"));
  EXPECT_FALSE(err.ok());
  EXPECT_EQ(err.status().code(), StatusCode::kInternal);
}

TEST(ResultTest, MoveOnlyValue) {
  Result<std::unique_ptr<int>> r = std::make_unique<int>(7);
  ASSERT_TRUE(r.ok());
  std::unique_ptr<int> v = std::move(r).value();
  EXPECT_EQ(*v, 7);
}

TEST(HashTest, VectorHashDiscriminates) {
  VectorHash<int> h;
  EXPECT_NE(h({1, 2, 3}), h({3, 2, 1}));
  EXPECT_EQ(h({1, 2, 3}), h({1, 2, 3}));
  EXPECT_NE(h({}), h({0}));
}

TEST(HashTest, PairHash) {
  PairHash<int, int> h;
  EXPECT_NE(h({1, 2}), h({2, 1}));
  EXPECT_EQ(h({5, 9}), h({5, 9}));
}

TEST(StringUtilTest, Join) {
  EXPECT_EQ(Join({}, ","), "");
  EXPECT_EQ(Join({"a"}, ","), "a");
  EXPECT_EQ(Join({"a", "b", "c"}, ", "), "a, b, c");
}

TEST(StringUtilTest, Split) {
  EXPECT_EQ(Split("a,b,c", ',').size(), 3u);
  EXPECT_EQ(Split("a,,c", ',')[1], "");
  EXPECT_EQ(Split("", ',').size(), 1u);
}

TEST(StringUtilTest, StripWhitespace) {
  EXPECT_EQ(StripWhitespace("  x y  "), "x y");
  EXPECT_EQ(StripWhitespace(""), "");
  EXPECT_EQ(StripWhitespace(" \t\n"), "");
}

TEST(StringUtilTest, StartsWith) {
  EXPECT_TRUE(StartsWith("forall x", "forall"));
  EXPECT_FALSE(StartsWith("for", "forall"));
}

}  // namespace
}  // namespace fmtk
