#include <gtest/gtest.h>

#include <cmath>
#include <limits>
#include <string>

#include "base/hash.h"
#include "base/json_out.h"
#include "base/result.h"
#include "base/status.h"
#include "base/string_util.h"

namespace fmtk {
namespace {

TEST(StatusTest, DefaultIsOk) {
  Status s;
  EXPECT_TRUE(s.ok());
  EXPECT_EQ(s.code(), StatusCode::kOk);
  EXPECT_EQ(s.ToString(), "OK");
}

TEST(StatusTest, ErrorCarriesCodeAndMessage) {
  Status s = Status::ParseError("bad token");
  EXPECT_FALSE(s.ok());
  EXPECT_EQ(s.code(), StatusCode::kParseError);
  EXPECT_EQ(s.message(), "bad token");
  EXPECT_EQ(s.ToString(), "ParseError: bad token");
}

TEST(StatusTest, CopyIsCheap) {
  Status s = Status::Internal("boom");
  Status t = s;
  EXPECT_EQ(t.message(), "boom");
  EXPECT_EQ(t.code(), StatusCode::kInternal);
}

TEST(StatusTest, AllCodesHaveNames) {
  EXPECT_STREQ(StatusCodeToString(StatusCode::kOk), "OK");
  EXPECT_STREQ(StatusCodeToString(StatusCode::kInvalidArgument),
               "InvalidArgument");
  EXPECT_STREQ(StatusCodeToString(StatusCode::kSignatureMismatch),
               "SignatureMismatch");
  EXPECT_STREQ(StatusCodeToString(StatusCode::kParseError), "ParseError");
  EXPECT_STREQ(StatusCodeToString(StatusCode::kResourceExhausted),
               "ResourceExhausted");
  EXPECT_STREQ(StatusCodeToString(StatusCode::kUnsupported), "Unsupported");
  EXPECT_STREQ(StatusCodeToString(StatusCode::kInternal), "Internal");
}

TEST(ResultTest, HoldsValue) {
  Result<int> r = 42;
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(*r, 42);
  EXPECT_TRUE(r.status().ok());
}

TEST(ResultTest, HoldsError) {
  Result<int> r = Status::InvalidArgument("nope");
  EXPECT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), StatusCode::kInvalidArgument);
}

Result<int> Doubled(Result<int> in) {
  FMTK_ASSIGN_OR_RETURN(int v, std::move(in));
  return 2 * v;
}

TEST(ResultTest, AssignOrReturnPropagates) {
  EXPECT_EQ(*Doubled(21), 42);
  Result<int> err = Doubled(Status::Internal("x"));
  EXPECT_FALSE(err.ok());
  EXPECT_EQ(err.status().code(), StatusCode::kInternal);
}

TEST(ResultTest, MoveOnlyValue) {
  Result<std::unique_ptr<int>> r = std::make_unique<int>(7);
  ASSERT_TRUE(r.ok());
  std::unique_ptr<int> v = std::move(r).value();
  EXPECT_EQ(*v, 7);
}

TEST(HashTest, VectorHashDiscriminates) {
  VectorHash<int> h;
  EXPECT_NE(h({1, 2, 3}), h({3, 2, 1}));
  EXPECT_EQ(h({1, 2, 3}), h({1, 2, 3}));
  EXPECT_NE(h({}), h({0}));
}

TEST(HashTest, PairHash) {
  PairHash<int, int> h;
  EXPECT_NE(h({1, 2}), h({2, 1}));
  EXPECT_EQ(h({5, 9}), h({5, 9}));
}

TEST(StringUtilTest, Join) {
  EXPECT_EQ(Join({}, ","), "");
  EXPECT_EQ(Join({"a"}, ","), "a");
  EXPECT_EQ(Join({"a", "b", "c"}, ", "), "a, b, c");
}

TEST(StringUtilTest, Split) {
  EXPECT_EQ(Split("a,b,c", ',').size(), 3u);
  EXPECT_EQ(Split("a,,c", ',')[1], "");
  EXPECT_EQ(Split("", ',').size(), 1u);
}

TEST(StringUtilTest, StripWhitespace) {
  EXPECT_EQ(StripWhitespace("  x y  "), "x y");
  EXPECT_EQ(StripWhitespace(""), "");
  EXPECT_EQ(StripWhitespace(" \t\n"), "");
}

TEST(StringUtilTest, StartsWith) {
  EXPECT_TRUE(StartsWith("forall x", "forall"));
  EXPECT_FALSE(StartsWith("for", "forall"));
}

// --- The shared JSON writer (base/json_out.h, PR 9) -------------------------
// One escaper for every --json surface (lint, diagnostics, --explain, the
// query server): correctness here is what keeps `fmtk_lint --json | jq`
// from choking on a hostile query string.

TEST(JsonOutTest, PlainAsciiPassesThrough) {
  EXPECT_EQ(JsonQuote("hello world"), "\"hello world\"");
  EXPECT_EQ(JsonQuote(""), "\"\"");
}

TEST(JsonOutTest, ShortEscapesForQuoteBackslashAndWhitespace) {
  EXPECT_EQ(JsonQuote("a\"b"), "\"a\\\"b\"");
  EXPECT_EQ(JsonQuote("a\\b"), "\"a\\\\b\"");
  EXPECT_EQ(JsonQuote("a\nb\tc\rd\be\ff"), "\"a\\nb\\tc\\rd\\be\\ff\"");
}

TEST(JsonOutTest, ControlCharactersBecomeUnicodeEscapes) {
  // The seed escaper passed these through raw, producing invalid JSON.
  EXPECT_EQ(JsonQuote(std::string("\x01", 1)), "\"\\u0001\"");
  EXPECT_EQ(JsonQuote(std::string("\x1f", 1)), "\"\\u001f\"");
  std::string with_nul = "a";
  with_nul += '\0';
  with_nul += 'b';
  EXPECT_EQ(JsonQuote(with_nul), "\"a\\u0000b\"");
}

TEST(JsonOutTest, ValidUtf8PassesThroughUnchanged) {
  EXPECT_EQ(JsonQuote("caf\xc3\xa9"), "\"caf\xc3\xa9\"");            // é
  EXPECT_EQ(JsonQuote("\xe2\x88\x80x"), "\"\xe2\x88\x80x\"");        // ∀x
  EXPECT_EQ(JsonQuote("\xf0\x9f\x98\x80"), "\"\xf0\x9f\x98\x80\"");  // 😀
}

TEST(JsonOutTest, InvalidUtf8BecomesReplacementCharacter) {
  const char* replacement = "\\ufffd";
  // Lone continuation byte.
  EXPECT_EQ(JsonQuote("\x80"), "\"" + std::string(replacement) + "\"");
  // Truncated two-byte sequence at end of string.
  EXPECT_EQ(JsonQuote("a\xc3"), "\"a" + std::string(replacement) + "\"");
  // Overlong encoding of '/'.
  EXPECT_EQ(JsonQuote("\xc0\xaf"),
            "\"" + std::string(replacement) + replacement + "\"");
  // UTF-8-encoded surrogate half (CESU-8) is not valid UTF-8.
  EXPECT_EQ(JsonQuote("\xed\xa0\x80"),
            "\"" + std::string(replacement) + replacement + replacement +
                "\"");
  // Codepoint above U+10FFFF.
  EXPECT_EQ(JsonQuote("\xf4\x90\x80\x80"),
            "\"" + std::string(replacement) + replacement + replacement +
                replacement + "\"");
  // Valid text resumes after the damage.
  EXPECT_EQ(JsonQuote("a\x80z"), "\"a" + std::string(replacement) + "z\"");
}

TEST(JsonOutTest, NumbersAreFiniteAndRoundTrip) {
  EXPECT_EQ(JsonNumber(0.0), "0");
  EXPECT_EQ(JsonNumber(1.5), "1.5");
  EXPECT_EQ(JsonNumber(-3.0), "-3");
  // NaN/inf are not representable in JSON; the writer clamps instead of
  // emitting tokens jq would reject.
  EXPECT_EQ(JsonNumber(std::nan("")), "0");
  EXPECT_NE(JsonNumber(std::numeric_limits<double>::infinity()).find("1e"),
            std::string::npos);
}

}  // namespace
}  // namespace fmtk
