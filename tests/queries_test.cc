#include <gtest/gtest.h>

#include "logic/parser.h"
#include "queries/boolean_query.h"
#include "queries/relation_query.h"
#include "structures/generators.h"
#include "structures/graph.h"

namespace fmtk {
namespace {

TEST(BooleanQueryTest, Even) {
  BooleanQuery even = BooleanQuery::Even();
  EXPECT_EQ(even.name(), "EVEN");
  EXPECT_TRUE(*even.Evaluate(MakeSet(0)));
  EXPECT_FALSE(*even.Evaluate(MakeSet(3)));
  EXPECT_TRUE(*even.Evaluate(MakeLinearOrder(4)));
}

TEST(BooleanQueryTest, Connectivity) {
  BooleanQuery conn = BooleanQuery::Connectivity();
  EXPECT_TRUE(*conn.Evaluate(MakeDirectedCycle(8)));
  EXPECT_FALSE(*conn.Evaluate(MakeDisjointCycles(2, 4)));
  EXPECT_TRUE(*conn.Evaluate(MakeEmptyGraph(1)));
  EXPECT_FALSE(*conn.Evaluate(MakeEmptyGraph(2)));
  // Wrong signature: error, not crash.
  EXPECT_FALSE(conn.Evaluate(MakeLinearOrder(3)).ok());
}

TEST(BooleanQueryTest, Acyclicity) {
  BooleanQuery acycl = BooleanQuery::Acyclicity();
  EXPECT_TRUE(*acycl.Evaluate(MakeDirectedPath(6)));
  EXPECT_FALSE(*acycl.Evaluate(MakeDirectedCycle(6)));
  EXPECT_TRUE(*acycl.Evaluate(MakeFullBinaryTree(3)));

  BooleanQuery dag = BooleanQuery::DirectedAcyclicity();
  EXPECT_TRUE(*dag.Evaluate(MakeDirectedPath(6)));
  EXPECT_TRUE(*dag.Evaluate(MakeGrid(3, 3)));   // Grid is a DAG...
  EXPECT_FALSE(*acycl.Evaluate(MakeGrid(3, 3)));  // ...but not a tree shape.
}

TEST(BooleanQueryTest, Completeness) {
  BooleanQuery complete = BooleanQuery::Completeness();
  EXPECT_TRUE(*complete.Evaluate(MakeCompleteGraph(5)));
  EXPECT_FALSE(*complete.Evaluate(MakeDirectedCycle(5)));
  EXPECT_TRUE(*complete.Evaluate(MakeCompleteGraph(0)));
  EXPECT_TRUE(*complete.Evaluate(MakeCompleteGraph(1)));
}

TEST(BooleanQueryTest, Tree) {
  BooleanQuery tree = BooleanQuery::Tree();
  EXPECT_TRUE(*tree.Evaluate(MakeFullBinaryTree(3)));
  EXPECT_TRUE(*tree.Evaluate(MakeDirectedPath(7)));
  EXPECT_FALSE(*tree.Evaluate(MakeDirectedCycle(7)));
  EXPECT_FALSE(*tree.Evaluate(MakePathPlusCycle(5)));  // Disconnected+cycle.
}

TEST(BooleanQueryTest, FromSentence) {
  BooleanQuery has_loop = BooleanQuery::FromSentence(
      "has-loop", *ParseFormula("exists x. E(x,x)"));
  EXPECT_TRUE(*has_loop.Evaluate(MakeDirectedCycle(1)));
  EXPECT_FALSE(*has_loop.Evaluate(MakeDirectedCycle(5)));
}

TEST(RelationQueryTest, TransitiveClosureMetadata) {
  RelationQuery tc = RelationQuery::TransitiveClosure();
  EXPECT_EQ(tc.name(), "TC");
  EXPECT_EQ(tc.arity(), 2u);
  Result<Relation> out = tc.Evaluate(MakeDirectedPath(4));
  ASSERT_TRUE(out.ok());
  EXPECT_EQ(out->size(), 6u);
}

TEST(RelationQueryTest, SameGenerationOnDag) {
  // SG follows the Datalog semantics on arbitrary graphs, not just trees:
  // diamond 0->1, 0->2, 1->3, 2->3.
  Structure dag(Signature::Graph(), 4);
  dag.AddTuple(0, {0, 1});
  dag.AddTuple(0, {0, 2});
  dag.AddTuple(0, {1, 3});
  dag.AddTuple(0, {2, 3});
  Result<Relation> sg = RelationQuery::SameGeneration().Evaluate(dag);
  ASSERT_TRUE(sg.ok());
  EXPECT_TRUE(sg->Contains({1, 2}));
  EXPECT_TRUE(sg->Contains({3, 3}));
  EXPECT_FALSE(sg->Contains({0, 3}));
}

TEST(RelationQueryTest, SameGenerationOnCycleSaturates) {
  // On a cycle the generations wrap: sg becomes pairs at equal distance
  // mod gcd considerations; on a 3-cycle every pair eventually appears at
  // the same generation iff reachable with equal-length paths.
  Structure c = MakeDirectedCycle(3);
  Result<Relation> sg = RelationQuery::SameGeneration().Evaluate(c);
  ASSERT_TRUE(sg.ok());
  // Only the diagonal: equal-length paths from the diagonal seeds stay
  // aligned (children are unique successors).
  EXPECT_EQ(sg->size(), 3u);
}

TEST(RelationQueryTest, FromFormula) {
  RelationQuery q = RelationQuery::FromFormula(
      "sym-edge", *ParseFormula("E(x,y) & E(y,x)"), {"x", "y"});
  EXPECT_EQ(q.arity(), 2u);
  Structure two = MakeDirectedCycle(2);  // 0->1, 1->0.
  Result<Relation> out = q.Evaluate(two);
  ASSERT_TRUE(out.ok());
  EXPECT_EQ(out->size(), 2u);
  Result<Relation> chain_out = q.Evaluate(MakeDirectedPath(4));
  ASSERT_TRUE(chain_out.ok());
  EXPECT_TRUE(chain_out->empty());
}

TEST(RelationQueryTest, MissingRelationIsError) {
  Result<Relation> out =
      RelationQuery::TransitiveClosure().Evaluate(MakeLinearOrder(3));
  EXPECT_FALSE(out.ok());
  EXPECT_EQ(out.status().code(), StatusCode::kSignatureMismatch);
}

}  // namespace
}  // namespace fmtk
