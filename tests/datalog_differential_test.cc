// Differential testing of the three Datalog evaluation strategies.
//
// Generates hundreds of random programs (1-3 IDB predicates, arities <= 3,
// repeated variables, body/head constants, occasional fact schemas) over
// random graphs and trees, then checks that the naive interpreter, the
// seed's per-position semi-naive interpreter, and the compiled indexed
// engine agree on every IDB relation. The compiled engine's standard delta
// decomposition must also never derive more tuples than the seed scheme
// (it derives each derivable combination exactly once; the seed scheme at
// least once), which is checked on every program and required to be strict
// somewhere on the multi-IDB-rule subset.
#include <gtest/gtest.h>

#include <cstdint>
#include <map>
#include <random>
#include <string>
#include <vector>

#include "base/parallel.h"
#include "datalog/evaluator.h"
#include "datalog/program.h"
#include "structures/generators.h"
#include "structures/relation.h"

namespace fmtk {
namespace {

// Bias arities low: mostly unary/binary, occasionally ternary.
std::size_t RandomArity(std::mt19937_64& rng) {
  const std::size_t roll = rng() % 10;
  if (roll < 4) {
    return 1;
  }
  return roll < 8 ? 2 : 3;
}

DlTerm RandomTerm(std::mt19937_64& rng) {
  // Small pool of variable names so repeated variables arise naturally;
  // constants stay in {0, 1}, inside every generated structure's domain.
  static const char* kVars[] = {"a", "b", "c", "d"};
  if (rng() % 10 == 0) {
    return DlTerm::Const(static_cast<Element>(rng() % 2));
  }
  return DlTerm::Var(kVars[rng() % 4]);
}

struct GeneratedProgram {
  DatalogProgram program;
  bool has_multi_idb_rule = false;
};

GeneratedProgram RandomProgram(std::mt19937_64& rng) {
  GeneratedProgram out;
  const std::size_t num_idb = 1 + rng() % 3;
  std::vector<std::string> idb_names;
  std::vector<std::size_t> idb_arity;
  for (std::size_t i = 0; i < num_idb; ++i) {
    idb_names.push_back("p" + std::to_string(i));
    idb_arity.push_back(RandomArity(rng));
  }
  for (std::size_t i = 0; i < num_idb; ++i) {
    const std::size_t num_rules = 1 + rng() % 2;
    for (std::size_t r = 0; r < num_rules; ++r) {
      DlRule rule;
      rule.head.predicate = idb_names[i];
      if (rng() % 10 == 0 && idb_arity[i] <= 2) {
        // Fact schema: head variables range over the whole domain.
        for (std::size_t c = 0; c < idb_arity[i]; ++c) {
          rule.head.terms.push_back(RandomTerm(rng));
        }
        out.program.AddRule(std::move(rule));
        continue;
      }
      const std::size_t num_atoms = 1 + rng() % 3;
      std::size_t idb_atoms = 0;
      std::vector<std::string> body_vars;
      for (std::size_t a = 0; a < num_atoms; ++a) {
        DlAtom atom;
        std::size_t arity = 2;
        if (rng() % 2 == 0) {
          atom.predicate = "E";
        } else {
          const std::size_t p = rng() % num_idb;
          atom.predicate = idb_names[p];
          arity = idb_arity[p];
          ++idb_atoms;
        }
        for (std::size_t c = 0; c < arity; ++c) {
          DlTerm t = RandomTerm(rng);
          if (t.is_variable) {
            body_vars.push_back(t.variable);
          }
          atom.terms.push_back(std::move(t));
        }
        rule.body.push_back(std::move(atom));
      }
      out.has_multi_idb_rule = out.has_multi_idb_rule || idb_atoms >= 2;
      for (std::size_t c = 0; c < idb_arity[i]; ++c) {
        // Range restriction: head variables must come from the body.
        if (body_vars.empty() || rng() % 10 == 0) {
          rule.head.terms.push_back(
              DlTerm::Const(static_cast<Element>(rng() % 2)));
        } else {
          rule.head.terms.push_back(
              DlTerm::Var(body_vars[rng() % body_vars.size()]));
        }
      }
      out.program.AddRule(std::move(rule));
    }
  }
  return out;
}

Structure RandomBase(std::mt19937_64& rng) {
  switch (rng() % 5) {
    case 0:
      return MakeRandomGraph(2 + rng() % 5, 0.2 + 0.2 * (rng() % 3), rng);
    case 1:
      return MakeFullBinaryTree(2);
    case 2:
      return MakeDirectedPath(2 + rng() % 5);
    case 3:
      return MakeDirectedCycle(2 + rng() % 5);
    default:
      // Includes self-loop graphs (m = 1); k >= 2 keeps the domain size
      // >= 2 so the generated constants {0, 1} always name elements.
      return MakeDisjointCycles(2 + rng() % 2, 1 + rng() % 3);
  }
}

TEST(DatalogDifferentialTest, RandomProgramsAgreeAcrossStrategies) {
  std::mt19937_64 rng(20260807);
  std::size_t multi_idb_programs = 0;
  std::size_t strictly_fewer = 0;
  for (std::size_t trial = 0; trial < 320; ++trial) {
    GeneratedProgram gen = RandomProgram(rng);
    ASSERT_TRUE(gen.program.Validate().ok())
        << "generator produced an invalid program:\n"
        << gen.program.ToString();
    Structure base = RandomBase(rng);
    SCOPED_TRACE("trial " + std::to_string(trial) + ", domain size " +
                 std::to_string(base.domain_size()) + ":\n" +
                 gen.program.ToString());

    DatalogStats seed_semi_stats;
    DatalogStats compiled_stats;
    Result<std::map<std::string, Relation>> naive =
        EvaluateDatalog(gen.program, base, DatalogStrategy::kNaive);
    Result<std::map<std::string, Relation>> seed_semi = EvaluateDatalog(
        gen.program, base, DatalogStrategy::kSeedSemiNaive, &seed_semi_stats);
    Result<std::map<std::string, Relation>> compiled = EvaluateDatalog(
        gen.program, base, DatalogStrategy::kSemiNaive, &compiled_stats);
    ASSERT_TRUE(naive.ok()) << naive.status().ToString();
    ASSERT_TRUE(seed_semi.ok()) << seed_semi.status().ToString();
    ASSERT_TRUE(compiled.ok()) << compiled.status().ToString();
    EXPECT_TRUE(*naive == *seed_semi);
    EXPECT_TRUE(*naive == *compiled);

    // The standard decomposition derives each derivable combination exactly
    // once; the seed's per-position scheme derives it at least once.
    EXPECT_LE(compiled_stats.tuples_derived, seed_semi_stats.tuples_derived);
    EXPECT_EQ(compiled_stats.tuples_new, seed_semi_stats.tuples_new);
    if (gen.has_multi_idb_rule) {
      ++multi_idb_programs;
      if (compiled_stats.tuples_derived < seed_semi_stats.tuples_derived) {
        ++strictly_fewer;
      }
    }

    if (trial % 10 == 0) {
      ParallelPolicy policy;
      policy.enabled = true;
      policy.num_threads = 3;
      policy.min_domain = 1;
      DatalogStats parallel_stats;
      Result<std::map<std::string, Relation>> parallel = EvaluateDatalog(
          gen.program, base, DatalogStrategy::kSemiNaive, &parallel_stats,
          policy);
      ASSERT_TRUE(parallel.ok()) << parallel.status().ToString();
      EXPECT_TRUE(*compiled == *parallel);
      EXPECT_EQ(compiled_stats.tuples_derived, parallel_stats.tuples_derived);
      EXPECT_EQ(compiled_stats.tuples_new, parallel_stats.tuples_new);
      EXPECT_EQ(compiled_stats.atom_visits, parallel_stats.atom_visits);
    }
  }
  // The generator must actually exercise the interesting shape: rules with
  // two or more IDB body atoms, where the seed scheme re-derives.
  EXPECT_GE(multi_idb_programs, 50u);
  EXPECT_GE(strictly_fewer, 10u);
}

}  // namespace
}  // namespace fmtk
