#include <gtest/gtest.h>

#include <cstdio>
#include <memory>
#include <random>
#include <string>

#include "analysis/diagnostics.h"
#include "structures/bulk_load.h"
#include "structures/generators.h"
#include "structures/io.h"

namespace fmtk {
namespace {

bool Has(const DiagnosticSink& sink, DiagCode code) {
  for (const Diagnostic& d : sink.diagnostics()) {
    if (d.code == code) {
      return true;
    }
  }
  return false;
}

TEST(StructureIoTest, ParseBasic) {
  Result<Structure> s = ParseStructure(R"(
    # a triangle
    domain 3
    relation E/2 { (0 1) (1 2) (2 0) }
  )");
  ASSERT_TRUE(s.ok()) << s.status().ToString();
  EXPECT_EQ(s->domain_size(), 3u);
  EXPECT_EQ(s->relation(0).size(), 3u);
  EXPECT_TRUE(s->relation(0).Contains({2, 0}));
}

TEST(StructureIoTest, ParseWithConstantsAndMultipleRelations) {
  Result<Structure> s = ParseStructure(
      "domain 4\n"
      "relation E/2 { (0 1) }\n"
      "relation P/1 { (2) (3) }\n"
      "constant root = 0\n");
  ASSERT_TRUE(s.ok()) << s.status().ToString();
  EXPECT_EQ(s->signature().relation_count(), 2u);
  EXPECT_EQ(s->signature().constant_count(), 1u);
  EXPECT_EQ(*s->constant(0), 0u);
  EXPECT_TRUE(s->relation(1).Contains({3}));
}

TEST(StructureIoTest, CommasInTuples) {
  Result<Structure> s =
      ParseStructure("domain 3 relation R/3 { (0, 1, 2) (2,1,0) }");
  ASSERT_TRUE(s.ok()) << s.status().ToString();
  EXPECT_EQ(s->relation(0).size(), 2u);
}

TEST(StructureIoTest, EmptyRelationAndEmptyDomain) {
  Result<Structure> s = ParseStructure("domain 0 relation E/2 { }");
  ASSERT_TRUE(s.ok());
  EXPECT_EQ(s->domain_size(), 0u);
  EXPECT_TRUE(s->relation(0).empty());
}

TEST(StructureIoTest, ZeroAryRelation) {
  Result<Structure> s = ParseStructure("domain 2 relation flag/0 { () }");
  ASSERT_TRUE(s.ok()) << s.status().ToString();
  EXPECT_TRUE(s->relation(0).Contains({}));
}

TEST(StructureIoTest, Errors) {
  EXPECT_FALSE(ParseStructure("relation E/2 { }").ok());      // No domain.
  EXPECT_FALSE(ParseStructure("domain 2 relation E/2 { (0 1").ok());
  EXPECT_FALSE(ParseStructure("domain 2 relation E/2 { (0 5) }").ok());
  EXPECT_FALSE(ParseStructure("domain 2 relation E/2 { (0) }").ok());
  EXPECT_FALSE(ParseStructure("domain 2 constant c = 7").ok());
  EXPECT_FALSE(ParseStructure("domain 2 banana").ok());
  EXPECT_FALSE(
      ParseStructure("domain 2 relation E/2 {} relation E/2 {}").ok());
}

TEST(StructureIoTest, RoundTripGenerators) {
  std::vector<Structure> panel;
  panel.push_back(MakeDirectedCycle(5));
  panel.push_back(MakeLinearOrder(4));
  panel.push_back(MakeFullBinaryTree(2));
  panel.push_back(MakeSet(3));
  for (const Structure& s : panel) {
    std::string text = SerializeStructure(s);
    Result<Structure> back = ParseStructure(text);
    ASSERT_TRUE(back.ok()) << text << "\n" << back.status().ToString();
    EXPECT_TRUE(*back == s) << text;
  }
}

TEST(StructureIoTest, RoundTripWithConstant) {
  auto sig = std::make_shared<Signature>();
  sig->AddRelation("E", 2).AddConstant("c");
  Structure s(sig, 3);
  s.AddTuple(0, {0, 2});
  s.SetConstant(0, 1);
  Result<Structure> back = ParseStructure(SerializeStructure(s));
  ASSERT_TRUE(back.ok());
  EXPECT_TRUE(*back == s);
}

TEST(StructureIoTest, OrderRelationNameSerializes) {
  // "<" must survive serialization (ParseWord accepts it).
  Structure order = MakeLinearOrder(3);
  Result<Structure> back = ParseStructure(SerializeStructure(order));
  ASSERT_TRUE(back.ok()) << SerializeStructure(order);
  EXPECT_TRUE(*back == order);
}

// ---------------------------------------------------------------------------
// Binary structure format ("FMTKBIN1").

TEST(BinaryIoTest, RoundTripPanel) {
  std::vector<Structure> panel;
  panel.push_back(MakeDirectedCycle(5));
  panel.push_back(MakeLinearOrder(4));
  panel.push_back(MakeFullBinaryTree(3));
  panel.push_back(MakeSet(3));
  panel.push_back(MakeGrid(3, 2));
  panel.push_back(MakeEmptyGraph(0));
  for (const Structure& s : panel) {
    Result<Structure> back = ParseStructureBinary(SerializeStructureBinary(s));
    ASSERT_TRUE(back.ok()) << back.status().ToString();
    EXPECT_TRUE(*back == s);
  }
}

TEST(BinaryIoTest, RoundTripRandomStructures) {
  // Property test: serialize/parse is the identity on random structures over
  // a mixed-arity signature with constants.
  auto sig = std::make_shared<Signature>();
  sig->AddRelation("E", 2).AddRelation("P", 1).AddRelation("T", 3).AddRelation(
      "flag", 0);
  sig->AddConstant("a").AddConstant("b");
  std::mt19937_64 rng(20260809);
  for (int trial = 0; trial < 20; ++trial) {
    const std::size_t n = 1 + rng() % 9;
    Structure s = MakeRandomStructure(sig, n, 0.3, rng);
    Result<Structure> back = ParseStructureBinary(SerializeStructureBinary(s));
    ASSERT_TRUE(back.ok()) << back.status().ToString();
    EXPECT_TRUE(*back == s) << s.ToString();
  }
}

TEST(BinaryIoTest, UninterpretedConstantSurvivesBinaryButNotText) {
  // The textual serializer can only write interpreted constants, so an
  // uninterpreted one falls out of the round-tripped signature. The binary
  // format records a presence byte per constant and is lossless.
  auto sig = std::make_shared<Signature>();
  sig->AddRelation("E", 2).AddConstant("c").AddConstant("d");
  Structure s(sig, 3);
  s.AddTuple(0, {0, 2});
  s.SetConstant(0, 1);  // "c" interpreted, "d" deliberately not.

  Result<Structure> text_back = ParseStructure(SerializeStructure(s));
  ASSERT_TRUE(text_back.ok());
  EXPECT_FALSE(*text_back == s);  // "d" was lost.

  Result<Structure> bin_back = ParseStructureBinary(SerializeStructureBinary(s));
  ASSERT_TRUE(bin_back.ok()) << bin_back.status().ToString();
  EXPECT_TRUE(*bin_back == s);
  EXPECT_FALSE(bin_back->constant(1).has_value());
}

TEST(BinaryIoTest, FileRoundTrip) {
  Structure s = MakeGrid(4, 3);
  const std::string path = ::testing::TempDir() + "/fmtk_bin_roundtrip.bin";
  ASSERT_TRUE(WriteStructureBinaryFile(s, path).ok());
  Result<Structure> back = ReadStructureBinaryFile(path);
  ASSERT_TRUE(back.ok()) << back.status().ToString();
  EXPECT_TRUE(*back == s);
  std::remove(path.c_str());
}

TEST(BinaryIoTest, TruncationAtEveryPrefixFailsCleanly) {
  // Chopping the byte stream anywhere must yield a structured error (FMTK201
  // truncation or FMTK202 bad magic), never a crash or a bogus structure.
  Structure s = MakeDirectedCycle(3);
  const std::string bytes = SerializeStructureBinary(s);
  for (std::size_t cut = 0; cut < bytes.size(); ++cut) {
    DiagnosticSink sink;
    Result<Structure> back =
        ParseStructureBinary(std::string_view(bytes).substr(0, cut), &sink);
    EXPECT_FALSE(back.ok()) << "cut at " << cut << " of " << bytes.size();
    EXPECT_TRUE(Has(sink, DiagCode::kIoTruncatedInput) ||
                Has(sink, DiagCode::kIoMalformedRecord))
        << "cut at " << cut;
  }
}

TEST(BinaryIoTest, BadMagicReportsMalformed) {
  DiagnosticSink sink;
  EXPECT_FALSE(ParseStructureBinary("GARBAGE!rest", &sink).ok());
  EXPECT_TRUE(Has(sink, DiagCode::kIoMalformedRecord));
}

TEST(BinaryIoTest, OutOfRangeElementReportsDiagnostic) {
  Structure s = MakeDirectedPath(2);  // Domain 2, one edge (0, 1).
  std::string bytes = SerializeStructureBinary(s);
  // Layout ends with: ... u32 e0, u32 e1, u32 constant_count. Corrupt the
  // second element (little-endian low byte) to 9 > domain 2.
  ASSERT_GE(bytes.size(), 12u);
  bytes[bytes.size() - 8] = 9;
  DiagnosticSink sink;
  EXPECT_FALSE(ParseStructureBinary(bytes, &sink).ok());
  EXPECT_TRUE(Has(sink, DiagCode::kIoElementOutOfRange)) << sink.ToText();
}

TEST(BinaryIoTest, TrailingBytesRejected) {
  std::string bytes = SerializeStructureBinary(MakeDirectedCycle(3));
  bytes += "x";
  DiagnosticSink sink;
  EXPECT_FALSE(ParseStructureBinary(bytes, &sink).ok());
  EXPECT_TRUE(Has(sink, DiagCode::kIoMalformedRecord));
}

// ---------------------------------------------------------------------------
// Edge-list loader failure paths.

TEST(EdgeListLoaderTest, TruncatedRecordReportsDiagnostic) {
  // A dangling source vertex with no target, both mid-file and at EOF.
  for (const char* text : {"0 1\n2\n3 4\n", "0 1\n2"}) {
    DiagnosticSink sink;
    Result<LoadedGraph> g = LoadEdgeListText(text, {}, &sink);
    EXPECT_FALSE(g.ok()) << text;
    EXPECT_TRUE(Has(sink, DiagCode::kIoTruncatedInput)) << text;
  }
}

TEST(EdgeListLoaderTest, MalformedRecordsReportDiagnostic) {
  EdgeListOptions numeric;
  numeric.id_mode = EdgeListOptions::IdMode::kNumeric;
  // Three fields, a non-numeric token, and a value beyond 32 bits.
  for (const char* text : {"0 1 2\n", "0 x\n", "0 99999999999\n"}) {
    DiagnosticSink sink;
    Result<LoadedGraph> g = LoadEdgeListText(text, numeric, &sink);
    EXPECT_FALSE(g.ok()) << text;
    EXPECT_TRUE(Has(sink, DiagCode::kIoMalformedRecord)) << text;
  }
}

TEST(EdgeListLoaderTest, OutOfRangeIdReportsDiagnostic) {
  EdgeListOptions numeric;
  numeric.id_mode = EdgeListOptions::IdMode::kNumeric;
  numeric.domain_size = 4;
  DiagnosticSink sink;
  Result<LoadedGraph> g = LoadEdgeListText("0 1\n2 7\n", numeric, &sink);
  EXPECT_FALSE(g.ok());
  EXPECT_TRUE(Has(sink, DiagCode::kIoElementOutOfRange));
}

TEST(EdgeListLoaderTest, DuplicateEdgesLoadWithWarning) {
  DiagnosticSink sink;
  Result<LoadedGraph> g =
      LoadEdgeListText("a b\nb c\na b\n", {}, &sink);
  ASSERT_TRUE(g.ok()) << g.status().ToString();
  EXPECT_TRUE(Has(sink, DiagCode::kIoDuplicateTuple));
  EXPECT_FALSE(sink.has_errors());
  EXPECT_EQ(g->stats.records, 3u);
  EXPECT_EQ(g->stats.edges, 2u);
  EXPECT_EQ(g->stats.duplicates, 1u);
}

TEST(EdgeListLoaderTest, EmptyRelationLoadsWithWarning) {
  DiagnosticSink sink;
  Result<LoadedGraph> g =
      LoadEdgeListText("# comments only\n\n% more\n", {}, &sink);
  ASSERT_TRUE(g.ok()) << g.status().ToString();
  EXPECT_TRUE(Has(sink, DiagCode::kIoEmptyRelation));
  EXPECT_FALSE(sink.has_errors());
  EXPECT_EQ(g->structure.relation(0).size(), 0u);
}

TEST(EdgeListLoaderTest, MissingFileFails) {
  EXPECT_FALSE(LoadEdgeListFile("/nonexistent/fmtk_no_such_file.txt").ok());
}

TEST(EdgeListLoaderTest, TruncatedFileOnDiskReportsDiagnostic) {
  const std::string path = ::testing::TempDir() + "/fmtk_truncated_edges.txt";
  std::FILE* f = std::fopen(path.c_str(), "wb");
  ASSERT_NE(f, nullptr);
  std::fputs("0 1\n1 2\n3", f);  // Dangling final record, no newline.
  std::fclose(f);
  DiagnosticSink sink;
  EXPECT_FALSE(LoadEdgeListFile(path, {}, &sink).ok());
  EXPECT_TRUE(Has(sink, DiagCode::kIoTruncatedInput));
  std::remove(path.c_str());
}

}  // namespace
}  // namespace fmtk
