#include <gtest/gtest.h>

#include "structures/generators.h"
#include "structures/io.h"

namespace fmtk {
namespace {

TEST(StructureIoTest, ParseBasic) {
  Result<Structure> s = ParseStructure(R"(
    # a triangle
    domain 3
    relation E/2 { (0 1) (1 2) (2 0) }
  )");
  ASSERT_TRUE(s.ok()) << s.status().ToString();
  EXPECT_EQ(s->domain_size(), 3u);
  EXPECT_EQ(s->relation(0).size(), 3u);
  EXPECT_TRUE(s->relation(0).Contains({2, 0}));
}

TEST(StructureIoTest, ParseWithConstantsAndMultipleRelations) {
  Result<Structure> s = ParseStructure(
      "domain 4\n"
      "relation E/2 { (0 1) }\n"
      "relation P/1 { (2) (3) }\n"
      "constant root = 0\n");
  ASSERT_TRUE(s.ok()) << s.status().ToString();
  EXPECT_EQ(s->signature().relation_count(), 2u);
  EXPECT_EQ(s->signature().constant_count(), 1u);
  EXPECT_EQ(*s->constant(0), 0u);
  EXPECT_TRUE(s->relation(1).Contains({3}));
}

TEST(StructureIoTest, CommasInTuples) {
  Result<Structure> s =
      ParseStructure("domain 3 relation R/3 { (0, 1, 2) (2,1,0) }");
  ASSERT_TRUE(s.ok()) << s.status().ToString();
  EXPECT_EQ(s->relation(0).size(), 2u);
}

TEST(StructureIoTest, EmptyRelationAndEmptyDomain) {
  Result<Structure> s = ParseStructure("domain 0 relation E/2 { }");
  ASSERT_TRUE(s.ok());
  EXPECT_EQ(s->domain_size(), 0u);
  EXPECT_TRUE(s->relation(0).empty());
}

TEST(StructureIoTest, ZeroAryRelation) {
  Result<Structure> s = ParseStructure("domain 2 relation flag/0 { () }");
  ASSERT_TRUE(s.ok()) << s.status().ToString();
  EXPECT_TRUE(s->relation(0).Contains({}));
}

TEST(StructureIoTest, Errors) {
  EXPECT_FALSE(ParseStructure("relation E/2 { }").ok());      // No domain.
  EXPECT_FALSE(ParseStructure("domain 2 relation E/2 { (0 1").ok());
  EXPECT_FALSE(ParseStructure("domain 2 relation E/2 { (0 5) }").ok());
  EXPECT_FALSE(ParseStructure("domain 2 relation E/2 { (0) }").ok());
  EXPECT_FALSE(ParseStructure("domain 2 constant c = 7").ok());
  EXPECT_FALSE(ParseStructure("domain 2 banana").ok());
  EXPECT_FALSE(
      ParseStructure("domain 2 relation E/2 {} relation E/2 {}").ok());
}

TEST(StructureIoTest, RoundTripGenerators) {
  std::vector<Structure> panel;
  panel.push_back(MakeDirectedCycle(5));
  panel.push_back(MakeLinearOrder(4));
  panel.push_back(MakeFullBinaryTree(2));
  panel.push_back(MakeSet(3));
  for (const Structure& s : panel) {
    std::string text = SerializeStructure(s);
    Result<Structure> back = ParseStructure(text);
    ASSERT_TRUE(back.ok()) << text << "\n" << back.status().ToString();
    EXPECT_TRUE(*back == s) << text;
  }
}

TEST(StructureIoTest, RoundTripWithConstant) {
  auto sig = std::make_shared<Signature>();
  sig->AddRelation("E", 2).AddConstant("c");
  Structure s(sig, 3);
  s.AddTuple(0, {0, 2});
  s.SetConstant(0, 1);
  Result<Structure> back = ParseStructure(SerializeStructure(s));
  ASSERT_TRUE(back.ok());
  EXPECT_TRUE(*back == s);
}

TEST(StructureIoTest, OrderRelationNameSerializes) {
  // "<" must survive serialization (ParseWord accepts it).
  Structure order = MakeLinearOrder(3);
  Result<Structure> back = ParseStructure(SerializeStructure(order));
  ASSERT_TRUE(back.ok()) << SerializeStructure(order);
  EXPECT_TRUE(*back == order);
}

}  // namespace
}  // namespace fmtk
