#include "core/games/game_engine.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <cstdint>
#include <map>
#include <optional>
#include <random>
#include <utility>
#include <vector>

#include "core/games/ef_game.h"
#include "core/games/pebble_game.h"
#include "core/types/rank_type.h"
#include "structures/generators.h"
#include "structures/isomorphism.h"

namespace fmtk {
namespace {

// ---------------------------------------------------------------------------
// Brute-force oracles. These replicate the seed solvers' search exactly —
// full IsPartialIsomorphism revalidation at every node, no symmetry pruning,
// every spoiler move and duplicator response enumerated — but key the memo
// on (rounds, position) pairs directly so the oracle itself has no
// truncation bug. They are the ground truth for the differential tests.
// ---------------------------------------------------------------------------

class BruteForceEf {
 public:
  BruteForceEf(const Structure& a, const Structure& b) : a_(a), b_(b) {}

  bool DuplicatorWins(std::size_t rounds, const PartialMap& initial = {}) {
    PartialMap position = initial;
    for (std::size_t c = 0; c < a_.signature().constant_count(); ++c) {
      std::optional<Element> ca = a_.constant(c);
      std::optional<Element> cb = b_.constant(c);
      if (ca.has_value() != cb.has_value()) {
        return false;
      }
      if (ca.has_value()) {
        position.emplace_back(*ca, *cb);
      }
    }
    return Wins(rounds, std::move(position));
  }

 private:
  static bool Pinned(const PartialMap& map, bool in_a, Element e) {
    for (const auto& [x, y] : map) {
      if ((in_a ? x : y) == e) {
        return true;
      }
    }
    return false;
  }

  bool Wins(std::size_t rounds, PartialMap position) {
    std::sort(position.begin(), position.end());
    position.erase(std::unique(position.begin(), position.end()),
                   position.end());
    if (!IsPartialIsomorphism(a_, b_, position)) {
      return false;
    }
    if (rounds == 0) {
      return true;
    }
    auto key = std::make_pair(rounds, position);
    auto it = memo_.find(key);
    if (it != memo_.end()) {
      return it->second;
    }
    bool duplicator_wins = true;
    for (int side = 0; side < 2 && duplicator_wins; ++side) {
      const bool in_a = (side == 0);
      const Structure& from = in_a ? a_ : b_;
      const Structure& to = in_a ? b_ : a_;
      for (Element s = 0; s < from.domain_size() && duplicator_wins; ++s) {
        if (Pinned(position, in_a, s)) {
          continue;
        }
        bool has_response = false;
        for (Element d = 0; d < to.domain_size() && !has_response; ++d) {
          PartialMap next = position;
          next.emplace_back(in_a ? s : d, in_a ? d : s);
          has_response = Wins(rounds - 1, std::move(next));
        }
        duplicator_wins = has_response;
      }
    }
    memo_.emplace(std::move(key), duplicator_wins);
    return duplicator_wins;
  }

  const Structure& a_;
  const Structure& b_;
  std::map<std::pair<std::size_t, PartialMap>, bool> memo_;
};

class BruteForcePebble {
 public:
  using Board = std::vector<std::optional<std::pair<Element, Element>>>;

  BruteForcePebble(const Structure& a, const Structure& b,
                   std::size_t pebbles)
      : a_(a), b_(b), pebbles_(pebbles) {}

  bool DuplicatorWins(std::size_t rounds) {
    return Wins(rounds, Board(pebbles_));
  }

 private:
  bool BoardIsPartialIso(const Board& board) const {
    PartialMap map;
    for (const auto& placement : board) {
      if (placement.has_value()) {
        map.push_back(*placement);
      }
    }
    for (std::size_t c = 0; c < a_.signature().constant_count(); ++c) {
      std::optional<Element> ca = a_.constant(c);
      std::optional<Element> cb = b_.constant(c);
      if (ca.has_value() != cb.has_value()) {
        return false;
      }
      if (ca.has_value()) {
        map.emplace_back(*ca, *cb);
      }
    }
    return IsPartialIsomorphism(a_, b_, map);
  }

  bool Wins(std::size_t rounds, const Board& board) {
    if (!BoardIsPartialIso(board)) {
      return false;
    }
    if (rounds == 0) {
      return true;
    }
    auto key = std::make_pair(rounds, board);
    auto it = memo_.find(key);
    if (it != memo_.end()) {
      return it->second;
    }
    bool duplicator_wins = true;
    for (std::size_t p = 0; p < pebbles_ && duplicator_wins; ++p) {
      for (int side = 0; side < 2 && duplicator_wins; ++side) {
        const bool in_a = (side == 0);
        const Structure& from = in_a ? a_ : b_;
        const Structure& to = in_a ? b_ : a_;
        for (Element s = 0; s < from.domain_size() && duplicator_wins; ++s) {
          bool has_response = false;
          for (Element d = 0; d < to.domain_size() && !has_response; ++d) {
            Board next = board;
            next[p] = in_a ? std::make_pair(s, d) : std::make_pair(d, s);
            has_response = Wins(rounds - 1, next);
          }
          duplicator_wins = has_response;
        }
      }
    }
    memo_.emplace(std::move(key), duplicator_wins);
    return duplicator_wins;
  }

  const Structure& a_;
  const Structure& b_;
  std::size_t pebbles_;
  std::map<std::pair<std::size_t, Board>, bool> memo_;
};

// A signature exercising every feature the engine special-cases: a nullary
// relation (invisible to incremental checks), a unary one, a binary one,
// and a constant (swap-class singletons, seeded positions).
std::shared_ptr<const Signature> RichSignature() {
  auto sig = std::make_shared<Signature>();
  sig->AddRelation("Q", 0).AddRelation("P", 1).AddRelation("E", 2).AddConstant(
      "c");
  return sig;
}

// ---------------------------------------------------------------------------
// Differential tests: the optimized solver vs the brute-force oracle on
// fixed-seed random pairs. 500 EF pairs total across the three EF tests.
// ---------------------------------------------------------------------------

TEST(EfDifferentialTest, RandomGraphPairsMatchBruteForce) {
  std::mt19937_64 rng(20260807);
  RankTypeIndex rank_index;
  for (int trial = 0; trial < 300; ++trial) {
    const std::size_t na = 1 + rng() % 5;
    const std::size_t nb = 1 + rng() % 5;
    const double p = 0.1 + 0.8 * (static_cast<double>(rng() % 1000) / 1000.0);
    Structure a = MakeRandomGraph(na, p, rng);
    Structure b = MakeRandomGraph(nb, p, rng);
    const std::size_t rounds = rng() % 4;
    BruteForceEf oracle(a, b);
    EfGameSolver solver(a, b);
    Result<bool> fast = solver.DuplicatorWins(rounds);
    ASSERT_TRUE(fast.ok()) << fast.status().ToString();
    EXPECT_EQ(*fast, oracle.DuplicatorWins(rounds))
        << "trial " << trial << " rounds " << rounds << "\nA: " << a.ToString()
        << "\nB: " << b.ToString();
    if (trial % 20 == 0) {
      // Cross-validate against the fundamental theorem: the game value must
      // equal rank-type equivalence.
      EXPECT_EQ(*fast, rank_index.EquivalentUpToRank(a, b, rounds))
          << "trial " << trial;
    }
  }
}

TEST(EfDifferentialTest, RichSignaturePairsMatchBruteForce) {
  // Nullary relations, unary predicates, and constants all in play.
  std::mt19937_64 rng(424242);
  auto sig = RichSignature();
  for (int trial = 0; trial < 100; ++trial) {
    const std::size_t na = 1 + rng() % 4;
    const std::size_t nb = 1 + rng() % 4;
    Structure a = MakeRandomStructure(sig, na, 0.4, rng);
    Structure b = MakeRandomStructure(sig, nb, 0.4, rng);
    const std::size_t rounds = rng() % 4;
    BruteForceEf oracle(a, b);
    EfGameSolver solver(a, b);
    Result<bool> fast = solver.DuplicatorWins(rounds);
    ASSERT_TRUE(fast.ok()) << fast.status().ToString();
    EXPECT_EQ(*fast, oracle.DuplicatorWins(rounds))
        << "trial " << trial << " rounds " << rounds << "\nA: " << a.ToString()
        << "\nB: " << b.ToString();
  }
}

TEST(EfDifferentialTest, InitialPositionsMatchBruteForce) {
  // Random (possibly broken) initial positions exercise BuildPosition.
  std::mt19937_64 rng(7777);
  for (int trial = 0; trial < 100; ++trial) {
    const std::size_t na = 2 + rng() % 4;
    const std::size_t nb = 2 + rng() % 4;
    Structure a = MakeRandomGraph(na, 0.5, rng);
    Structure b = MakeRandomGraph(nb, 0.5, rng);
    PartialMap initial;
    const std::size_t pairs = rng() % 3;
    for (std::size_t i = 0; i < pairs; ++i) {
      initial.emplace_back(static_cast<Element>(rng() % na),
                           static_cast<Element>(rng() % nb));
    }
    const std::size_t rounds = rng() % 3;
    BruteForceEf oracle(a, b);
    EfGameSolver solver(a, b);
    Result<bool> fast = solver.DuplicatorWins(rounds, initial);
    ASSERT_TRUE(fast.ok()) << fast.status().ToString();
    EXPECT_EQ(*fast, oracle.DuplicatorWins(rounds, initial))
        << "trial " << trial << " rounds " << rounds << "\nA: " << a.ToString()
        << "\nB: " << b.ToString();
  }
}

TEST(PebbleDifferentialTest, RandomPairsMatchBruteForce) {
  std::mt19937_64 rng(31337);
  for (int trial = 0; trial < 120; ++trial) {
    const std::size_t na = 1 + rng() % 4;
    const std::size_t nb = 1 + rng() % 4;
    Structure a = MakeRandomGraph(na, 0.45, rng);
    Structure b = MakeRandomGraph(nb, 0.45, rng);
    const std::size_t pebbles = 1 + rng() % 3;
    const std::size_t rounds = rng() % 4;
    BruteForcePebble oracle(a, b, pebbles);
    PebbleGameSolver solver(a, b, pebbles);
    Result<bool> fast = solver.DuplicatorWins(rounds);
    ASSERT_TRUE(fast.ok()) << fast.status().ToString();
    EXPECT_EQ(*fast, oracle.DuplicatorWins(rounds))
        << "trial " << trial << " pebbles " << pebbles << " rounds " << rounds
        << "\nA: " << a.ToString() << "\nB: " << b.ToString();
  }
}

TEST(PebbleDifferentialTest, RichSignaturePairsMatchBruteForce) {
  std::mt19937_64 rng(90210);
  auto sig = RichSignature();
  for (int trial = 0; trial < 60; ++trial) {
    const std::size_t na = 1 + rng() % 3;
    const std::size_t nb = 1 + rng() % 3;
    Structure a = MakeRandomStructure(sig, na, 0.4, rng);
    Structure b = MakeRandomStructure(sig, nb, 0.4, rng);
    const std::size_t pebbles = 1 + rng() % 2;
    const std::size_t rounds = rng() % 4;
    BruteForcePebble oracle(a, b, pebbles);
    PebbleGameSolver solver(a, b, pebbles);
    Result<bool> fast = solver.DuplicatorWins(rounds);
    ASSERT_TRUE(fast.ok()) << fast.status().ToString();
    EXPECT_EQ(*fast, oracle.DuplicatorWins(rounds))
        << "trial " << trial << " pebbles " << pebbles << " rounds " << rounds
        << "\nA: " << a.ToString() << "\nB: " << b.ToString();
  }
}

// ---------------------------------------------------------------------------
// Parallel fan-out: verdicts must match the sequential search.
// ---------------------------------------------------------------------------

EfOptions ParallelOptions() {
  EfOptions options;
  options.parallel.enabled = true;
  options.parallel.num_threads = 4;
  options.parallel.min_domain = 1;  // Fan out even tiny root move lists.
  return options;
}

TEST(ParallelGameTest, EfParallelVerdictsMatchSequential) {
  std::vector<std::pair<Structure, Structure>> pairs;
  pairs.emplace_back(MakeLinearOrder(7), MakeLinearOrder(8));
  pairs.emplace_back(MakeDirectedCycle(5), MakeDirectedCycle(6));
  pairs.emplace_back(MakeSet(3), MakeSet(4));
  std::mt19937_64 rng(5150);
  for (int i = 0; i < 12; ++i) {
    pairs.emplace_back(MakeRandomGraph(4, 0.4, rng),
                       MakeRandomGraph(4, 0.4, rng));
  }
  for (const auto& [a, b] : pairs) {
    for (std::size_t rounds = 0; rounds <= 3; ++rounds) {
      EfGameSolver sequential(a, b);
      EfGameSolver parallel(a, b, ParallelOptions());
      Result<bool> want = sequential.DuplicatorWins(rounds);
      Result<bool> got = parallel.DuplicatorWins(rounds);
      ASSERT_TRUE(want.ok()) << want.status().ToString();
      ASSERT_TRUE(got.ok()) << got.status().ToString();
      EXPECT_EQ(*got, *want) << "rounds " << rounds << "\nA: " << a.ToString()
                             << "\nB: " << b.ToString();
    }
  }
}

TEST(ParallelGameTest, PebbleParallelVerdictsMatchSequential) {
  std::vector<std::pair<Structure, Structure>> pairs;
  pairs.emplace_back(MakeDirectedCycle(5), MakeDirectedCycle(6));
  pairs.emplace_back(MakeSet(2), MakeSet(3));
  std::mt19937_64 rng(8086);
  for (int i = 0; i < 8; ++i) {
    pairs.emplace_back(MakeRandomGraph(4, 0.4, rng),
                       MakeRandomGraph(4, 0.4, rng));
  }
  for (const auto& [a, b] : pairs) {
    for (std::size_t rounds = 0; rounds <= 4; ++rounds) {
      PebbleGameSolver sequential(a, b, 2);
      PebbleGameSolver parallel(a, b, 2);
      ParallelPolicy policy;
      policy.enabled = true;
      policy.num_threads = 4;
      policy.min_domain = 1;
      parallel.set_parallel(policy);
      Result<bool> want = sequential.DuplicatorWins(rounds);
      Result<bool> got = parallel.DuplicatorWins(rounds);
      ASSERT_TRUE(want.ok()) << want.status().ToString();
      ASSERT_TRUE(got.ok()) << got.status().ToString();
      EXPECT_EQ(*got, *want) << "rounds " << rounds << "\nA: " << a.ToString()
                             << "\nB: " << b.ToString();
    }
  }
}

TEST(ParallelGameTest, ParallelNodeCapStillSurfacesResourceExhausted) {
  // A duplicator-win instance: no refutation exists to race the error, so
  // the cap must surface even in parallel mode.
  Structure a = MakeSet(4);
  Structure b = MakeSet(5);
  EfOptions options = ParallelOptions();
  options.max_nodes = 3;
  EfGameSolver solver(a, b, options);
  Result<bool> r = solver.DuplicatorWins(3);
  ASSERT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), StatusCode::kResourceExhausted);
}

// ---------------------------------------------------------------------------
// Node-cap (ResourceExhausted) paths of the rebuilt search.
// ---------------------------------------------------------------------------

TEST(NodeCapTest, EfSequentialCap) {
  Structure a = MakeDirectedCycle(6);
  Structure b = MakeDirectedCycle(7);
  EfOptions options;
  options.max_nodes = 10;
  EfGameSolver solver(a, b, options);
  Result<bool> r = solver.DuplicatorWins(4);
  ASSERT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), StatusCode::kResourceExhausted);
}

TEST(NodeCapTest, PebbleSequentialCap) {
  Structure a = MakeDirectedCycle(5);
  Structure b = MakeDirectedCycle(6);
  PebbleGameSolver solver(a, b, 2, /*max_nodes=*/5);
  Result<bool> r = solver.DuplicatorWins(4);
  ASSERT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), StatusCode::kResourceExhausted);
}

// ---------------------------------------------------------------------------
// Search-statistics behavior: the counters exist and the pruning bites.
// ---------------------------------------------------------------------------

TEST(GameStatsTest, LinearOrderNodesDropAtLeastFiveFold) {
  // The seed solver expands 10125 positions deciding L7 vs L8 at 3 rounds
  // (measured; see EXPERIMENTS.md E16). The acceptance bar for the rebuilt
  // engine is a >= 5x reduction.
  Structure a = MakeLinearOrder(7);
  Structure b = MakeLinearOrder(8);
  EfGameSolver solver(a, b);
  Result<bool> r = solver.DuplicatorWins(3);
  ASSERT_TRUE(r.ok());
  EXPECT_TRUE(*r);
  EXPECT_GT(solver.stats().nodes_explored, 0u);
  EXPECT_LE(solver.stats().nodes_explored, 10125u / 5);
}

TEST(GameStatsTest, SwapClassPruningCollapsesSets) {
  // On pure sets every element is interchangeable: one swap class per side,
  // so the root expands a single spoiler representative and prunes the rest.
  Structure a = MakeSet(5);
  Structure b = MakeSet(6);
  EfGameSolver solver(a, b);
  Result<bool> r = solver.DuplicatorWins(3);
  ASSERT_TRUE(r.ok());
  EXPECT_TRUE(*r);
  EXPECT_GT(solver.stats().moves_pruned, 0u);
  // 3 rounds on interchangeable elements: a handful of real positions.
  EXPECT_LE(solver.stats().nodes_explored, 32u);
}

TEST(GameStatsTest, IterativeDeepeningHitsTheSharedTable) {
  Structure a = MakeDirectedCycle(5);
  Structure b = MakeDirectedCycle(6);
  EfGameSolver solver(a, b);
  Result<std::optional<std::size_t>> needed = solver.SpoilerNeeds(4);
  ASSERT_TRUE(needed.ok());
  ASSERT_TRUE(needed->has_value());
  EXPECT_EQ(**needed, 3u);
  EXPECT_GT(solver.stats().table_hits, 0u);
}

TEST(GameStatsTest, PebbleStatsAccumulate) {
  Structure a = MakeDirectedCycle(5);
  Structure b = MakeDirectedCycle(6);
  PebbleGameSolver solver(a, b, 2);
  Result<bool> r = solver.DuplicatorWins(4);
  ASSERT_TRUE(r.ok());
  EXPECT_GT(solver.stats().nodes_explored, 0u);
  EXPECT_GT(solver.stats().moves_pruned, 0u);
  EXPECT_EQ(solver.nodes_explored(), solver.stats().nodes_explored);
}

// ---------------------------------------------------------------------------
// game_engine primitives.
// ---------------------------------------------------------------------------

TEST(SwapClassTest, SetsCollapseToOneClass) {
  Structure s = MakeSet(4);
  auto occ = game_engine::BuildOccurrenceLists(s);
  std::uint32_t count = 0;
  std::vector<std::uint32_t> classes = game_engine::SwapClasses(s, occ, &count);
  EXPECT_EQ(count, 1u);
  for (std::uint32_t c : classes) {
    EXPECT_EQ(c, classes[0]);
  }
}

TEST(SwapClassTest, LinearOrderHasSingletonClasses) {
  Structure s = MakeLinearOrder(3);
  auto occ = game_engine::BuildOccurrenceLists(s);
  std::uint32_t count = 0;
  std::vector<std::uint32_t> classes = game_engine::SwapClasses(s, occ, &count);
  EXPECT_EQ(count, 3u);
}

TEST(SwapClassTest, DirectedCycleSwapsAreNotAutomorphisms) {
  // Rotations are automorphisms of a directed cycle but transpositions are
  // not, so swap classes stay singletons (the pruning must not over-merge).
  Structure s = MakeDirectedCycle(4);
  auto occ = game_engine::BuildOccurrenceLists(s);
  std::uint32_t count = 0;
  game_engine::SwapClasses(s, occ, &count);
  EXPECT_EQ(count, 4u);
}

TEST(SwapClassTest, ConstantsGetSingletonClasses) {
  auto sig = std::make_shared<Signature>();
  sig->AddConstant("c");
  Structure s(sig, 4);  // A 4-element set with one named point.
  s.SetConstant(0, 1);
  auto occ = game_engine::BuildOccurrenceLists(s);
  std::uint32_t count = 0;
  std::vector<std::uint32_t> classes = game_engine::SwapClasses(s, occ, &count);
  // {1} is pinned by the constant; {0, 2, 3} are interchangeable.
  EXPECT_EQ(count, 2u);
  EXPECT_NE(classes[1], classes[0]);
  EXPECT_EQ(classes[0], classes[2]);
  EXPECT_EQ(classes[0], classes[3]);
}

TEST(PositionStateTest, IncrementalChecksMatchFullValidation) {
  Structure a = MakeDirectedPath(3);  // 0 -> 1 -> 2
  Structure b = MakeDirectedCycle(3);
  auto occ_a = game_engine::BuildOccurrenceLists(a);
  auto occ_b = game_engine::BuildOccurrenceLists(b);
  game_engine::ZobristTable zobrist(a.domain_size(), b.domain_size());
  game_engine::PositionState state(a, b, &occ_a, &occ_b, &zobrist);

  EXPECT_TRUE(state.TryAdd(0, 0));
  // 0 -> 1 in the path, 0 -> 1 in the cycle: edge preserved both ways.
  EXPECT_TRUE(state.TryAdd(1, 1));
  // Path has no edge 2 -> 0, cycle has 2 -> 0: adding (2, 2) must fail.
  EXPECT_FALSE(state.TryAdd(2, 2));
  PartialMap broken = {{0, 0}, {1, 1}, {2, 2}};
  EXPECT_FALSE(IsPartialIsomorphism(a, b, broken));

  // Injectivity and functionality rejections.
  EXPECT_FALSE(state.TryAdd(2, 1));  // 1 already has a preimage.
  EXPECT_FALSE(state.TryAdd(0, 2));  // 0 already has an image.
  // Replaying an existing pair bumps the count, leaves the hash alone.
  const std::uint64_t h = state.hash();
  EXPECT_TRUE(state.TryAdd(0, 0));
  EXPECT_EQ(state.hash(), h);
  EXPECT_EQ(state.CountOfA(0), 2u);
  state.Remove(0, 0);
  EXPECT_EQ(state.hash(), h);
  EXPECT_TRUE(state.PinnedInA(0));
}

TEST(PositionStateTest, HashIsOrderInsensitiveAndRestoredByRemove) {
  Structure a = MakeSet(3);
  Structure b = MakeSet(3);
  auto occ_a = game_engine::BuildOccurrenceLists(a);
  auto occ_b = game_engine::BuildOccurrenceLists(b);
  game_engine::ZobristTable zobrist(3, 3);
  game_engine::PositionState s1(a, b, &occ_a, &occ_b, &zobrist);
  game_engine::PositionState s2(a, b, &occ_a, &occ_b, &zobrist);
  EXPECT_TRUE(s1.TryAdd(0, 1));
  EXPECT_TRUE(s1.TryAdd(2, 0));
  EXPECT_TRUE(s2.TryAdd(2, 0));
  EXPECT_TRUE(s2.TryAdd(0, 1));
  EXPECT_EQ(s1.hash(), s2.hash());
  EXPECT_EQ(s1.distinct_pairs(), 2u);
  s1.Remove(2, 0);
  s1.Remove(0, 1);
  EXPECT_EQ(s1.hash(), 0u);
  EXPECT_EQ(s1.distinct_pairs(), 0u);
  EXPECT_FALSE(s1.PinnedInA(0));
}

TEST(TranspositionKeyTest, RoundsParticipateInFullWidth) {
  // The seed's one-char key wrapped at 256 rounds; the packed key must not.
  const std::uint64_t h = 0x1234'5678'9abc'def0ULL;
  EXPECT_NE(game_engine::TranspositionKey(h, 1),
            game_engine::TranspositionKey(h, 257));
  EXPECT_NE(game_engine::TranspositionKey(h, 44),
            game_engine::TranspositionKey(h, 300));
  EXPECT_NE(game_engine::TranspositionKey(h, 0),
            game_engine::TranspositionKey(h, 256));
}

TEST(NullaryRelationTest, DisagreementLosesEvenAtZeroRounds) {
  auto sig = std::make_shared<Signature>();
  sig->AddRelation("Q", 0);
  Structure a(sig, 2);
  a.AddTuple(0, {});  // Q holds in A only.
  Structure b(sig, 2);
  EXPECT_FALSE(game_engine::NullaryRelationsAgree(a, b));
  EfGameSolver solver(a, b);
  EXPECT_FALSE(*solver.DuplicatorWins(0));
  EXPECT_FALSE(*solver.DuplicatorWins(2));
  PebbleGameSolver pebble(a, b, 2);
  EXPECT_FALSE(*pebble.DuplicatorWins(0));
  // Agreement on the nullary fact is invisible thereafter.
  Structure c(sig, 3);
  c.AddTuple(0, {});
  EXPECT_TRUE(game_engine::NullaryRelationsAgree(a, c));
  EfGameSolver ok_solver(a, c);
  EXPECT_TRUE(*ok_solver.DuplicatorWins(2));
}

// ---------------------------------------------------------------------------
// Long-horizon queries: the packed key must not wrap at 256 rounds the way
// the seed's one-char memo key did.
// ---------------------------------------------------------------------------

TEST(LongHorizonTest, HighRoundCountsDoNotCollideWithLowOnes) {
  // Seed bug reproduction: with chr-truncated keys, DuplicatorWins(257)
  // (spoiler win, sets 1 vs 2) memoized under the same key as rounds == 1,
  // so a following DuplicatorWins(1) (duplicator win) read back `false`.
  Structure a = MakeSet(1);
  Structure b = MakeSet(2);
  EfGameSolver solver(a, b);
  EXPECT_FALSE(*solver.DuplicatorWins(257));
  EXPECT_TRUE(*solver.DuplicatorWins(1));
  EXPECT_FALSE(*solver.DuplicatorWins(300));

  Structure c = MakeSet(3);
  Structure d = MakeSet(3);
  EfGameSolver eq_solver(c, d);
  EXPECT_TRUE(*eq_solver.DuplicatorWins(300));
}

}  // namespace
}  // namespace fmtk
