#include <gtest/gtest.h>

#include "core/algorithmic/basic_local.h"
#include "core/algorithmic/bounded_degree.h"
#include "core/algorithmic/local_formula.h"
#include "eval/model_check.h"
#include "logic/analysis.h"
#include "logic/parser.h"
#include "structures/generators.h"
#include "structures/graph.h"

namespace fmtk {
namespace {

TEST(DistanceFormulaTest, MatchesBfsDistances) {
  Structure p = MakeDirectedPath(7);
  Adjacency g = GaifmanAdjacency(p);
  for (std::size_t d = 0; d <= 4; ++d) {
    Formula delta = DistanceAtMostFormula("x", "y", d);
    for (Element a = 0; a < 7; ++a) {
      std::vector<std::size_t> dist = BfsDistances(g, {a});
      for (Element b = 0; b < 7; ++b) {
        Result<bool> holds = Satisfies(p, delta, {{"x", a}, {"y", b}});
        ASSERT_TRUE(holds.ok());
        EXPECT_EQ(*holds, dist[b] <= d)
            << "a=" << a << " b=" << b << " d=" << d;
      }
    }
  }
}

TEST(DistanceFormulaTest, IgnoresOrientation) {
  Structure p = MakeDirectedPath(3);
  Formula d1 = DistanceAtMostFormula("x", "y", 1);
  EXPECT_TRUE(*Satisfies(p, d1, {{"x", 1}, {"y", 0}}));  // Against the edge.
}

TEST(DistanceFormulaTest, LogarithmicRank) {
  EXPECT_EQ(QuantifierRank(DistanceAtMostFormula("x", "y", 0)), 0u);
  EXPECT_EQ(QuantifierRank(DistanceAtMostFormula("x", "y", 1)), 0u);
  EXPECT_LE(QuantifierRank(DistanceAtMostFormula("x", "y", 16)), 5u);
  EXPECT_LE(QuantifierRank(DistanceAtMostFormula("x", "y", 100)), 8u);
}

TEST(RelativizeTest, BoundsQuantifiersToTheBall) {
  // ∃y y != c sees other elements only inside the ball: on an edgeless
  // graph the 1-ball around c is just {c}.
  Structure isolated = MakeEmptyGraph(3);
  Formula other = *ParseFormula("exists y. y != c");
  EXPECT_TRUE(*Satisfies(isolated, other, {{"c", 0}}));
  Result<Formula> local = RelativizeToBall(other, "c", 1);
  ASSERT_TRUE(local.ok());
  EXPECT_FALSE(*Satisfies(isolated, *local, {{"c", 0}}));
  // On a path the neighbor is inside the ball.
  Structure p = MakeDirectedPath(3);
  EXPECT_TRUE(*Satisfies(p, *local, {{"c", 0}}));

  // Out-edges that LEAVE the ball are invisible: "some ball point has an
  // out-edge whose target has no out-edge" is true around c = 0 of a long
  // chain only because node 1's continuation is outside the ball.
  Structure chain = MakeDirectedPath(9);
  Formula far =
      *ParseFormula("exists y. exists z. E(y,z) & !(exists w. E(z,w))");
  Result<Formula> far_local = RelativizeToBall(far, "c", 1);
  ASSERT_TRUE(far_local.ok());
  EXPECT_TRUE(*Satisfies(chain, *far_local, {{"c", 0}}));
  // Unrelativized, node 1 visibly has an out-edge, but the chain still has
  // a genuine last edge, so the sentence is true too — with a different
  // witness (y=7, z=8).
  EXPECT_TRUE(*Satisfies(chain, far, {}));
  // Around the middle of the chain with radius 1 the ball {3,4,5} has
  // edges 3->4, 4->5 and 5's out-edge leaves the ball: true as well, with
  // z = 5 on the boundary.
  EXPECT_TRUE(*Satisfies(chain, *far_local, {{"c", 4}}));
}

TEST(RelativizeTest, RebindingCenterIsError) {
  Formula f = *ParseFormula("exists c. E(c,c)");
  Result<Formula> r = RelativizeToBall(f, "c", 1);
  EXPECT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), StatusCode::kInvalidArgument);
}

TEST(RelativizeTest, AgreesWithNeighborhoodEvaluation) {
  // ψ evaluated on N_r(a) == relativized ψ evaluated in the full structure.
  const char* locals[] = {
      "exists y. E(x,y)",
      "forall y. !E(y,x)",
      "exists y. exists z. E(x,y) & E(y,z)",
  };
  std::vector<Structure> panel;
  panel.push_back(MakeDirectedPath(8));
  panel.push_back(MakeDirectedCycle(6));
  panel.push_back(MakeFullBinaryTree(3));
  for (const char* text : locals) {
    Formula psi = *ParseFormula(text);
    const std::size_t r = 2;
    for (const Structure& s : panel) {
      BasicLocalSentence sentence{1, r, psi, "x"};
      Result<std::vector<Element>> sat =
          LocallySatisfyingElements(s, sentence);
      ASSERT_TRUE(sat.ok());
      Result<Formula> relativized = RelativizeToBall(psi, "x", r);
      ASSERT_TRUE(relativized.ok());
      for (Element a = 0; a < s.domain_size(); ++a) {
        Result<bool> direct = Satisfies(s, *relativized, {{"x", a}});
        ASSERT_TRUE(direct.ok());
        const bool in_sat =
            std::find(sat->begin(), sat->end(), a) != sat->end();
        EXPECT_EQ(*direct, in_sat)
            << text << " at " << a << " in " << s.ToString();
      }
    }
  }
}

// --- Basic local sentences (E12) --------------------------------------------

TEST(BasicLocalTest, ScatteredWitnessSearch) {
  // "There are 2 points, 2r-scattered (r=1), each with out-degree >= 1."
  BasicLocalSentence sentence{2, 1, *ParseFormula("exists y. E(x,y)"), "x"};
  Structure long_path = MakeDirectedPath(8);
  Result<bool> on_long = EvaluateBasicLocal(long_path, sentence);
  ASSERT_TRUE(on_long.ok());
  EXPECT_TRUE(*on_long);
  // On a 3-chain every two out-degree-1 nodes are within distance 2.
  Structure short_path = MakeDirectedPath(3);
  Result<bool> on_short = EvaluateBasicLocal(short_path, sentence);
  ASSERT_TRUE(on_short.ok());
  EXPECT_FALSE(*on_short);
}

TEST(BasicLocalTest, CountZeroRejected) {
  BasicLocalSentence bad{0, 1, Formula::True(), "x"};
  EXPECT_FALSE(EvaluateBasicLocal(MakeDirectedPath(3), bad).ok());
}

TEST(BasicLocalTest, WrongFreeVariableRejected) {
  BasicLocalSentence bad{1, 1, *ParseFormula("E(x,y)"), "x"};
  EXPECT_FALSE(EvaluateBasicLocal(MakeDirectedPath(3), bad).ok());
}

TEST(BasicLocalTest, SemanticMatchesGeneratedSentence) {
  // Theorem 3.12 round-trip: the generated FO sentence agrees with the
  // semantic evaluator on a panel of graphs.
  std::vector<BasicLocalSentence> sentences;
  sentences.push_back({1, 1, *ParseFormula("exists y. E(x,y) & E(y,x)"),
                       "x"});
  sentences.push_back({2, 1, *ParseFormula("exists y. E(x,y)"), "x"});
  sentences.push_back({3, 0, Formula::True(), "x"});
  std::vector<Structure> panel;
  panel.push_back(MakeDirectedPath(7));
  panel.push_back(MakeDirectedCycle(2));
  panel.push_back(MakeDirectedCycle(8));
  panel.push_back(MakeDisjointCycles(2, 3));
  panel.push_back(MakeFullBinaryTree(2));
  panel.push_back(MakeEmptyGraph(4));
  for (const BasicLocalSentence& sentence : sentences) {
    Result<Formula> fo = BasicLocalToSentence(sentence);
    ASSERT_TRUE(fo.ok()) << fo.status().ToString();
    for (const Structure& s : panel) {
      Result<bool> semantic = EvaluateBasicLocal(s, sentence);
      Result<bool> direct = Satisfies(s, *fo);
      ASSERT_TRUE(semantic.ok() && direct.ok());
      EXPECT_EQ(*semantic, *direct)
          << "count=" << sentence.count << " r=" << sentence.radius
          << " on " << s.ToString();
    }
  }
}

// --- Bounded-degree linear-time evaluation (E11) ----------------------------

TEST(HanfParametersTest, RadiusGrowsAsPowerOfThree) {
  EXPECT_EQ(HanfParametersForRank(0).radius, 0u);
  EXPECT_EQ(HanfParametersForRank(1).radius, 1u);
  EXPECT_EQ(HanfParametersForRank(2).radius, 4u);
  EXPECT_EQ(HanfParametersForRank(3).radius, 13u);
  EXPECT_EQ(HanfParametersForRank(2).threshold, 3u);
}

TEST(BoundedDegreeTest, RequiresSentence) {
  Result<BoundedDegreeEvaluator> e =
      BoundedDegreeEvaluator::Create(*ParseFormula("E(x,y)"));
  EXPECT_FALSE(e.ok());
}

TEST(BoundedDegreeTest, AgreesWithDirectEvaluationOnChains) {
  const char* sentences[] = {
      "exists x. !(exists y. E(x,y))",        // There is a sink.
      "forall x. exists y. E(x,y) | E(y,x)",  // No isolated points.
      "exists x. exists y. E(x,y) & E(y,x)",  // A 2-cycle somewhere.
  };
  for (const char* text : sentences) {
    Formula f = *ParseFormula(text);
    Result<BoundedDegreeEvaluator> evaluator =
        BoundedDegreeEvaluator::Create(f);
    ASSERT_TRUE(evaluator.ok());
    for (std::size_t n = 1; n <= 40; n += 3) {
      Structure chain = MakeDirectedPath(n);
      Result<bool> fast = evaluator->Evaluate(chain);
      Result<bool> slow = Satisfies(chain, f);
      ASSERT_TRUE(fast.ok() && slow.ok());
      EXPECT_EQ(*fast, *slow) << text << " n=" << n;
    }
  }
}

TEST(BoundedDegreeTest, CacheHitsOnAFamily) {
  Formula f = *ParseFormula("exists x. !(exists y. E(x,y))");
  Result<BoundedDegreeEvaluator> evaluator =
      BoundedDegreeEvaluator::Create(f);
  ASSERT_TRUE(evaluator.ok());
  for (std::size_t n = 30; n <= 60; ++n) {
    ASSERT_TRUE(evaluator->Evaluate(MakeDirectedPath(n)).ok());
  }
  // Long chains share one clipped type vector: mostly cache hits.
  EXPECT_GE(evaluator->cache_hits(), 25u);
  EXPECT_LE(evaluator->cache_misses(), 6u);
}

TEST(BoundedDegreeTest, MixedFamiliesGetDistinctVerdicts) {
  Formula f = *ParseFormula("exists x. !(exists y. E(x,y))");  // Sink exists.
  Result<BoundedDegreeEvaluator> evaluator = BoundedDegreeEvaluator::Create(
      f, {.radius = 2, .threshold = 2, .parallel = {}});
  ASSERT_TRUE(evaluator.ok());
  // Chains have a sink; cycles do not.
  for (std::size_t n = 12; n <= 20; ++n) {
    Structure chain = MakeDirectedPath(n);
    Structure cycle = MakeDirectedCycle(n);
    Result<bool> on_chain = evaluator->Evaluate(chain);
    Result<bool> on_cycle = evaluator->Evaluate(cycle);
    ASSERT_TRUE(on_chain.ok() && on_cycle.ok());
    EXPECT_TRUE(*on_chain);
    EXPECT_FALSE(*on_cycle);
  }
}

TEST(BoundedDegreeTest, ExplicitParametersRespected) {
  Formula f = *ParseFormula("exists x. E(x,x)");
  Result<BoundedDegreeEvaluator> evaluator = BoundedDegreeEvaluator::Create(
      f, {.radius = 3, .threshold = 5, .parallel = {}});
  ASSERT_TRUE(evaluator.ok());
  EXPECT_EQ(evaluator->radius(), 3u);
  EXPECT_EQ(evaluator->threshold(), 5u);
}

}  // namespace
}  // namespace fmtk
