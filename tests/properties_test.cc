// Cross-cutting property sweeps: random-formula fuzzing of the parser,
// printer, transforms and evaluators against each other, plus the
// composition properties the survey's "library of winning strategies"
// idea is built on.

#include <gtest/gtest.h>

#include <random>

#include "core/games/ef_game.h"
#include "core/locality/hanf.h"
#include "core/types/rank_type.h"
#include "eval/model_check.h"
#include "eval/query_eval.h"
#include "logic/analysis.h"
#include "logic/parser.h"
#include "logic/random_formula.h"
#include "logic/transform.h"
#include "structures/generators.h"

namespace fmtk {
namespace {

TEST(FuzzTest, PrinterParserRoundTrip) {
  std::mt19937_64 rng(1001);
  RandomFormulaOptions options;
  options.counting = true;
  for (int i = 0; i < 300; ++i) {
    Formula f = MakeRandomFormula(*Signature::Graph(), options, rng);
    Result<Formula> reparsed = ParseFormula(f.ToString());
    ASSERT_TRUE(reparsed.ok())
        << f.ToString() << ": " << reparsed.status().ToString();
    EXPECT_EQ(f, *reparsed) << f.ToString() << "\nvs\n"
                            << reparsed->ToString();
  }
}

TEST(FuzzTest, NnfAndSimplifyPreserveMeaning) {
  std::mt19937_64 rng(1002);
  RandomFormulaOptions options;
  options.counting = true;
  options.max_depth = 3;
  for (int i = 0; i < 60; ++i) {
    Formula f = MakeRandomSentence(*Signature::Graph(), options, rng);
    Formula nnf = NegationNormalForm(f);
    Formula simplified = Simplify(f);
    EXPECT_LE(QuantifierRank(nnf), QuantifierRank(f) + 0) << f.ToString();
    for (std::size_t n = 0; n <= 3; ++n) {
      Structure g = MakeRandomGraph(n, 0.5, rng);
      Result<bool> a = Satisfies(g, f);
      Result<bool> b = Satisfies(g, nnf);
      Result<bool> c = Satisfies(g, simplified);
      ASSERT_TRUE(a.ok() && b.ok() && c.ok()) << f.ToString();
      EXPECT_EQ(*a, *b) << "NNF broke: " << f.ToString();
      EXPECT_EQ(*a, *c) << "Simplify broke: " << f.ToString();
    }
  }
}

TEST(FuzzTest, PrenexPreservesMeaningOnNonemptyStructures) {
  std::mt19937_64 rng(1003);
  RandomFormulaOptions options;
  options.counting = false;  // Counting quantifiers do not prenex.
  options.max_depth = 3;
  for (int i = 0; i < 60; ++i) {
    Formula f = MakeRandomSentence(*Signature::Graph(), options, rng);
    Formula prenex = PrenexNormalForm(f);
    for (std::size_t n = 1; n <= 3; ++n) {
      Structure g = MakeRandomGraph(n, 0.5, rng);
      Result<bool> a = Satisfies(g, f);
      Result<bool> b = Satisfies(g, prenex);
      ASSERT_TRUE(a.ok() && b.ok()) << f.ToString();
      EXPECT_EQ(*a, *b) << "Prenex broke: " << f.ToString() << "\n -> "
                        << prenex.ToString();
    }
  }
}

TEST(FuzzTest, BottomUpMatchesNaiveOnRandomFormulas) {
  std::mt19937_64 rng(1004);
  RandomFormulaOptions options;
  options.counting = true;
  options.max_depth = 3;
  options.variable_pool = 2;
  for (int i = 0; i < 60; ++i) {
    Formula f = MakeRandomFormula(*Signature::Graph(), options, rng);
    std::set<std::string> free = FreeVariables(f);
    std::vector<std::string> vars(free.begin(), free.end());
    Structure g = MakeRandomGraph(4, 0.4, rng);
    Result<Relation> fast = EvaluateQuery(g, f, vars);
    Result<Relation> slow = EvaluateQueryNaive(g, f, vars);
    ASSERT_TRUE(fast.ok() && slow.ok()) << f.ToString();
    EXPECT_TRUE(*fast == *slow) << f.ToString();
  }
}

TEST(CompositionTest, DisjointUnionPreservesGameEquivalence) {
  // The composition lemma behind the "library of strategies": if
  // A1 ≡n B1 and A2 ≡n B2 then A1 ⊎ A2 ≡n B1 ⊎ B2. Checked exactly on
  // small pairs via rank types.
  RankTypeIndex index;
  struct Pair {
    Structure a;
    Structure b;
  };
  std::vector<Pair> equivalent_pairs;
  // Sets of size >= n are n-equivalent; cycles of length >= 4 are
  // 1-equivalent; etc. Use pairs known to be 2-equivalent:
  equivalent_pairs.push_back({MakeSet(2), MakeSet(3)});      // ≡2.
  equivalent_pairs.push_back({MakeEmptyGraph(2), MakeEmptyGraph(3)});
  const std::size_t n = 2;
  for (const Pair& p : equivalent_pairs) {
    ASSERT_TRUE(index.EquivalentUpToRank(p.a, p.b, n));
  }
  for (const Pair& p : equivalent_pairs) {
    for (const Pair& q : equivalent_pairs) {
      if (!(p.a.signature() == q.a.signature())) {
        continue;
      }
      Result<Structure> left = DisjointUnion(p.a, q.a);
      Result<Structure> right = DisjointUnion(p.b, q.b);
      ASSERT_TRUE(left.ok() && right.ok());
      EXPECT_TRUE(index.EquivalentUpToRank(*left, *right, n));
    }
  }
}

TEST(CompositionTest, GameMonotoneInRounds) {
  // Duplicator winning n rounds implies winning any fewer rounds.
  std::vector<std::pair<Structure, Structure>> pairs;
  pairs.emplace_back(MakeDirectedCycle(4), MakeDirectedCycle(5));
  pairs.emplace_back(MakeDirectedPath(3), MakeDirectedPath(4));
  pairs.emplace_back(MakeSet(3), MakeSet(4));
  for (const auto& [a, b] : pairs) {
    EfGameSolver solver(a, b);
    bool previous = true;
    for (std::size_t n = 0; n <= 4; ++n) {
      bool wins = *solver.DuplicatorWins(n);
      EXPECT_TRUE(previous || !wins)
          << "monotonicity violated at n=" << n;
      previous = wins;
    }
  }
}

TEST(HanfImpliesRankEquivalenceTest, CyclePairs) {
  // The Hanf locality theorem in executable form: G1 ⇆r G2 with
  // r >= (3^n - 1)/2 implies G1 ≡n G2. For n = 2, r = 4 needs m > 9.
  RankTypeIndex index;
  for (std::size_t m : {11, 13}) {
    Structure g1 = MakeDisjointCycles(2, m);
    Structure g2 = MakeDirectedCycle(2 * m);
    ASSERT_TRUE(HanfEquivalent(g1, g2, 4)) << m;
    EXPECT_TRUE(index.EquivalentUpToRank(g1, g2, 2)) << m;
  }
  // And a negative control: at m = 3 the pair is distinguishable at rank 2
  // (a rank-2 sentence sees the 3-cycle's wrap).
  Structure small1 = MakeDisjointCycles(2, 3);
  Structure small2 = MakeDirectedCycle(6);
  EXPECT_FALSE(index.EquivalentUpToRank(small1, small2, 3));
}

TEST(RandomSentenceTest, SentencesAreClosed) {
  std::mt19937_64 rng(1005);
  RandomFormulaOptions options;
  options.counting = true;
  for (int i = 0; i < 100; ++i) {
    Formula f = MakeRandomSentence(*Signature::Graph(), options, rng);
    EXPECT_TRUE(FreeVariables(f).empty()) << f.ToString();
  }
}

}  // namespace
}  // namespace fmtk
