#include <gtest/gtest.h>

#include <random>

#include "core/games/hintikka.h"
#include "eval/model_check.h"
#include "logic/analysis.h"
#include "structures/generators.h"

namespace fmtk {
namespace {

TEST(HintikkaTest, AtomicFormulaDescribesTuple) {
  RankTypeIndex index;
  Structure p = MakeDirectedPath(3);
  RankTypeIndex::TypeId t = index.TypeOf(p, {0, 1}, 0);
  Result<Formula> f = HintikkaFormula(index, t, p.signature());
  ASSERT_TRUE(f.ok()) << f.status().ToString();
  EXPECT_EQ(QuantifierRank(*f), 0u);
  // (0,1) satisfies its own atomic diagram; (1,0) does not.
  EXPECT_TRUE(*Satisfies(p, *f, {{"x1", 0}, {"x2", 1}}));
  EXPECT_FALSE(*Satisfies(p, *f, {{"x1", 1}, {"x2", 0}}));
  EXPECT_TRUE(*Satisfies(p, *f, {{"x1", 1}, {"x2", 2}}));
}

TEST(HintikkaTest, FormulaRankEqualsTypeRank) {
  RankTypeIndex index;
  Structure c = MakeDirectedCycle(3);
  for (std::size_t rank = 0; rank <= 2; ++rank) {
    RankTypeIndex::TypeId t = index.TypeOf(c, {}, rank);
    Result<Formula> f = HintikkaFormula(index, t, c.signature());
    ASSERT_TRUE(f.ok());
    EXPECT_EQ(QuantifierRank(*f), rank);
    EXPECT_TRUE(FreeVariables(*f).empty());
    // The structure satisfies its own Hintikka sentence.
    EXPECT_TRUE(*Satisfies(c, *f));
  }
}

TEST(HintikkaTest, SentenceCharacterizesRankEquivalence) {
  // B ⊨ φ^n_A iff A ≡n B — checked on a small panel.
  RankTypeIndex index;
  std::vector<Structure> panel;
  panel.push_back(MakeSet(1));
  panel.push_back(MakeSet(2));
  panel.push_back(MakeSet(3));
  // Sets: same signature required, so keep one signature per comparison
  // group.
  for (std::size_t i = 0; i < panel.size(); ++i) {
    for (std::size_t j = 0; j < panel.size(); ++j) {
      for (std::size_t rank = 0; rank <= 2; ++rank) {
        RankTypeIndex::TypeId ti = index.TypeOf(panel[i], {}, rank);
        Result<Formula> f =
            HintikkaFormula(index, ti, panel[i].signature());
        ASSERT_TRUE(f.ok());
        Result<bool> holds = Satisfies(panel[j], *f);
        ASSERT_TRUE(holds.ok()) << holds.status().ToString();
        EXPECT_EQ(*holds,
                  index.EquivalentUpToRank(panel[i], panel[j], rank))
            << "i=" << i << " j=" << j << " rank=" << rank;
      }
    }
  }
}

TEST(HintikkaTest, GraphPanelCharacterization) {
  RankTypeIndex index;
  std::vector<Structure> panel;
  panel.push_back(MakeDirectedPath(2));
  panel.push_back(MakeDirectedPath(3));
  panel.push_back(MakeDirectedCycle(3));
  panel.push_back(MakeEmptyGraph(2));
  for (std::size_t i = 0; i < panel.size(); ++i) {
    RankTypeIndex::TypeId ti = index.TypeOf(panel[i], {}, 2);
    Result<Formula> f = HintikkaFormula(index, ti, panel[i].signature());
    ASSERT_TRUE(f.ok());
    for (std::size_t j = 0; j < panel.size(); ++j) {
      Result<bool> holds = Satisfies(panel[j], *f);
      ASSERT_TRUE(holds.ok());
      EXPECT_EQ(*holds, index.EquivalentUpToRank(panel[i], panel[j], 2))
          << "i=" << i << " j=" << j;
    }
  }
}

TEST(DistinguishingSentenceTest, SeparatesDistinguishableStructures) {
  RankTypeIndex index;
  Structure a = MakeSet(2);
  Structure b = MakeSet(3);
  // Rank 3 separates the sets.
  Result<std::optional<Formula>> f = DistinguishingSentence(a, b, 3, index);
  ASSERT_TRUE(f.ok());
  ASSERT_TRUE(f->has_value());
  EXPECT_LE(QuantifierRank(**f), 3u);
  EXPECT_TRUE(*Satisfies(a, **f));
  EXPECT_FALSE(*Satisfies(b, **f));
}

TEST(DistinguishingSentenceTest, NulloptWhenEquivalent) {
  RankTypeIndex index;
  Result<std::optional<Formula>> f =
      DistinguishingSentence(MakeSet(2), MakeSet(3), 2, index);
  ASSERT_TRUE(f.ok());
  EXPECT_FALSE(f->has_value());
}

TEST(DistinguishingSentenceTest, GraphsAtRankTwo) {
  RankTypeIndex index;
  Structure cycle = MakeDirectedCycle(3);
  Structure path = MakeDirectedPath(3);
  Result<std::optional<Formula>> f =
      DistinguishingSentence(cycle, path, 2, index);
  ASSERT_TRUE(f.ok());
  ASSERT_TRUE(f->has_value());
  EXPECT_TRUE(*Satisfies(cycle, **f));
  EXPECT_FALSE(*Satisfies(path, **f));
}

TEST(DistinguishingSentenceTest, SignatureMismatchIsError) {
  RankTypeIndex index;
  Result<std::optional<Formula>> f =
      DistinguishingSentence(MakeSet(2), MakeDirectedPath(2), 1, index);
  EXPECT_FALSE(f.ok());
  EXPECT_EQ(f.status().code(), StatusCode::kSignatureMismatch);
}

TEST(HintikkaTest, ConstantsSupportedWhenInterpreted) {
  auto sig = std::make_shared<Signature>();
  sig->AddRelation("E", 2).AddConstant("c");
  Structure a(sig, 2);
  a.AddTuple(0, {0, 1});
  a.SetConstant(0, 0);
  RankTypeIndex index;
  RankTypeIndex::TypeId t = index.TypeOf(a, {}, 1);
  Result<Formula> f = HintikkaFormula(index, t, *sig);
  ASSERT_TRUE(f.ok()) << f.status().ToString();
  EXPECT_TRUE(*Satisfies(a, *f));
  // A structure with the constant on the other end fails the sentence.
  Structure b(sig, 2);
  b.AddTuple(0, {0, 1});
  b.SetConstant(0, 1);
  EXPECT_FALSE(*Satisfies(b, *f));
}

TEST(HintikkaTest, UninterpretedConstantUnsupported) {
  auto sig = std::make_shared<Signature>();
  sig->AddRelation("E", 2).AddConstant("c");
  Structure a(sig, 2);
  RankTypeIndex index;
  RankTypeIndex::TypeId t = index.TypeOf(a, {}, 0);
  Result<Formula> f = HintikkaFormula(index, t, *sig);
  EXPECT_FALSE(f.ok());
  EXPECT_EQ(f.status().code(), StatusCode::kUnsupported);
}

}  // namespace
}  // namespace fmtk
