#include <gtest/gtest.h>

#include <random>

#include "eval/model_check.h"
#include "qbf/qbf.h"

namespace fmtk {
namespace {

TEST(QbfParseTest, SlidesExamples) {
  // ∃p∃q p ∧ q is satisfiable; ∃p p ∧ ¬p is not.
  Result<Qbf> sat = ParseQbf("exists p. exists q. p & q");
  ASSERT_TRUE(sat.ok());
  EXPECT_TRUE(*SolveQbf(*sat));
  Result<Qbf> unsat = ParseQbf("exists p. p & !p");
  ASSERT_TRUE(unsat.ok());
  EXPECT_FALSE(*SolveQbf(*unsat));
}

TEST(QbfParseTest, MultiVariableQuantifier) {
  Result<Qbf> f = ParseQbf("exists p q. p | q");
  ASSERT_TRUE(f.ok());
  EXPECT_TRUE(*SolveQbf(*f));
}

TEST(QbfParseTest, RoundTrip) {
  const char* inputs[] = {
      "exists p. p",
      "forall p. exists q. p & q | !p",
      "exists p. (forall q. p | q) & p",
      "true",
      "false",
  };
  for (const char* text : inputs) {
    Result<Qbf> f = ParseQbf(text);
    ASSERT_TRUE(f.ok()) << text << ": " << f.status().ToString();
    Result<Qbf> again = ParseQbf(f->ToString());
    ASSERT_TRUE(again.ok()) << f->ToString();
    EXPECT_EQ(f->ToString(), again->ToString());
  }
}

TEST(QbfParseTest, Errors) {
  EXPECT_FALSE(ParseQbf("exists . p").ok());
  EXPECT_FALSE(ParseQbf("(p").ok());
  EXPECT_FALSE(ParseQbf("p q").ok());
  EXPECT_FALSE(ParseQbf("").ok());
}

TEST(QbfSolveTest, QuantifierSemantics) {
  EXPECT_TRUE(*SolveQbf(*ParseQbf("forall p. p | !p")));
  EXPECT_FALSE(*SolveQbf(*ParseQbf("forall p. p")));
  EXPECT_TRUE(*SolveQbf(*ParseQbf("exists p. p")));
  EXPECT_FALSE(*SolveQbf(*ParseQbf("exists p. p & !p")));
}

TEST(QbfSolveTest, AlternationMatters) {
  // ∀p ∃q (p <-> q) is true; ∃q ∀p (p <-> q) is false.
  Qbf inner_match = *ParseQbf("forall p. exists q. (p & q) | (!p & !q)");
  EXPECT_TRUE(*SolveQbf(inner_match));
  Qbf outer_match = *ParseQbf("exists q. forall p. (p & q) | (!p & !q)");
  EXPECT_FALSE(*SolveQbf(outer_match));
}

TEST(QbfSolveTest, FreeVariableIsError) {
  Result<bool> v = SolveQbf(*ParseQbf("p & exists q. q"));
  EXPECT_FALSE(v.ok());
  EXPECT_EQ(v.status().code(), StatusCode::kInvalidArgument);
}

TEST(QbfSolveTest, StatsCountAssignments) {
  QbfStats stats;
  ASSERT_TRUE(SolveQbf(*ParseQbf("forall p. forall q. p | !p"), &stats).ok());
  EXPECT_GE(stats.assignments_tried, 4u);
}

TEST(QbfReductionTest, ClosedQbfOnly) {
  Result<QbfAsModelChecking> r = ReduceToModelChecking(*ParseQbf("p"));
  EXPECT_FALSE(r.ok());
}

TEST(QbfReductionTest, StructureShape) {
  Result<QbfAsModelChecking> r =
      ReduceToModelChecking(*ParseQbf("exists p. p"));
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r->structure.domain_size(), 2u);
  EXPECT_EQ(r->structure.relation(0).size(), 1u);
  EXPECT_TRUE(r->structure.relation(0).Contains({1}));
}

TEST(QbfReductionTest, AgreesWithSolverOnHandPickedFormulas) {
  const char* formulas[] = {
      "exists p. exists q. p & q",
      "exists p. p & !p",
      "forall p. exists q. (p & q) | (!p & !q)",
      "exists q. forall p. (p & q) | (!p & !q)",
      "forall p. p | !p",
      "exists p. forall q. p | q",
  };
  for (const char* text : formulas) {
    Qbf f = *ParseQbf(text);
    Result<bool> solved = SolveQbf(f);
    Result<QbfAsModelChecking> reduced = ReduceToModelChecking(f);
    ASSERT_TRUE(solved.ok() && reduced.ok()) << text;
    Result<bool> checked = Satisfies(reduced->structure, reduced->sentence);
    ASSERT_TRUE(checked.ok()) << checked.status().ToString();
    EXPECT_EQ(*solved, *checked) << text;
  }
}

TEST(QbfReductionTest, AgreesOnRandomQbfs) {
  std::mt19937_64 rng(31337);
  for (int trial = 0; trial < 30; ++trial) {
    Qbf f = MakeRandomQbf(4, 6, rng);
    Result<bool> solved = SolveQbf(f);
    Result<QbfAsModelChecking> reduced = ReduceToModelChecking(f);
    ASSERT_TRUE(solved.ok() && reduced.ok());
    Result<bool> checked = Satisfies(reduced->structure, reduced->sentence);
    ASSERT_TRUE(checked.ok());
    EXPECT_EQ(*solved, *checked) << f.ToString();
  }
}

TEST(RandomQbfTest, ShapeIsClosedAndAlternating) {
  std::mt19937_64 rng(1);
  Qbf f = MakeRandomQbf(3, 5, rng);
  EXPECT_EQ(f.kind(), Qbf::Kind::kExists);
  EXPECT_EQ(f.child(0).kind(), Qbf::Kind::kForall);
  EXPECT_EQ(f.child(0).child(0).kind(), Qbf::Kind::kExists);
  EXPECT_TRUE(SolveQbf(f).ok());  // Closed: no free-variable error.
}

}  // namespace
}  // namespace fmtk
