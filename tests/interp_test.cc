#include <gtest/gtest.h>

#include "core/interp/interpretation.h"
#include "core/interp/reductions.h"
#include "logic/parser.h"
#include "queries/boolean_query.h"
#include "structures/generators.h"
#include "structures/graph.h"

namespace fmtk {
namespace {

TEST(InterpretationTest, IdentityOnGraphs) {
  Interpretation id(Signature::Graph());
  ASSERT_TRUE(id.DefineRelation("E", *ParseFormula("E(x,y)"), {"x", "y"})
                  .ok());
  Structure c = MakeDirectedCycle(5);
  Result<Structure> out = id.Apply(c);
  ASSERT_TRUE(out.ok());
  EXPECT_TRUE(*out == c);
}

TEST(InterpretationTest, EdgeReversal) {
  Interpretation reverse(Signature::Graph());
  ASSERT_TRUE(
      reverse.DefineRelation("E", *ParseFormula("E(y,x)"), {"x", "y"}).ok());
  Structure p = MakeDirectedPath(3);
  Result<Structure> out = reverse.Apply(p);
  ASSERT_TRUE(out.ok());
  EXPECT_TRUE(out->relation(0).Contains({1, 0}));
  EXPECT_TRUE(out->relation(0).Contains({2, 1}));
  EXPECT_EQ(out->relation(0).size(), 2u);
}

TEST(InterpretationTest, DomainRestriction) {
  // Keep only elements with an outgoing edge.
  Interpretation interp(Signature::Graph());
  ASSERT_TRUE(
      interp.DefineRelation("E", *ParseFormula("E(x,y)"), {"x", "y"}).ok());
  interp.SetDomainFormula(*ParseFormula("exists y. E(x,y)"), "x");
  Structure p = MakeDirectedPath(4);  // Node 3 has no out-edge.
  Result<Structure> out = interp.Apply(p);
  ASSERT_TRUE(out.ok());
  EXPECT_EQ(out->domain_size(), 3u);
  // Edge 2->3 is dropped (3 left the domain); edges 0->1, 1->2 survive.
  EXPECT_EQ(out->relation(0).size(), 2u);
}

TEST(InterpretationTest, UndefinedRelationIsError) {
  Interpretation interp(Signature::Graph());
  Result<Structure> out = interp.Apply(MakeDirectedPath(3));
  EXPECT_FALSE(out.ok());
  EXPECT_EQ(out.status().code(), StatusCode::kInvalidArgument);
}

TEST(InterpretationTest, DefinitionValidation) {
  Interpretation interp(Signature::Graph());
  EXPECT_EQ(interp.DefineRelation("F", *ParseFormula("E(x,y)"), {"x", "y"})
                .code(),
            StatusCode::kSignatureMismatch);
  EXPECT_EQ(
      interp.DefineRelation("E", *ParseFormula("E(x,y)"), {"x"}).code(),
      StatusCode::kInvalidArgument);
  EXPECT_EQ(interp.DefineRelation("E", *ParseFormula("E(x,y)"), {"x", "x"})
                .code(),
            StatusCode::kInvalidArgument);
  EXPECT_EQ(interp
                .DefineRelation("E", *ParseFormula("E(x,y) & E(y,z)"),
                                {"x", "y"})
                .code(),
            StatusCode::kInvalidArgument);
}

TEST(InterpretationTest, SignatureChange) {
  // Orders to graphs: successor relation.
  Interpretation interp(Signature::Graph());
  ASSERT_TRUE(interp
                  .DefineRelation(
                      "E", *ParseFormula("x < y & !(exists z. x < z & z < y)"),
                      {"x", "y"})
                  .ok());
  Result<Structure> out = interp.Apply(MakeLinearOrder(5));
  ASSERT_TRUE(out.ok());
  EXPECT_TRUE(*out == MakeDirectedPath(5));
}

// --- The survey's reductions (E6) -------------------------------------------

TEST(ReductionsTest, EvenToConnectivityParity) {
  // Connected iff the order size is odd (for n >= 2, per the construction).
  Interpretation interp = EvenToConnectivity();
  BooleanQuery conn = BooleanQuery::Connectivity();
  for (std::size_t n = 2; n <= 24; ++n) {
    Structure order = MakeLinearOrder(n);
    Result<Structure> graph = interp.Apply(order);
    ASSERT_TRUE(graph.ok()) << n;
    Result<bool> connected = conn.Evaluate(*graph);
    ASSERT_TRUE(connected.ok());
    EXPECT_EQ(*connected, n % 2 == 1) << "n=" << n;
  }
}

TEST(ReductionsTest, EvenToConnectivityComponentCount) {
  // Even orders give exactly two components.
  Interpretation interp = EvenToConnectivity();
  for (std::size_t n = 4; n <= 12; n += 2) {
    Result<Structure> graph = interp.Apply(MakeLinearOrder(n));
    ASSERT_TRUE(graph.ok());
    std::vector<std::size_t> comp =
        ConnectedComponents(UndirectedAdjacency(*graph, 0));
    std::set<std::size_t> ids(comp.begin(), comp.end());
    EXPECT_EQ(ids.size(), 2u) << "n=" << n;
  }
}

TEST(ReductionsTest, SurveyFigureFiveAndSix) {
  // The paper's picture: orders of size 5 (connected) and 6 (two
  // components).
  Interpretation interp = EvenToConnectivity();
  Result<Structure> g5 = interp.Apply(MakeLinearOrder(5));
  Result<Structure> g6 = interp.Apply(MakeLinearOrder(6));
  ASSERT_TRUE(g5.ok() && g6.ok());
  EXPECT_TRUE(*BooleanQuery::Connectivity().Evaluate(*g5));
  EXPECT_FALSE(*BooleanQuery::Connectivity().Evaluate(*g6));
  // Each node has out-degree 1 under the construction (2nd successor or a
  // wrap edge).
  for (std::size_t d : OutDegrees(*g5, 0)) {
    EXPECT_EQ(d, 1u);
  }
}

TEST(ReductionsTest, EvenToAcyclicityParity) {
  // Acyclic (as a directed graph) iff the order size is even: odd orders
  // close the even-elements chain into a directed cycle via the back edge.
  Interpretation interp = EvenToAcyclicity();
  BooleanQuery dag = BooleanQuery::DirectedAcyclicity();
  for (std::size_t n = 2; n <= 24; ++n) {
    Result<Structure> graph = interp.Apply(MakeLinearOrder(n));
    ASSERT_TRUE(graph.ok());
    Result<bool> acyclic = dag.Evaluate(*graph);
    ASSERT_TRUE(acyclic.ok());
    EXPECT_EQ(*acyclic, n % 2 == 0) << "n=" << n;
  }
  // The undirected reading agrees from n = 4 on (n = 3 yields just an
  // antiparallel pair, which is not an undirected cycle).
  BooleanQuery undirected = BooleanQuery::Acyclicity();
  for (std::size_t n = 4; n <= 24; ++n) {
    Result<Structure> graph = interp.Apply(MakeLinearOrder(n));
    ASSERT_TRUE(graph.ok());
    EXPECT_EQ(*undirected.Evaluate(*graph), n % 2 == 0) << "n=" << n;
  }
}

TEST(ReductionsTest, SymmetricClosure) {
  Interpretation sym = SymmetricClosure();
  Result<Structure> out = sym.Apply(MakeDirectedPath(3));
  ASSERT_TRUE(out.ok());
  EXPECT_EQ(out->relation(0).size(), 4u);
  EXPECT_TRUE(out->relation(0).Contains({1, 0}));
}

TEST(ReductionsTest, ConnectivityViaTcAgreesWithDirectQuery) {
  std::vector<Structure> panel;
  panel.push_back(MakeDirectedCycle(7));
  panel.push_back(MakeDisjointCycles(2, 4));
  panel.push_back(MakeDirectedPath(6));
  panel.push_back(MakePathPlusCycle(4));
  panel.push_back(MakeEmptyGraph(3));
  panel.push_back(MakeEmptyGraph(1));
  panel.push_back(MakeFullBinaryTree(3));
  BooleanQuery conn = BooleanQuery::Connectivity();
  for (const Structure& g : panel) {
    Result<bool> via_tc = ConnectivityViaTransitiveClosure(g);
    Result<bool> direct = conn.Evaluate(g);
    ASSERT_TRUE(via_tc.ok() && direct.ok());
    EXPECT_EQ(*via_tc, *direct);
  }
}

}  // namespace
}  // namespace fmtk
