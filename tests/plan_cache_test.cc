#include "planner/plan_cache.h"

#include <gtest/gtest.h>

#include <atomic>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "logic/parser.h"
#include "structures/generators.h"

namespace fmtk {
namespace {

// ---------------------------------------------------------------------------
// ShardedLruCache: single-shard LRU semantics and exact counters.

using StringCache = ShardedLruCache<std::string>;

std::shared_ptr<const std::string> Val(const std::string& s) {
  return std::make_shared<const std::string>(s);
}

TEST(ShardedLruCacheTest, EvictsLeastRecentlyUsed) {
  StringCache cache({/*shards=*/1, /*capacity_per_shard=*/2});
  cache.Insert("a", Val("A"));
  cache.Insert("b", Val("B"));
  cache.Insert("c", Val("C"));  // evicts "a"
  EXPECT_EQ(cache.Get("a"), nullptr);
  ASSERT_NE(cache.Get("b"), nullptr);
  ASSERT_NE(cache.Get("c"), nullptr);

  const PlanCacheStats stats = cache.stats();
  EXPECT_EQ(stats.insertions, 3u);
  EXPECT_EQ(stats.evictions, 1u);
  EXPECT_EQ(stats.entries, 2u);
  EXPECT_EQ(stats.hits, 2u);
  EXPECT_EQ(stats.misses, 1u);
}

TEST(ShardedLruCacheTest, GetBumpsRecency) {
  StringCache cache({1, 2});
  cache.Insert("a", Val("A"));
  cache.Insert("b", Val("B"));
  ASSERT_NE(cache.Get("a"), nullptr);  // "b" is now least recent
  cache.Insert("c", Val("C"));         // evicts "b"
  EXPECT_NE(cache.Get("a"), nullptr);
  EXPECT_EQ(cache.Get("b"), nullptr);
  EXPECT_NE(cache.Get("c"), nullptr);
}

TEST(ShardedLruCacheTest, FirstInserterWins) {
  StringCache cache({1, 4});
  auto first = cache.Insert("k", Val("first"));
  auto second = cache.Insert("k", Val("second"));
  EXPECT_EQ(*second, "first");
  EXPECT_EQ(first.get(), second.get());
  EXPECT_EQ(cache.stats().insertions, 1u);
  EXPECT_EQ(cache.stats().entries, 1u);
}

TEST(ShardedLruCacheTest, EvictedEntryStaysAliveForHolders) {
  StringCache cache({1, 1});
  auto held = cache.Insert("a", Val("A"));
  cache.Insert("b", Val("B"));  // evicts "a"
  EXPECT_EQ(cache.Get("a"), nullptr);
  EXPECT_EQ(*held, "A");  // the shared_ptr keeps it valid
}

TEST(ShardedLruCacheTest, ShardCountRoundsUpToPowerOfTwo) {
  StringCache cache({5, 4});
  EXPECT_EQ(cache.shard_count(), 8u);
  StringCache one({0, 4});
  EXPECT_EQ(one.shard_count(), 1u);
}

// The multithreaded hammer: counters must balance exactly under contention
// (this test also runs under TSan in CI).
TEST(ShardedLruCacheTest, HammerCountersBalanceExactly) {
  constexpr std::size_t kThreads = 8;
  constexpr std::size_t kOpsPerThread = 2000;
  constexpr std::size_t kKeys = 32;
  StringCache cache({4, 4});

  std::atomic<std::uint64_t> total_gets{0};
  std::vector<std::thread> workers;
  workers.reserve(kThreads);
  for (std::size_t t = 0; t < kThreads; ++t) {
    workers.emplace_back([&cache, &total_gets, t] {
      std::uint64_t gets = 0;
      for (std::size_t i = 0; i < kOpsPerThread; ++i) {
        // Deterministic per-thread key walk; threads overlap heavily.
        const std::string key =
            "k" + std::to_string((i * (t + 3) + t) % kKeys);
        ++gets;
        if (cache.Get(key) == nullptr) {
          cache.Insert(key, Val(key));
        }
      }
      total_gets.fetch_add(gets);
    });
  }
  for (std::thread& w : workers) {
    w.join();
  }

  const PlanCacheStats stats = cache.stats();
  EXPECT_EQ(stats.hits + stats.misses, total_gets.load());
  EXPECT_EQ(stats.insertions - stats.evictions, stats.entries);
  EXPECT_LE(stats.entries, cache.shard_count() * cache.capacity_per_shard());
  EXPECT_GT(stats.hits, 0u);
  EXPECT_GT(stats.misses, 0u);
}

// ---------------------------------------------------------------------------
// PlanCache: the two-layer formula cache.

TEST(PlanCacheTest, SecondLookupOfSameFormulaHits) {
  PlanCache cache;
  const Structure g = MakeDirectedCycle(4);
  const Formula f = *ParseFormula("exists x. E(x,x)", &g.signature());

  PlanCacheLookup first;
  ASSERT_TRUE(cache.GetFormulaPlan(f, g.signature(), &first).ok());
  EXPECT_FALSE(first.hit);

  PlanCacheLookup second;
  auto plan = cache.GetFormulaPlan(f, g.signature(), &second);
  ASSERT_TRUE(plan.ok());
  EXPECT_TRUE(second.hit);
  EXPECT_EQ(first.key, second.key);
}

TEST(PlanCacheTest, AlphaVariantsShareOnePlan) {
  PlanCache cache;
  const Structure g = MakeDirectedCycle(4);
  const Formula f1 = *ParseFormula("exists x. E(x,x)", &g.signature());
  const Formula f2 = *ParseFormula("exists alpha. E(alpha,alpha)",
                                   &g.signature());
  const Formula f3 = *ParseFormula(
      "exists y. E(y,y) & E(y,y)", &g.signature());  // dedups to f1

  auto p1 = cache.GetFormulaPlan(f1, g.signature());
  PlanCacheLookup lookup;
  auto p2 = cache.GetFormulaPlan(f2, g.signature(), &lookup);
  ASSERT_TRUE(p1.ok());
  ASSERT_TRUE(p2.ok());
  EXPECT_TRUE(lookup.hit);
  EXPECT_EQ(p1->get(), p2->get());

  PlanCacheLookup dedup_lookup;
  auto p3 = cache.GetFormulaPlan(f3, g.signature(), &dedup_lookup);
  ASSERT_TRUE(p3.ok());
  EXPECT_TRUE(dedup_lookup.hit);
}

TEST(PlanCacheTest, CommutedConjunctionsShareOnePlan) {
  PlanCache cache;
  const Structure g = MakeDirectedCycle(4);
  const Signature& sig = g.signature();
  const Formula ab = *ParseFormula(
      "(exists x. E(x,x)) & (exists x. exists y. E(x,y))", &sig);
  const Formula ba = *ParseFormula(
      "(exists x. exists y. E(x,y)) & (exists x. E(x,x))", &sig);
  auto p1 = cache.GetFormulaPlan(ab, sig);
  PlanCacheLookup lookup;
  auto p2 = cache.GetFormulaPlan(ba, sig, &lookup);
  ASSERT_TRUE(p1.ok());
  ASSERT_TRUE(p2.ok());
  EXPECT_TRUE(lookup.hit);
  EXPECT_EQ(p1->get(), p2->get());
}

TEST(PlanCacheTest, TextLayerSkipsParseOnRepeat) {
  PlanCache cache;
  const Structure g = MakeDirectedCycle(4);
  const std::string text = "exists x. exists y. E(x,y) & E(y,x)";

  PlanCacheLookup first;
  ASSERT_TRUE(cache.GetFormulaPlanFromText(text, g.signature(), &first).ok());
  EXPECT_FALSE(first.text_hit);

  PlanCacheLookup second;
  auto plan = cache.GetFormulaPlanFromText(text, g.signature(), &second);
  ASSERT_TRUE(plan.ok());
  EXPECT_TRUE(second.hit);
  EXPECT_TRUE(second.text_hit);
}

TEST(PlanCacheTest, DifferentSignaturesNeverAlias) {
  PlanCache cache;
  const Structure cycle = MakeDirectedCycle(4);   // sig {E/2}
  const Structure order = MakeLinearOrder(4);     // different vocabulary
  auto p1 = cache.GetFormulaPlanFromText("exists x. exists y. E(x,y)",
                                         cycle.signature());
  ASSERT_TRUE(p1.ok());
  // Same text against a signature that also has E/2 plus more relations:
  // must compile its own plan, not alias the cycle's.
  Signature extended;
  extended.AddRelation("E", 2);
  extended.AddRelation("F", 2);
  PlanCacheLookup lookup;
  auto p2 = cache.GetFormulaPlanFromText("exists x. exists y. E(x,y)",
                                         extended, &lookup);
  ASSERT_TRUE(p2.ok());
  EXPECT_FALSE(lookup.hit);
  EXPECT_NE(p1->get(), p2->get());
  (void)order;
}

TEST(PlanCacheTest, InvalidFormulaPropagatesError) {
  PlanCache cache;
  const Structure g = MakeDirectedCycle(4);
  auto bad = cache.GetFormulaPlanFromText("exists x. NoSuch(x)",
                                          g.signature());
  EXPECT_FALSE(bad.ok());
}

TEST(PlanCacheTest, DatalogProgramsCacheByCanonicalRules) {
  PlanCache cache;
  const Structure g = MakeDirectedPath(5);
  const DatalogProgram p1 = *ParseDatalogProgram(
      "tc(x, y) :- E(x, y).\ntc(x, z) :- tc(x, y), E(y, z).");
  // α-variant: different rule variable names, same canonical program.
  const DatalogProgram p2 = *ParseDatalogProgram(
      "tc(a, b) :- E(a, b).\ntc(a, c) :- tc(a, b), E(b, c).");

  PlanCacheLookup first;
  ASSERT_TRUE(cache.GetDatalogPlan(p1, g.signature(), &first).ok());
  EXPECT_FALSE(first.hit);
  PlanCacheLookup second;
  ASSERT_TRUE(cache.GetDatalogPlan(p2, g.signature(), &second).ok());
  EXPECT_TRUE(second.hit);
  EXPECT_EQ(first.key, second.key);
}

TEST(PlanCacheTest, StatsSumBothSections) {
  PlanCache cache;
  const Structure g = MakeDirectedCycle(4);
  ASSERT_TRUE(
      cache.GetFormulaPlanFromText("exists x. E(x,x)", g.signature()).ok());
  ASSERT_TRUE(cache.GetDatalogPlanFromText("p(x) :- E(x, x).",
                                           g.signature())
                  .ok());
  const PlanCacheStats total = cache.stats();
  EXPECT_EQ(total.entries, cache.formula_stats().entries +
                               cache.datalog_stats().entries);
  // Formula text layer stores two entries (text alias + canonical).
  EXPECT_EQ(cache.formula_stats().entries, 2u);
  EXPECT_EQ(cache.datalog_stats().entries, 2u);
  cache.Clear();
  EXPECT_EQ(cache.stats().entries, 0u);
}

// Concurrent lookups of one formula must produce one shared plan and exact
// counters (runs under TSan in CI).
TEST(PlanCacheTest, ConcurrentFormulaLookupsShareOnePlan) {
  PlanCache cache;
  const Structure g = MakeDirectedCycle(6);
  constexpr std::size_t kThreads = 8;
  constexpr std::size_t kReps = 50;

  std::vector<std::thread> workers;
  std::atomic<std::size_t> failures{0};
  for (std::size_t t = 0; t < kThreads; ++t) {
    workers.emplace_back([&cache, &g, &failures] {
      for (std::size_t i = 0; i < kReps; ++i) {
        auto plan = cache.GetFormulaPlanFromText(
            "forall x. exists y. E(x,y)", g.signature());
        if (!plan.ok() || *plan == nullptr) {
          failures.fetch_add(1);
        }
      }
    });
  }
  for (std::thread& w : workers) {
    w.join();
  }
  EXPECT_EQ(failures.load(), 0u);
  const PlanCacheStats stats = cache.formula_stats();
  // Every rep does one text-layer Get; the reps that missed the text layer
  // additionally do one canonical-layer Get, so:
  //   lookups = kThreads*kReps + text_misses  and  hits + misses == lookups.
  EXPECT_GE(stats.hits + stats.misses, kThreads * kReps);
  EXPECT_LE(stats.hits + stats.misses, 2 * kThreads * kReps);
  // Entries: exactly 2 (text alias + canonical), whatever the interleaving.
  EXPECT_EQ(stats.entries, 2u);
  EXPECT_EQ(stats.insertions - stats.evictions, stats.entries);
}

}  // namespace
}  // namespace fmtk
