#include <gtest/gtest.h>

#include "logic/analysis.h"
#include "logic/formula.h"
#include "logic/parser.h"
#include "logic/transform.h"

namespace fmtk {
namespace {

TEST(FormulaTest, FactoriesAndAccessors) {
  Formula atom = Formula::Atom("E", {V("x"), V("y")});
  EXPECT_EQ(atom.kind(), FormulaKind::kAtom);
  EXPECT_EQ(atom.relation_name(), "E");
  EXPECT_EQ(atom.terms().size(), 2u);
  EXPECT_TRUE(atom.is_atomic());

  Formula q = Formula::Exists("x", atom);
  EXPECT_EQ(q.kind(), FormulaKind::kExists);
  EXPECT_EQ(q.variable(), "x");
  EXPECT_EQ(q.body(), atom);
  EXPECT_FALSE(q.is_atomic());
}

TEST(FormulaTest, DefaultIsTrue) {
  Formula f;
  EXPECT_EQ(f.kind(), FormulaKind::kTrue);
}

TEST(FormulaTest, StructuralEquality) {
  Formula a = Formula::And(Formula::Atom("P", {V("x")}), Formula::True());
  Formula b = Formula::And(Formula::Atom("P", {V("x")}), Formula::True());
  Formula c = Formula::And(Formula::True(), Formula::Atom("P", {V("x")}));
  EXPECT_EQ(a, b);
  EXPECT_FALSE(a == c);  // Order matters structurally.
}

TEST(FormulaTest, MultiQuantifierFactory) {
  Formula f = Formula::Exists(std::vector<std::string>{"x", "y"},
                              Formula::Equal(V("x"), V("y")));
  EXPECT_EQ(f.kind(), FormulaKind::kExists);
  EXPECT_EQ(f.variable(), "x");
  EXPECT_EQ(f.body().variable(), "y");
}

TEST(FormulaTest, AllDistinct) {
  Formula f = Formula::AllDistinct({"x", "y", "z"});
  EXPECT_EQ(f.kind(), FormulaKind::kAnd);
  EXPECT_EQ(f.child_count(), 3u);  // C(3,2) inequalities.
  EXPECT_EQ(Formula::AllDistinct({"x"}).child_count(), 0u);
}

TEST(FormulaTest, NodeCount) {
  Formula f = Formula::Not(Formula::And(Formula::True(), Formula::False()));
  EXPECT_EQ(f.NodeCount(), 4u);
}

TEST(QuantifierRankTest, SurveyExample) {
  // qr( forall x [exists w P(x,w) & exists y exists z R(x,y,z)] ) = 3.
  Result<Formula> f = ParseFormula(
      "forall x. (exists w. P(x,w)) & (exists y. exists z. R(x,y,z))");
  ASSERT_TRUE(f.ok());
  EXPECT_EQ(QuantifierRank(*f), 3u);
}

TEST(QuantifierRankTest, Basics) {
  EXPECT_EQ(QuantifierRank(Formula::True()), 0u);
  EXPECT_EQ(QuantifierRank(Formula::Atom("P", {V("x")})), 0u);
  Formula g = Formula::Exists("x", Formula::Forall("y", Formula::True()));
  EXPECT_EQ(QuantifierRank(g), 2u);
  EXPECT_EQ(QuantifierRank(Formula::Not(g)), 2u);
  // Parallel quantifiers take the max, not the sum.
  Formula parallel = Formula::And(g, g);
  EXPECT_EQ(QuantifierRank(parallel), 2u);
  EXPECT_EQ(QuantifierCount(parallel), 4u);
}

TEST(FreeVariablesTest, BindingAndShadowing) {
  Result<Formula> f = ParseFormula("E(x,y) & exists x. E(x,z)");
  ASSERT_TRUE(f.ok());
  EXPECT_EQ(FreeVariables(*f), (std::set<std::string>{"x", "y", "z"}));
  EXPECT_EQ(AllVariables(*f), (std::set<std::string>{"x", "y", "z"}));

  Result<Formula> sentence = ParseFormula("forall x. exists y. E(x,y)");
  ASSERT_TRUE(sentence.ok());
  EXPECT_TRUE(FreeVariables(*sentence).empty());
}

TEST(FreeVariablesTest, ConstantsAreNotVariables) {
  Signature sig;
  sig.AddRelation("E", 2).AddConstant("c");
  Result<Formula> f = ParseFormula("E(x,c)", &sig);
  ASSERT_TRUE(f.ok());
  EXPECT_EQ(FreeVariables(*f), (std::set<std::string>{"x"}));
}

TEST(ParserTest, RoundTripsThroughToString) {
  const char* inputs[] = {
      "true",
      "false",
      "E(x,y)",
      "x = y",
      "!E(x,x)",
      "E(x,y) & E(y,z) | E(x,z)",
      "E(x,y) -> E(y,x) -> E(x,x)",
      "P(x) <-> Q(x)",
      "exists x. forall y. E(x,y)",
      "forall x. (exists w. P(x,w)) & Q(x)",
  };
  for (const char* text : inputs) {
    Result<Formula> f = ParseFormula(text);
    ASSERT_TRUE(f.ok()) << text << ": " << f.status().ToString();
    Result<Formula> again = ParseFormula(f->ToString());
    ASSERT_TRUE(again.ok()) << f->ToString();
    EXPECT_EQ(*f, *again) << text << " vs " << f->ToString();
  }
}

TEST(ParserTest, PrecedenceAndAssociativity) {
  // & binds tighter than |, which binds tighter than ->, then <->.
  Result<Formula> f = ParseFormula("P(x) | Q(x) & R(x) -> S(x)");
  ASSERT_TRUE(f.ok());
  EXPECT_EQ(f->kind(), FormulaKind::kImplies);
  EXPECT_EQ(f->child(0).kind(), FormulaKind::kOr);
  EXPECT_EQ(f->child(0).child(1).kind(), FormulaKind::kAnd);
  // Implication is right-associative.
  Result<Formula> g = ParseFormula("P(x) -> Q(x) -> R(x)");
  ASSERT_TRUE(g.ok());
  EXPECT_EQ(g->child(1).kind(), FormulaKind::kImplies);
}

TEST(ParserTest, QuantifierScopeExtendsRight) {
  Result<Formula> f = ParseFormula("exists x. P(x) & Q(x)");
  ASSERT_TRUE(f.ok());
  EXPECT_EQ(f->kind(), FormulaKind::kExists);
  EXPECT_EQ(f->body().kind(), FormulaKind::kAnd);
}

TEST(ParserTest, MultipleQuantifiedVariables) {
  Result<Formula> f = ParseFormula("exists x y z. x != y");
  ASSERT_TRUE(f.ok());
  EXPECT_EQ(QuantifierRank(*f), 3u);
  Result<Formula> g = ParseFormula("exists x, y. E(x,y)");
  ASSERT_TRUE(g.ok());
  EXPECT_EQ(QuantifierRank(*g), 2u);
}

TEST(ParserTest, InfixLessAndInequality) {
  Result<Formula> f = ParseFormula("x < y");
  ASSERT_TRUE(f.ok());
  EXPECT_EQ(f->kind(), FormulaKind::kAtom);
  EXPECT_EQ(f->relation_name(), "<");

  Result<Formula> g = ParseFormula("x != y");
  ASSERT_TRUE(g.ok());
  EXPECT_EQ(g->kind(), FormulaKind::kNot);
  EXPECT_EQ(g->child(0).kind(), FormulaKind::kEqual);
}

TEST(ParserTest, WordOperators) {
  Result<Formula> f =
      ParseFormula("not P(x) and Q(x) or all y . E(x,y)");
  ASSERT_TRUE(f.ok());
  EXPECT_EQ(f->kind(), FormulaKind::kOr);
}

TEST(ParserTest, ZeroAryAtom) {
  Result<Formula> f = ParseFormula("flag & P(x)");
  ASSERT_TRUE(f.ok());
  EXPECT_EQ(f->child(0).kind(), FormulaKind::kAtom);
  EXPECT_TRUE(f->child(0).terms().empty());
}

TEST(ParserTest, ConstantsResolvedAgainstSignature) {
  Signature sig;
  sig.AddRelation("E", 2).AddConstant("c");
  Result<Formula> f = ParseFormula("E(c,x)", &sig);
  ASSERT_TRUE(f.ok());
  EXPECT_TRUE(f->terms()[0].is_constant());
  EXPECT_TRUE(f->terms()[1].is_variable());
  // Without the signature, "c" is a variable.
  Result<Formula> g = ParseFormula("E(c,x)");
  ASSERT_TRUE(g.ok());
  EXPECT_TRUE(g->terms()[0].is_variable());
}

TEST(ParserTest, Errors) {
  EXPECT_EQ(ParseFormula("E(x,").status().code(), StatusCode::kParseError);
  EXPECT_EQ(ParseFormula("exists . P(x)").status().code(),
            StatusCode::kParseError);
  EXPECT_EQ(ParseFormula("P(x) &").status().code(), StatusCode::kParseError);
  EXPECT_EQ(ParseFormula("(P(x)").status().code(), StatusCode::kParseError);
  EXPECT_EQ(ParseFormula("P(x) Q(x)").status().code(),
            StatusCode::kParseError);
  EXPECT_EQ(ParseFormula("@").status().code(), StatusCode::kParseError);
  EXPECT_EQ(ParseFormula("x - y").status().code(), StatusCode::kParseError);
  EXPECT_EQ(ParseFormula("").status().code(), StatusCode::kParseError);
}

TEST(CheckSignatureTest, AcceptsAndRejects) {
  Signature sig;
  sig.AddRelation("E", 2).AddConstant("c");
  Result<Formula> good = ParseFormula("exists x. E(x,c)", &sig);
  ASSERT_TRUE(good.ok());
  EXPECT_TRUE(CheckAgainstSignature(*good, sig).ok());

  Result<Formula> unknown_rel = ParseFormula("F(x)");
  EXPECT_EQ(CheckAgainstSignature(*unknown_rel, sig).code(),
            StatusCode::kSignatureMismatch);

  Result<Formula> bad_arity = ParseFormula("E(x)");
  EXPECT_EQ(CheckAgainstSignature(*bad_arity, sig).code(),
            StatusCode::kSignatureMismatch);

  // A constant from a different signature.
  Formula stray = Formula::Equal(C("d"), V("x"));
  EXPECT_EQ(CheckAgainstSignature(stray, sig).code(),
            StatusCode::kSignatureMismatch);
}

TEST(SubstitutionTest, Basic) {
  Formula f = Formula::Atom("E", {V("x"), V("y")});
  Formula g = SubstituteVariable(f, "x", Term::Var("z"));
  EXPECT_EQ(g, Formula::Atom("E", {V("z"), V("y")}));
}

TEST(SubstitutionTest, ShadowedVariableUntouched) {
  Result<Formula> f = ParseFormula("P(x) & exists x. Q(x)");
  ASSERT_TRUE(f.ok());
  Formula g = SubstituteVariable(*f, "x", Term::Var("w"));
  Result<Formula> expected = ParseFormula("P(w) & exists x. Q(x)");
  EXPECT_EQ(g, *expected);
}

TEST(SubstitutionTest, CaptureAvoidance) {
  // Substituting y for x inside "exists y. E(x,y)" must rename bound y.
  Result<Formula> f = ParseFormula("exists y. E(x,y)");
  ASSERT_TRUE(f.ok());
  Formula g = SubstituteVariable(*f, "x", Term::Var("y"));
  EXPECT_EQ(g.kind(), FormulaKind::kExists);
  EXPECT_NE(g.variable(), "y");  // Renamed.
  EXPECT_EQ(FreeVariables(g), (std::set<std::string>{"y"}));
}

TEST(FreshVariableTest, AvoidsTaken) {
  EXPECT_EQ(FreshVariable("x", {}), "x");
  EXPECT_EQ(FreshVariable("x", {"x"}), "x1");
  EXPECT_EQ(FreshVariable("x", {"x", "x1"}), "x2");
}

TEST(RenameApartTest, MakesBindersDistinct) {
  Result<Formula> f =
      ParseFormula("(exists x. P(x)) & (exists x. Q(x)) & P(x)");
  ASSERT_TRUE(f.ok());
  Formula g = RenameBoundVariablesApart(*f);
  // Free x is preserved.
  EXPECT_EQ(FreeVariables(g), (std::set<std::string>{"x"}));
  // Three distinct variable names now appear.
  EXPECT_EQ(AllVariables(g).size(), 3u);
}

TEST(NnfTest, EliminatesImplicationAndPushesNegation) {
  Result<Formula> f = ParseFormula("!(forall x. P(x) -> Q(x))");
  ASSERT_TRUE(f.ok());
  Formula g = NegationNormalForm(*f);
  // NNF: exists x. P(x) & !Q(x).
  EXPECT_EQ(g.kind(), FormulaKind::kExists);
  EXPECT_EQ(g.body().kind(), FormulaKind::kAnd);
  EXPECT_EQ(g.body().child(1).kind(), FormulaKind::kNot);
  EXPECT_TRUE(g.body().child(1).child(0).is_atomic());
}

TEST(NnfTest, PreservesQuantifierRank) {
  Result<Formula> f =
      ParseFormula("!(exists x. forall y. E(x,y) <-> E(y,x))");
  ASSERT_TRUE(f.ok());
  EXPECT_EQ(QuantifierRank(NegationNormalForm(*f)), QuantifierRank(*f));
}

TEST(SimplifyTest, ConstantFolding) {
  Result<Formula> f = ParseFormula("P(x) & true & (false | Q(x))");
  ASSERT_TRUE(f.ok());
  Formula g = Simplify(*f);
  EXPECT_EQ(g, Formula::And(Formula::Atom("P", {V("x")}),
                            Formula::Atom("Q", {V("x")})));
}

TEST(SimplifyTest, Annihilators) {
  Result<Formula> f = ParseFormula("P(x) & false");
  EXPECT_EQ(Simplify(*f).kind(), FormulaKind::kFalse);
  Result<Formula> g = ParseFormula("P(x) | true");
  EXPECT_EQ(Simplify(*g).kind(), FormulaKind::kTrue);
}

TEST(SimplifyTest, DoubleNegationAndTrivialEquality) {
  Result<Formula> f = ParseFormula("!!P(x)");
  EXPECT_EQ(Simplify(*f), Formula::Atom("P", {V("x")}));
  EXPECT_EQ(Simplify(Formula::Equal(V("x"), V("x"))).kind(),
            FormulaKind::kTrue);
}

TEST(SimplifyTest, QuantifiersNotFolded) {
  // ∃x.true must NOT fold to true (empty structures exist).
  Formula f = Formula::Exists("x", Formula::True());
  EXPECT_EQ(Simplify(f).kind(), FormulaKind::kExists);
}

TEST(PrenexTest, PullsQuantifiersOut) {
  Result<Formula> f =
      ParseFormula("(exists x. P(x)) & (forall y. Q(y))");
  ASSERT_TRUE(f.ok());
  Formula g = PrenexNormalForm(*f);
  EXPECT_EQ(g.kind(), FormulaKind::kExists);
  EXPECT_EQ(g.body().kind(), FormulaKind::kForall);
  EXPECT_EQ(g.body().body().kind(), FormulaKind::kAnd);
}

TEST(PrenexTest, HandlesVariableClashes) {
  Result<Formula> f = ParseFormula("(exists x. P(x)) & (exists x. Q(x))");
  ASSERT_TRUE(f.ok());
  Formula g = PrenexNormalForm(*f);
  EXPECT_EQ(g.kind(), FormulaKind::kExists);
  EXPECT_EQ(g.body().kind(), FormulaKind::kExists);
  EXPECT_NE(g.variable(), g.body().variable());
}

TEST(PrenexTest, NegationThroughQuantifier) {
  Result<Formula> f = ParseFormula("!(exists x. P(x))");
  ASSERT_TRUE(f.ok());
  Formula g = PrenexNormalForm(*f);
  EXPECT_EQ(g.kind(), FormulaKind::kForall);
  EXPECT_EQ(g.body().kind(), FormulaKind::kNot);
}

}  // namespace
}  // namespace fmtk
