#include <gtest/gtest.h>

#include "core/types/rank_type.h"
#include "eval/model_check.h"
#include "logic/parser.h"
#include "words/dfa.h"
#include "words/fo_language.h"
#include "words/word_structure.h"

namespace fmtk {
namespace {

TEST(WordStructureTest, BuchiEncoding) {
  Result<Structure> w = MakeWordStructure("aba", "ab");
  ASSERT_TRUE(w.ok()) << w.status().ToString();
  EXPECT_EQ(w->domain_size(), 3u);
  std::size_t less = *w->signature().FindRelation("<");
  std::size_t pa = *w->signature().FindRelation("Pa");
  std::size_t pb = *w->signature().FindRelation("Pb");
  EXPECT_TRUE(w->relation(less).Contains({0, 2}));
  EXPECT_TRUE(w->relation(pa).Contains({0}));
  EXPECT_TRUE(w->relation(pb).Contains({1}));
  EXPECT_TRUE(w->relation(pa).Contains({2}));
  EXPECT_EQ(w->relation(pa).size(), 2u);
}

TEST(WordStructureTest, EmptyWord) {
  Result<Structure> w = MakeWordStructure("", "ab");
  ASSERT_TRUE(w.ok());
  EXPECT_EQ(w->domain_size(), 0u);
}

TEST(WordStructureTest, Validation) {
  EXPECT_FALSE(MakeWordStructure("abc", "ab").ok());  // c not in alphabet.
  EXPECT_FALSE(WordSignature("").ok());
  EXPECT_FALSE(WordSignature("aa").ok());
  EXPECT_FALSE(WordSignature("a!").ok());
}

TEST(DfaTest, LibraryLanguages) {
  Dfa asbs = Dfa::StarFreeAsThenBs();
  EXPECT_TRUE(*asbs.Accepts(""));
  EXPECT_TRUE(*asbs.Accepts("aaabbb"));
  EXPECT_TRUE(*asbs.Accepts("bbb"));
  EXPECT_FALSE(*asbs.Accepts("aba"));

  Dfa contains = Dfa::ContainsAb();
  EXPECT_TRUE(*contains.Accepts("ab"));
  EXPECT_TRUE(*contains.Accepts("bbabb"));
  EXPECT_FALSE(*contains.Accepts("ba"));
  EXPECT_FALSE(*contains.Accepts(""));

  Dfa even = Dfa::EvenNumberOfAs();
  EXPECT_TRUE(*even.Accepts(""));
  EXPECT_TRUE(*even.Accepts("bb"));
  EXPECT_TRUE(*even.Accepts("aab"));
  EXPECT_FALSE(*even.Accepts("abb"));  // One a.
}

TEST(DfaTest, EvenAsParityExact) {
  Dfa even = Dfa::EvenNumberOfAs();
  EXPECT_TRUE(*even.Accepts("aba"));   // 2 a's.
  EXPECT_FALSE(*even.Accepts("a"));
  EXPECT_FALSE(*even.Accepts("baab" "a"));  // 3 a's.
}

TEST(DfaTest, Complement) {
  Dfa odd = Dfa::EvenNumberOfAs().Complement();
  EXPECT_FALSE(*odd.Accepts(""));
  EXPECT_TRUE(*odd.Accepts("a"));
}

TEST(DfaTest, Validation) {
  EXPECT_FALSE(Dfa::Create("ab", {}, {}).ok());
  EXPECT_FALSE(Dfa::Create("ab", {{0}}, {}).ok());       // Missing letter.
  EXPECT_FALSE(Dfa::Create("ab", {{0, 5}}, {}).ok());    // Bad target.
  EXPECT_FALSE(Dfa::Create("ab", {{0, 0}}, {3}).ok());   // Bad accepting.
  EXPECT_FALSE(Dfa::Create("", {{}}, {}).ok());
  Dfa ok = *Dfa::Create("ab", {{0, 0}}, {0});
  EXPECT_FALSE(ok.Accepts("abc").ok());  // Letter outside alphabet.
}

TEST(ForEachWordTest, CountsWords) {
  std::size_t count = ForEachWord("ab", 3, [](const std::string&) {
    return true;
  });
  EXPECT_EQ(count, 1u + 2u + 4u + 8u);
  // Early stop.
  std::size_t stopped = ForEachWord("ab", 3, [](const std::string& w) {
    return w != "aa";
  });
  EXPECT_LT(stopped, count);
}

TEST(FoLanguageTest, StarFreeLanguagesAreFoDefinable) {
  // McNaughton–Papert, the positive direction, verified on all words up to
  // length 10 (2047 words each).
  Result<LanguageAgreement> asbs = CompareFoWithDfa(
      *AsThenBsSentence(), Dfa::StarFreeAsThenBs(), "ab", 10);
  ASSERT_TRUE(asbs.ok()) << asbs.status().ToString();
  EXPECT_TRUE(asbs->agree) << *asbs->counterexample;
  EXPECT_EQ(asbs->words_checked, 2047u);

  Result<LanguageAgreement> contains = CompareFoWithDfa(
      *ContainsAbSentence(), Dfa::ContainsAb(), "ab", 10);
  ASSERT_TRUE(contains.ok());
  EXPECT_TRUE(contains->agree) << *contains->counterexample;
}

TEST(FoLanguageTest, DisagreementReportsCounterexample) {
  // The a*b* sentence does not define "contains ab"; the comparison finds
  // the first disagreeing word.
  Result<LanguageAgreement> mixed = CompareFoWithDfa(
      *AsThenBsSentence(), Dfa::ContainsAb(), "ab", 6);
  ASSERT_TRUE(mixed.ok());
  EXPECT_FALSE(mixed->agree);
  ASSERT_TRUE(mixed->counterexample.has_value());
  // "" is in a*b* but contains no "ab": first counterexample immediately.
  EXPECT_EQ(*mixed->counterexample, "");
}

TEST(FoLanguageTest, ParityIsNotFoTheGameArgument) {
  // The survey's EVEN argument transported to words: a^m and a^(m+1) are
  // rank-n equivalent for m >= 2^n - 1 (the unary predicate is uniform, so
  // the order argument carries over), yet they differ on even-#a. So no FO
  // sentence of rank n defines the parity language.
  RankTypeIndex index;
  for (std::size_t n = 1; n <= 3; ++n) {
    const std::size_t m = (std::size_t{1} << n) - 1;
    Structure a = *MakeWordStructure(std::string(m, 'a'), "ab");
    Structure b = *MakeWordStructure(std::string(m + 1, 'a'), "ab");
    EXPECT_TRUE(index.EquivalentUpToRank(a, b, n)) << "m=" << m;
    Dfa even = Dfa::EvenNumberOfAs();
    EXPECT_NE(*even.Accepts(std::string(m, 'a')),
              *even.Accepts(std::string(m + 1, 'a')));
  }
  // Sharpness: below the threshold the words are distinguishable.
  Structure two = *MakeWordStructure("aa", "ab");
  Structure three = *MakeWordStructure("aaa", "ab");
  EXPECT_FALSE(index.EquivalentUpToRank(two, three, 2));
}

TEST(FoLanguageTest, FirstAndLastLetterSentences) {
  // "The first letter is a": ∃x (∀y ¬(y<x)) ∧ Pa(x).
  Formula first_a =
      *ParseFormula("exists x. (!(exists y. y < x)) & Pa(x)");
  Structure ab = *MakeWordStructure("ab", "ab");
  Structure ba = *MakeWordStructure("ba", "ab");
  EXPECT_TRUE(*Satisfies(ab, first_a));
  EXPECT_FALSE(*Satisfies(ba, first_a));
  Structure empty = *MakeWordStructure("", "ab");
  EXPECT_FALSE(*Satisfies(empty, first_a));
}

}  // namespace
}  // namespace fmtk
