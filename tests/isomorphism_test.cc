#include <algorithm>

#include <gtest/gtest.h>

#include <random>
#include <vector>

#include "base/hash.h"
#include "structures/generators.h"
#include "structures/graph.h"
#include "structures/isomorphism.h"

namespace fmtk {
namespace {

TEST(PartialIsoTest, EmptyMapIsPartialIso) {
  EXPECT_TRUE(IsPartialIsomorphism(MakeDirectedPath(3), MakeDirectedCycle(4),
                                   {}));
}

TEST(PartialIsoTest, RespectsEdges) {
  Structure p = MakeDirectedPath(3);  // 0->1->2
  Structure q = MakeDirectedPath(3);
  EXPECT_TRUE(IsPartialIsomorphism(p, q, {{0, 0}, {1, 1}}));
  // Mapping an edge to a non-edge fails.
  EXPECT_FALSE(IsPartialIsomorphism(p, q, {{0, 0}, {1, 2}}));
  // Order-reversing map on a directed path fails.
  EXPECT_FALSE(IsPartialIsomorphism(p, q, {{0, 1}, {1, 0}}));
}

TEST(PartialIsoTest, InjectivityRequired) {
  Structure s = MakeSet(3);
  Structure t = MakeSet(3);
  EXPECT_FALSE(IsPartialIsomorphism(s, t, {{0, 0}, {1, 0}}));
  EXPECT_FALSE(IsPartialIsomorphism(s, t, {{0, 0}, {0, 1}}));
  // Repeating the same pair is fine.
  EXPECT_TRUE(IsPartialIsomorphism(s, t, {{0, 0}, {0, 0}}));
}

TEST(PartialIsoTest, SetsAlwaysMatch) {
  EXPECT_TRUE(IsPartialIsomorphism(MakeSet(5), MakeSet(9),
                                   {{0, 3}, {1, 7}, {4, 0}}));
}

TEST(PartialIsoTest, LinearOrderPreservesOrderOnly) {
  Structure a = MakeLinearOrder(5);
  Structure b = MakeLinearOrder(7);
  EXPECT_TRUE(IsPartialIsomorphism(a, b, {{0, 2}, {3, 5}}));
  EXPECT_FALSE(IsPartialIsomorphism(a, b, {{0, 5}, {3, 2}}));
}

TEST(IsoTest, IdenticalStructures) {
  Structure c = MakeDirectedCycle(6);
  EXPECT_TRUE(AreIsomorphic(c, c));
}

TEST(IsoTest, CyclesOfDifferentLengths) {
  EXPECT_FALSE(AreIsomorphic(MakeDirectedCycle(6), MakeDirectedCycle(5)));
}

TEST(IsoTest, SameSizeDifferentShape) {
  // 6-cycle vs two 3-cycles: same node and edge counts.
  EXPECT_FALSE(
      AreIsomorphic(MakeDirectedCycle(6), MakeDisjointCycles(2, 3)));
}

TEST(IsoTest, RelabelledGraphIsIsomorphic) {
  // Build a path with scrambled labels.
  Structure p = MakeDirectedPath(5);
  Structure q(Signature::Graph(), 5);
  // 3->0->4->1->2 is a path under the relabeling.
  q.AddTuple(0, {3, 0});
  q.AddTuple(0, {0, 4});
  q.AddTuple(0, {4, 1});
  q.AddTuple(0, {1, 2});
  EXPECT_TRUE(AreIsomorphic(p, q));
}

TEST(IsoTest, DistinguishedTuplesConstrain) {
  Structure p = MakeDirectedPath(3);
  // The path has an automorphism only as identity; mapping endpoint 0 to
  // endpoint 2 is impossible (orientation).
  EXPECT_TRUE(AreIsomorphic(p, p, {0}, {0}));
  EXPECT_FALSE(AreIsomorphic(p, p, {0}, {2}));
  EXPECT_FALSE(AreIsomorphic(p, p, {0}, {1}));
}

TEST(IsoTest, DistinguishedTupleSymmetry) {
  // On a cycle every node looks alike: any node can map to any node.
  Structure c = MakeDirectedCycle(5);
  for (Element i = 0; i < 5; ++i) {
    EXPECT_TRUE(AreIsomorphic(c, c, {0}, {i}));
  }
  // Pairs: rotation must preserve distance along the cycle.
  EXPECT_TRUE(AreIsomorphic(c, c, {0, 2}, {1, 3}));
  EXPECT_FALSE(AreIsomorphic(c, c, {0, 2}, {1, 4}));
}

TEST(IsoTest, DistinguishedTuplesWithRepeats) {
  Structure c = MakeDirectedCycle(4);
  EXPECT_TRUE(AreIsomorphic(c, c, {0, 0}, {2, 2}));
  EXPECT_FALSE(AreIsomorphic(c, c, {0, 0}, {2, 3}));
}

TEST(IsoTest, SizeMismatch) {
  EXPECT_FALSE(AreIsomorphic(MakeSet(3), MakeSet(4)));
}

TEST(IsoTest, SignatureMismatch) {
  EXPECT_FALSE(AreIsomorphic(MakeLinearOrder(3), MakeDirectedPath(3)));
}

TEST(IsoTest, ConstantsMustCorrespond) {
  auto sig = std::make_shared<Signature>();
  sig->AddRelation("E", 2).AddConstant("c");
  Structure a(sig, 3);
  a.AddTuple(0, {0, 1});
  a.SetConstant(0, 0);
  Structure b(sig, 3);
  b.AddTuple(0, {0, 1});
  b.SetConstant(0, 1);
  // a's constant is the edge source, b's is the target: not isomorphic.
  EXPECT_FALSE(AreIsomorphic(a, b));
  b.SetConstant(0, 0);
  EXPECT_TRUE(AreIsomorphic(a, b));
}

TEST(IsoTest, TreesVsPaths) {
  EXPECT_FALSE(AreIsomorphic(MakeFullBinaryTree(2), MakeDirectedPath(7)));
}

TEST(IsoTest, RandomGraphSelfIsomorphicUnderPermutation) {
  std::mt19937_64 rng(99);
  for (int trial = 0; trial < 10; ++trial) {
    Structure g = MakeRandomGraph(7, 0.3, rng);
    // Apply a random permutation.
    std::vector<Element> perm(7);
    for (Element i = 0; i < 7; ++i) {
      perm[i] = i;
    }
    std::shuffle(perm.begin(), perm.end(), rng);
    Structure h(Signature::Graph(), 7);
    for (const Tuple& t : g.relation(0).tuples()) {
      h.AddTuple(0, {perm[t[0]], perm[t[1]]});
    }
    EXPECT_TRUE(AreIsomorphic(g, h));
  }
}

TEST(IsoTest, PerturbedRandomGraphNotIsomorphic) {
  std::mt19937_64 rng(5);
  Structure g = MakeRandomGraph(7, 0.3, rng);
  Structure h = g;
  // Add one extra edge.
  for (Element i = 0; i < 7; ++i) {
    bool added = false;
    for (Element j = 0; j < 7; ++j) {
      if (i != j && !h.relation(0).Contains({i, j})) {
        h.AddTuple(0, {i, j});
        added = true;
        break;
      }
    }
    if (added) {
      break;
    }
  }
  EXPECT_FALSE(AreIsomorphic(g, h));
}

TEST(InvariantTest, IsomorphicPairsAgree) {
  Structure p = MakeDirectedPath(5);
  Structure q(Signature::Graph(), 5);
  q.AddTuple(0, {3, 0});
  q.AddTuple(0, {0, 4});
  q.AddTuple(0, {4, 1});
  q.AddTuple(0, {1, 2});
  EXPECT_EQ(IsomorphismInvariant(p), IsomorphismInvariant(q));
  EXPECT_EQ(IsomorphismInvariant(p, {0}), IsomorphismInvariant(q, {3}));
}

TEST(InvariantTest, DiscriminatesBasicFamilies) {
  EXPECT_NE(IsomorphismInvariant(MakeDirectedCycle(6)),
            IsomorphismInvariant(MakeDisjointCycles(2, 3)));
  EXPECT_NE(IsomorphismInvariant(MakeDirectedPath(4)),
            IsomorphismInvariant(MakeDirectedPath(5)));
}

TEST(InvariantTest, DistinguishedPositionMatters) {
  Structure p = MakeDirectedPath(5);
  EXPECT_NE(IsomorphismInvariant(p, {0}), IsomorphismInvariant(p, {2}));
}


// Pins the early-stopping IsomorphismInvariant to the original definition:
// initial colors, then n unconditional 1-WL rounds over the Gaifman graph,
// then the final fold. The production version stops refining once the color
// partition stabilizes and fast-forwards the remaining rounds on the class
// quotient; this reference runs every round per element. The results must
// be bit-identical, hash collisions included.
std::size_t ReferenceInvariant(const Structure& s, const Tuple& distinguished) {
  const std::size_t n = s.domain_size();
  Adjacency adjacency = GaifmanAdjacency(s);
  std::vector<std::size_t> color(n);
  for (Element e = 0; e < n; ++e) {
    std::size_t h = 0x517cc1b727220a95ULL;
    for (std::size_t v : AtomicInvariantOf(s, e)) {
      HashCombine(h, v);
    }
    for (std::size_t i = 0; i < distinguished.size(); ++i) {
      if (distinguished[i] == e) {
        HashCombine(h, i + 1);
      }
    }
    std::vector<std::size_t> profile = BfsDistances(adjacency, {e});
    std::sort(profile.begin(), profile.end());
    for (std::size_t d : profile) {
      HashCombine(h, d);
    }
    color[e] = h;
  }
  for (std::size_t round = 0; round < n; ++round) {
    std::vector<std::size_t> next(n);
    for (Element e = 0; e < n; ++e) {
      std::vector<std::size_t> neighbor_colors;
      neighbor_colors.reserve(adjacency[e].size());
      for (Element w : adjacency[e]) {
        neighbor_colors.push_back(color[w]);
      }
      std::sort(neighbor_colors.begin(), neighbor_colors.end());
      std::size_t h = color[e];
      for (std::size_t c : neighbor_colors) {
        HashCombine(h, c);
      }
      next[e] = h;
    }
    color = std::move(next);
  }
  std::size_t seed = n;
  for (std::size_t r = 0; r < s.signature().relation_count(); ++r) {
    HashCombine(seed, s.relation(r).size());
  }
  std::vector<std::size_t> sorted_colors = color;
  std::sort(sorted_colors.begin(), sorted_colors.end());
  for (std::size_t c : sorted_colors) {
    HashCombine(seed, c);
  }
  for (Element e : distinguished) {
    HashCombine(seed, e < n ? color[e] : static_cast<std::size_t>(-1));
  }
  return seed;
}

TEST(InvariantTest, EarlyStopMatchesFullRoundReference) {
  std::vector<Structure> pool;
  pool.push_back(MakeDirectedPath(7));
  pool.push_back(MakeDirectedCycle(9));
  pool.push_back(MakeDisjointCycles(2, 4));
  pool.push_back(MakePathPlusCycle(4));
  pool.push_back(MakeFullBinaryTree(3));
  pool.push_back(MakeGrid(3, 4));
  pool.push_back(MakeCompleteGraph(5));
  pool.push_back(MakeEmptyGraph(5));
  pool.push_back(MakeSet(4));
  pool.push_back(MakeLinearOrder(6));
  std::mt19937_64 rng(20260807);
  for (int i = 0; i < 8; ++i) {
    pool.push_back(MakeRandomGraph(11, 0.2, rng));
    pool.push_back(MakeRandomGraph(8, 0.5, rng));
  }
  for (const Structure& s : pool) {
    EXPECT_EQ(IsomorphismInvariant(s), ReferenceInvariant(s, {}));
    if (s.domain_size() >= 3) {
      const Tuple one = {1};
      const Tuple two = {2, 0};
      EXPECT_EQ(IsomorphismInvariant(s, one), ReferenceInvariant(s, one));
      EXPECT_EQ(IsomorphismInvariant(s, two), ReferenceInvariant(s, two));
    }
  }
}

}  // namespace
}  // namespace fmtk
