#include <gtest/gtest.h>

#include <random>

#include "structures/generators.h"
#include "structures/isomorphism.h"

namespace fmtk {
namespace {

TEST(PartialIsoTest, EmptyMapIsPartialIso) {
  EXPECT_TRUE(IsPartialIsomorphism(MakeDirectedPath(3), MakeDirectedCycle(4),
                                   {}));
}

TEST(PartialIsoTest, RespectsEdges) {
  Structure p = MakeDirectedPath(3);  // 0->1->2
  Structure q = MakeDirectedPath(3);
  EXPECT_TRUE(IsPartialIsomorphism(p, q, {{0, 0}, {1, 1}}));
  // Mapping an edge to a non-edge fails.
  EXPECT_FALSE(IsPartialIsomorphism(p, q, {{0, 0}, {1, 2}}));
  // Order-reversing map on a directed path fails.
  EXPECT_FALSE(IsPartialIsomorphism(p, q, {{0, 1}, {1, 0}}));
}

TEST(PartialIsoTest, InjectivityRequired) {
  Structure s = MakeSet(3);
  Structure t = MakeSet(3);
  EXPECT_FALSE(IsPartialIsomorphism(s, t, {{0, 0}, {1, 0}}));
  EXPECT_FALSE(IsPartialIsomorphism(s, t, {{0, 0}, {0, 1}}));
  // Repeating the same pair is fine.
  EXPECT_TRUE(IsPartialIsomorphism(s, t, {{0, 0}, {0, 0}}));
}

TEST(PartialIsoTest, SetsAlwaysMatch) {
  EXPECT_TRUE(IsPartialIsomorphism(MakeSet(5), MakeSet(9),
                                   {{0, 3}, {1, 7}, {4, 0}}));
}

TEST(PartialIsoTest, LinearOrderPreservesOrderOnly) {
  Structure a = MakeLinearOrder(5);
  Structure b = MakeLinearOrder(7);
  EXPECT_TRUE(IsPartialIsomorphism(a, b, {{0, 2}, {3, 5}}));
  EXPECT_FALSE(IsPartialIsomorphism(a, b, {{0, 5}, {3, 2}}));
}

TEST(IsoTest, IdenticalStructures) {
  Structure c = MakeDirectedCycle(6);
  EXPECT_TRUE(AreIsomorphic(c, c));
}

TEST(IsoTest, CyclesOfDifferentLengths) {
  EXPECT_FALSE(AreIsomorphic(MakeDirectedCycle(6), MakeDirectedCycle(5)));
}

TEST(IsoTest, SameSizeDifferentShape) {
  // 6-cycle vs two 3-cycles: same node and edge counts.
  EXPECT_FALSE(
      AreIsomorphic(MakeDirectedCycle(6), MakeDisjointCycles(2, 3)));
}

TEST(IsoTest, RelabelledGraphIsIsomorphic) {
  // Build a path with scrambled labels.
  Structure p = MakeDirectedPath(5);
  Structure q(Signature::Graph(), 5);
  // 3->0->4->1->2 is a path under the relabeling.
  q.AddTuple(0, {3, 0});
  q.AddTuple(0, {0, 4});
  q.AddTuple(0, {4, 1});
  q.AddTuple(0, {1, 2});
  EXPECT_TRUE(AreIsomorphic(p, q));
}

TEST(IsoTest, DistinguishedTuplesConstrain) {
  Structure p = MakeDirectedPath(3);
  // The path has an automorphism only as identity; mapping endpoint 0 to
  // endpoint 2 is impossible (orientation).
  EXPECT_TRUE(AreIsomorphic(p, p, {0}, {0}));
  EXPECT_FALSE(AreIsomorphic(p, p, {0}, {2}));
  EXPECT_FALSE(AreIsomorphic(p, p, {0}, {1}));
}

TEST(IsoTest, DistinguishedTupleSymmetry) {
  // On a cycle every node looks alike: any node can map to any node.
  Structure c = MakeDirectedCycle(5);
  for (Element i = 0; i < 5; ++i) {
    EXPECT_TRUE(AreIsomorphic(c, c, {0}, {i}));
  }
  // Pairs: rotation must preserve distance along the cycle.
  EXPECT_TRUE(AreIsomorphic(c, c, {0, 2}, {1, 3}));
  EXPECT_FALSE(AreIsomorphic(c, c, {0, 2}, {1, 4}));
}

TEST(IsoTest, DistinguishedTuplesWithRepeats) {
  Structure c = MakeDirectedCycle(4);
  EXPECT_TRUE(AreIsomorphic(c, c, {0, 0}, {2, 2}));
  EXPECT_FALSE(AreIsomorphic(c, c, {0, 0}, {2, 3}));
}

TEST(IsoTest, SizeMismatch) {
  EXPECT_FALSE(AreIsomorphic(MakeSet(3), MakeSet(4)));
}

TEST(IsoTest, SignatureMismatch) {
  EXPECT_FALSE(AreIsomorphic(MakeLinearOrder(3), MakeDirectedPath(3)));
}

TEST(IsoTest, ConstantsMustCorrespond) {
  auto sig = std::make_shared<Signature>();
  sig->AddRelation("E", 2).AddConstant("c");
  Structure a(sig, 3);
  a.AddTuple(0, {0, 1});
  a.SetConstant(0, 0);
  Structure b(sig, 3);
  b.AddTuple(0, {0, 1});
  b.SetConstant(0, 1);
  // a's constant is the edge source, b's is the target: not isomorphic.
  EXPECT_FALSE(AreIsomorphic(a, b));
  b.SetConstant(0, 0);
  EXPECT_TRUE(AreIsomorphic(a, b));
}

TEST(IsoTest, TreesVsPaths) {
  EXPECT_FALSE(AreIsomorphic(MakeFullBinaryTree(2), MakeDirectedPath(7)));
}

TEST(IsoTest, RandomGraphSelfIsomorphicUnderPermutation) {
  std::mt19937_64 rng(99);
  for (int trial = 0; trial < 10; ++trial) {
    Structure g = MakeRandomGraph(7, 0.3, rng);
    // Apply a random permutation.
    std::vector<Element> perm(7);
    for (Element i = 0; i < 7; ++i) {
      perm[i] = i;
    }
    std::shuffle(perm.begin(), perm.end(), rng);
    Structure h(Signature::Graph(), 7);
    for (const Tuple& t : g.relation(0).tuples()) {
      h.AddTuple(0, {perm[t[0]], perm[t[1]]});
    }
    EXPECT_TRUE(AreIsomorphic(g, h));
  }
}

TEST(IsoTest, PerturbedRandomGraphNotIsomorphic) {
  std::mt19937_64 rng(5);
  Structure g = MakeRandomGraph(7, 0.3, rng);
  Structure h = g;
  // Add one extra edge.
  for (Element i = 0; i < 7; ++i) {
    bool added = false;
    for (Element j = 0; j < 7; ++j) {
      if (i != j && !h.relation(0).Contains({i, j})) {
        h.AddTuple(0, {i, j});
        added = true;
        break;
      }
    }
    if (added) {
      break;
    }
  }
  EXPECT_FALSE(AreIsomorphic(g, h));
}

TEST(InvariantTest, IsomorphicPairsAgree) {
  Structure p = MakeDirectedPath(5);
  Structure q(Signature::Graph(), 5);
  q.AddTuple(0, {3, 0});
  q.AddTuple(0, {0, 4});
  q.AddTuple(0, {4, 1});
  q.AddTuple(0, {1, 2});
  EXPECT_EQ(IsomorphismInvariant(p), IsomorphismInvariant(q));
  EXPECT_EQ(IsomorphismInvariant(p, {0}), IsomorphismInvariant(q, {3}));
}

TEST(InvariantTest, DiscriminatesBasicFamilies) {
  EXPECT_NE(IsomorphismInvariant(MakeDirectedCycle(6)),
            IsomorphismInvariant(MakeDisjointCycles(2, 3)));
  EXPECT_NE(IsomorphismInvariant(MakeDirectedPath(4)),
            IsomorphismInvariant(MakeDirectedPath(5)));
}

TEST(InvariantTest, DistinguishedPositionMatters) {
  Structure p = MakeDirectedPath(5);
  EXPECT_NE(IsomorphismInvariant(p, {0}), IsomorphismInvariant(p, {2}));
}

}  // namespace
}  // namespace fmtk
