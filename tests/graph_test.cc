#include <gtest/gtest.h>

#include "structures/generators.h"
#include "structures/graph.h"

namespace fmtk {
namespace {

TEST(AdjacencyTest, OutAdjacency) {
  Structure p = MakeDirectedPath(4);
  Adjacency adj = OutAdjacency(p, 0);
  ASSERT_EQ(adj.size(), 4u);
  EXPECT_EQ(adj[0], (std::vector<Element>{1}));
  EXPECT_TRUE(adj[3].empty());
}

TEST(AdjacencyTest, UndirectedAdjacencySymmetrizes) {
  Structure p = MakeDirectedPath(3);
  Adjacency adj = UndirectedAdjacency(p, 0);
  EXPECT_EQ(adj[1], (std::vector<Element>{0, 2}));
  EXPECT_EQ(adj[0], (std::vector<Element>{1}));
}

TEST(AdjacencyTest, LoopsAreKeptOnce) {
  Structure s = MakeDirectedCycle(1);
  Adjacency adj = UndirectedAdjacency(s, 0);
  EXPECT_EQ(adj[0], (std::vector<Element>{0}));
}

TEST(BfsTest, Distances) {
  Structure p = MakeDirectedPath(5);
  std::vector<std::size_t> d = BfsDistances(UndirectedAdjacency(p, 0), {0});
  EXPECT_EQ(d[0], 0u);
  EXPECT_EQ(d[4], 4u);
}

TEST(BfsTest, MultiSource) {
  Structure p = MakeDirectedPath(5);
  std::vector<std::size_t> d =
      BfsDistances(UndirectedAdjacency(p, 0), {0, 4});
  EXPECT_EQ(d[2], 2u);
  EXPECT_EQ(d[3], 1u);
}

TEST(BfsTest, Unreachable) {
  Structure g = MakeEmptyGraph(3);
  std::vector<std::size_t> d = BfsDistances(UndirectedAdjacency(g, 0), {0});
  EXPECT_EQ(d[0], 0u);
  EXPECT_EQ(d[1], kUnreachable);
}

TEST(ConnectivityTest, PathIsConnected) {
  EXPECT_TRUE(IsConnected(UndirectedAdjacency(MakeDirectedPath(6), 0)));
}

TEST(ConnectivityTest, TwoCyclesAreNot) {
  EXPECT_FALSE(
      IsConnected(UndirectedAdjacency(MakeDisjointCycles(2, 4), 0)));
  EXPECT_TRUE(IsConnected(UndirectedAdjacency(MakeDirectedCycle(8), 0)));
}

TEST(ConnectivityTest, EdgeCases) {
  EXPECT_TRUE(IsConnected(UndirectedAdjacency(MakeEmptyGraph(0), 0)));
  EXPECT_TRUE(IsConnected(UndirectedAdjacency(MakeEmptyGraph(1), 0)));
  EXPECT_FALSE(IsConnected(UndirectedAdjacency(MakeEmptyGraph(2), 0)));
}

TEST(ComponentsTest, CountsComponents) {
  std::vector<std::size_t> comp =
      ConnectedComponents(UndirectedAdjacency(MakeDisjointCycles(3, 3), 0));
  EXPECT_EQ(comp[0], comp[2]);
  EXPECT_NE(comp[0], comp[3]);
  EXPECT_NE(comp[3], comp[6]);
}

TEST(AcyclicityTest, DirectedPathIsAcyclic) {
  EXPECT_TRUE(IsAcyclicDirected(OutAdjacency(MakeDirectedPath(5), 0)));
  EXPECT_FALSE(IsAcyclicDirected(OutAdjacency(MakeDirectedCycle(5), 0)));
}

TEST(AcyclicityTest, UndirectedReading) {
  // A directed path is acyclic undirected; a cycle is not.
  EXPECT_TRUE(IsAcyclicUndirected(UndirectedAdjacency(MakeDirectedPath(5), 0)));
  EXPECT_FALSE(
      IsAcyclicUndirected(UndirectedAdjacency(MakeDirectedCycle(5), 0)));
  // Trees are acyclic.
  EXPECT_TRUE(
      IsAcyclicUndirected(UndirectedAdjacency(MakeFullBinaryTree(3), 0)));
  // Self loop.
  EXPECT_FALSE(
      IsAcyclicUndirected(UndirectedAdjacency(MakeDirectedCycle(1), 0)));
}

TEST(TransitiveClosureTest, Path) {
  Structure p = MakeDirectedPath(4);
  Relation tc = TransitiveClosure(p, 0);
  EXPECT_EQ(tc.size(), 6u);  // all i<j pairs
  EXPECT_TRUE(tc.Contains({0, 3}));
  EXPECT_FALSE(tc.Contains({3, 0}));
  EXPECT_FALSE(tc.Contains({0, 0}));
}

TEST(TransitiveClosureTest, CycleIsCompleteWithLoops) {
  Relation tc = TransitiveClosure(MakeDirectedCycle(3), 0);
  EXPECT_EQ(tc.size(), 9u);
  EXPECT_TRUE(tc.Contains({1, 1}));
}

TEST(DegreeTest, PathDegrees) {
  Structure p = MakeDirectedPath(4);
  std::vector<std::size_t> in = InDegrees(p, 0);
  std::vector<std::size_t> out = OutDegrees(p, 0);
  EXPECT_EQ(in[0], 0u);
  EXPECT_EQ(in[1], 1u);
  EXPECT_EQ(out[3], 0u);
  std::set<std::size_t> degs = DegreeSet(p, 0);
  EXPECT_EQ(degs, (std::set<std::size_t>{0, 1}));
}

TEST(DegreeTest, ClosureOfPathRealizesManyDegrees) {
  // The survey's BNDP warm-up: TC of an n-chain realizes degrees 0..n-1.
  const std::size_t n = 6;
  Relation tc = TransitiveClosure(MakeDirectedPath(n), 0);
  std::set<std::size_t> degs = DegreeSet(tc, n);
  EXPECT_EQ(degs.size(), n);
}

TEST(DegreeTest, MaxDegree) {
  EXPECT_EQ(MaxDegree(MakeDirectedPath(5), 0), 2u);
  EXPECT_EQ(MaxDegree(MakeFullBinaryTree(2), 0), 3u);
  EXPECT_EQ(MaxDegree(MakeEmptyGraph(3), 0), 0u);
}

TEST(GaifmanTest, GraphGaifmanMatchesUndirected) {
  Structure c = MakeDirectedCycle(5);
  EXPECT_EQ(GaifmanAdjacency(c), UndirectedAdjacency(c, 0));
}

TEST(GaifmanTest, TernaryRelationMakesCliques) {
  auto sig = std::make_shared<Signature>();
  sig->AddRelation("R", 3);
  Structure s(sig, 4);
  s.AddTuple(0, {0, 1, 2});
  Adjacency adj = GaifmanAdjacency(s);
  EXPECT_EQ(adj[0], (std::vector<Element>{1, 2}));
  EXPECT_EQ(adj[1], (std::vector<Element>{0, 2}));
  EXPECT_TRUE(adj[3].empty());
}

TEST(GaifmanTest, RepeatedElementsNoSelfLoop) {
  auto sig = std::make_shared<Signature>();
  sig->AddRelation("R", 2);
  Structure s(sig, 2);
  s.AddTuple(0, {1, 1});
  Adjacency adj = GaifmanAdjacency(s);
  EXPECT_TRUE(adj[1].empty());
}

}  // namespace
}  // namespace fmtk
