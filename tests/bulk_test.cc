#include <gtest/gtest.h>

#include <algorithm>
#include <random>
#include <vector>

#include "base/interner.h"
#include "structures/bulk_load.h"
#include "structures/relation.h"
#include "structures/relation_builder.h"

namespace fmtk {
namespace {

// Reference model: build the same relation tuple-at-a-time.
Relation Incremental(std::size_t arity, const std::vector<Tuple>& rows) {
  Relation r(arity);
  for (const Tuple& t : rows) {
    r.AddCopy(t);
  }
  return r;
}

TEST(RelationBuilderTest, SmallPackedBuild) {
  RelationBuilder b(2);
  for (const Tuple& t :
       std::vector<Tuple>{{3, 1}, {0, 2}, {3, 1}, {0, 0}, {2, 3}}) {
    b.Add(t);
  }
  Relation r = b.Build();
  EXPECT_EQ(r.size(), 4u);
  EXPECT_EQ(b.DuplicatesDropped(), 1u);
  EXPECT_TRUE(r.Contains({3, 1}));
  EXPECT_TRUE(r.Contains({0, 0}));
  EXPECT_FALSE(r.Contains({1, 3}));
  // The flat store comes out lexicographically sorted.
  for (std::size_t i = 1; i < r.size(); ++i) {
    EXPECT_TRUE(std::lexicographical_compare(
        r.TupleData(i - 1), r.TupleData(i - 1) + 2, r.TupleData(i),
        r.TupleData(i) + 2));
  }
}

TEST(RelationBuilderTest, ArityZeroAndOne) {
  RelationBuilder empty(0);
  EXPECT_TRUE(empty.Build().empty());

  RelationBuilder flag(0);
  flag.Add(Tuple{});
  flag.Add(Tuple{});
  Relation r0 = flag.Build();
  EXPECT_EQ(r0.size(), 1u);
  EXPECT_TRUE(r0.Contains({}));

  RelationBuilder unary(1);
  for (Element e : {5u, 2u, 5u, 9u, 0u}) {
    unary.Add(Tuple{e});
  }
  Relation r1 = unary.Build();
  EXPECT_EQ(r1.size(), 4u);
  EXPECT_TRUE(r1.Contains({9}));
  EXPECT_FALSE(r1.Contains({1}));
}

TEST(RelationBuilderTest, MultiRunMergeMatchesIncremental) {
  // Tiny runs force the k-way merge across many runs, with duplicates that
  // only collide across run boundaries.
  std::mt19937_64 rng(7);
  std::vector<Tuple> rows;
  for (int i = 0; i < 500; ++i) {
    rows.push_back({static_cast<Element>(rng() % 20),
                    static_cast<Element>(rng() % 20)});
  }
  RelationBuilder b(2, /*run_rows=*/8);
  for (const Tuple& t : rows) {
    b.Add(t);
  }
  Relation bulk = b.Build();
  Relation reference = Incremental(2, rows);
  EXPECT_EQ(bulk.size(), reference.size());
  EXPECT_TRUE(bulk == reference);
  EXPECT_EQ(b.rows_added(), 500u);
  EXPECT_EQ(b.rows_built(), bulk.size());
}

TEST(RelationBuilderTest, WideArityMatchesIncremental) {
  std::mt19937_64 rng(11);
  std::vector<Tuple> rows;
  for (int i = 0; i < 400; ++i) {
    rows.push_back({static_cast<Element>(rng() % 6),
                    static_cast<Element>(rng() % 6),
                    static_cast<Element>(rng() % 6),
                    static_cast<Element>(rng() % 6)});
  }
  RelationBuilder b(4, /*run_rows=*/16);
  for (const Tuple& t : rows) {
    b.Add(t);
  }
  Relation bulk = b.Build();
  EXPECT_TRUE(bulk == Incremental(4, rows));
}

TEST(RelationBuilderTest, BulkColumnIndexesMatchIncremental) {
  std::mt19937_64 rng(13);
  std::vector<Tuple> rows;
  for (int i = 0; i < 300; ++i) {
    rows.push_back({static_cast<Element>(rng() % 15),
                    static_cast<Element>(rng() % 15)});
  }
  RelationBuilder b(2, /*run_rows=*/32);
  for (const Tuple& t : rows) {
    b.Add(t);
  }
  Relation bulk = b.Build(/*build_column_indexes=*/true);
  Relation reference = Incremental(2, rows);
  for (std::size_t col = 0; col < 2; ++col) {
    EXPECT_EQ(bulk.ColumnValues(col), reference.ColumnValues(col));
    for (Element e : bulk.ColumnValues(col)) {
      // Postings address different insertion orders in the two relations;
      // compare the tuple multisets they select.
      std::vector<Tuple> a, c;
      for (std::size_t i : bulk.MatchesAt(col, e)) {
        a.push_back(bulk.tuples()[i]);
      }
      for (std::size_t i : reference.MatchesAt(col, e)) {
        c.push_back(reference.tuples()[i]);
      }
      std::sort(a.begin(), a.end());
      std::sort(c.begin(), c.end());
      EXPECT_EQ(a, c) << "column " << col << " element " << e;
    }
  }
}

TEST(RelationBuilderTest, AddAfterBulkBuildStillWorks) {
  RelationBuilder b(2);
  b.Add(Tuple{0, 1});
  b.Add(Tuple{2, 3});
  Relation r = b.Build();
  EXPECT_FALSE(r.Add({0, 1}));  // Already in the sorted prefix.
  EXPECT_TRUE(r.Add({1, 1}));   // New row lands in the hash suffix.
  EXPECT_FALSE(r.Add({1, 1}));
  EXPECT_EQ(r.size(), 3u);
  EXPECT_TRUE(r.Contains({1, 1}));
  // Column index catches up over the appended suffix.
  EXPECT_EQ(r.MatchesAt(0, 1).size(), 1u);
}

TEST(RelationTest, FromRowsUniqueSkipsDuplicates) {
  Relation r = Relation::FromRowsUnique(2, {5, 1, 0, 2, 5, 1, 3, 3});
  EXPECT_EQ(r.size(), 3u);
  EXPECT_TRUE(r.Contains({5, 1}));
  EXPECT_TRUE(r.Contains({3, 3}));
  EXPECT_FALSE(r.Contains({1, 5}));
}

TEST(StringInternerTest, DenseIdsInFirstAppearanceOrder) {
  StringInterner interner;
  EXPECT_EQ(interner.Intern("alice"), 0u);
  EXPECT_EQ(interner.Intern("bob"), 1u);
  EXPECT_EQ(interner.Intern("alice"), 0u);
  EXPECT_EQ(interner.Intern("carol"), 2u);
  EXPECT_EQ(interner.size(), 3u);
  EXPECT_EQ(interner.NameOf(1), "bob");
  EXPECT_EQ(interner.Find("dave"), nullptr);
  // Views stay valid across arena growth.
  std::string_view first = interner.NameOf(0);
  for (int i = 0; i < 50000; ++i) {
    interner.Intern("key" + std::to_string(i));
  }
  EXPECT_EQ(first, "alice");
  EXPECT_EQ(interner.NameOf(0), "alice");
}

TEST(EdgeListLoaderTest, InternModeBuildsDenseGraph) {
  DiagnosticSink sink;
  Result<LoadedGraph> g = LoadEdgeListText(
      "alice bob\nbob carol\ncarol alice\n", {}, &sink);
  ASSERT_TRUE(g.ok()) << g.status().ToString();
  EXPECT_EQ(g->structure.domain_size(), 3u);
  ASSERT_EQ(g->ids.size(), 3u);
  EXPECT_EQ(g->ids[0], "alice");
  EXPECT_EQ(g->ids[2], "carol");
  const Relation& e = g->structure.relation(0);
  EXPECT_EQ(e.size(), 3u);
  EXPECT_TRUE(e.Contains({0, 1}));  // alice -> bob
  EXPECT_TRUE(e.Contains({2, 0}));  // carol -> alice
  EXPECT_EQ(g->stats.records, 3u);
  EXPECT_EQ(g->stats.bytes, 32u);
}

TEST(EdgeListLoaderTest, NumericModeInfersDomain) {
  EdgeListOptions numeric;
  numeric.id_mode = EdgeListOptions::IdMode::kNumeric;
  Result<LoadedGraph> g = LoadEdgeListText("0 5\n2 1\n", numeric);
  ASSERT_TRUE(g.ok()) << g.status().ToString();
  EXPECT_EQ(g->structure.domain_size(), 6u);  // max id + 1
  EXPECT_TRUE(g->ids.empty());
  EXPECT_TRUE(g->structure.relation(0).Contains({0, 5}));
}

TEST(EdgeListLoaderTest, SeparatorsCommentsAndUndirected) {
  EdgeListOptions options;
  options.relation_name = "adj";
  options.undirected = true;
  Result<LoadedGraph> g = LoadEdgeListText(
      "# header\n"
      "a,b\n"
      "b\tc\n"
      "% trailer comment\n",
      options);
  ASSERT_TRUE(g.ok()) << g.status().ToString();
  EXPECT_EQ(g->structure.signature().relation(0).name, "adj");
  const Relation& adj = g->structure.relation(0);
  EXPECT_EQ(adj.size(), 4u);  // Both orientations of both edges.
  EXPECT_TRUE(adj.Contains({1, 0}));
  EXPECT_TRUE(adj.Contains({2, 1}));
}

TEST(EdgeListLoaderTest, CrLfAndNoTrailingNewline) {
  Result<LoadedGraph> g = LoadEdgeListText("0 1\r\n1 2");
  ASSERT_TRUE(g.ok()) << g.status().ToString();
  EXPECT_EQ(g->structure.relation(0).size(), 2u);
}

TEST(EdgeListLoaderTest, LoaderAgreesWithIncrementalAdds) {
  // Differential check on a random graph: the streamed bulk path and the
  // naive AddTuple path produce the same structure.
  std::mt19937_64 rng(42);
  std::string text;
  std::vector<Tuple> edges;
  for (int i = 0; i < 2000; ++i) {
    const Element u = static_cast<Element>(rng() % 50);
    const Element v = static_cast<Element>(rng() % 50);
    text += std::to_string(u) + " " + std::to_string(v) + "\n";
    edges.push_back({u, v});
  }
  EdgeListOptions numeric;
  numeric.id_mode = EdgeListOptions::IdMode::kNumeric;
  numeric.domain_size = 50;
  Result<LoadedGraph> g = LoadEdgeListText(text, numeric);
  ASSERT_TRUE(g.ok()) << g.status().ToString();
  EXPECT_TRUE(g->structure.relation(0) == Incremental(2, edges));
}

}  // namespace
}  // namespace fmtk
