// Property tests for the perf-kernel layer (base/bitset.h,
// base/sorted_intersect.h, base/flat_hash.h, base/hash.h): each kernel is
// exercised against the standard-library reference implementation it
// replaces, under randomized workloads with fixed seeds.

#include <gtest/gtest.h>

#include <algorithm>
#include <cstdint>
#include <random>
#include <set>
#include <unordered_map>
#include <vector>

#include "base/bitset.h"
#include "base/flat_hash.h"
#include "base/hash.h"
#include "base/popcount.h"
#include "base/simd.h"
#include "base/sorted_intersect.h"

namespace fmtk {
namespace {

// --- ElementBitset vs std::vector<bool> -----------------------------------

TEST(BitsetTest, RandomOpsMatchVectorBoolReference) {
  std::mt19937 rng(42);
  for (std::size_t n : {0u, 1u, 63u, 64u, 65u, 200u, 1000u}) {
    ElementBitset bits(n);
    std::vector<bool> ref(n, false);
    if (n == 0) {
      EXPECT_EQ(bits.Count(), 0u);
      EXPECT_FALSE(bits.Any());
      continue;
    }
    std::uniform_int_distribution<std::size_t> pos(0, n - 1);
    for (int step = 0; step < 500; ++step) {
      const std::size_t i = pos(rng);
      if (rng() % 2 == 0) {
        bits.Set(i);
        ref[i] = true;
      } else {
        bits.Clear(i);
        ref[i] = false;
      }
    }
    std::size_t ref_count = 0;
    for (std::size_t i = 0; i < n; ++i) {
      EXPECT_EQ(bits.Test(i), ref[i]) << "bit " << i << " of " << n;
      ref_count += ref[i] ? 1 : 0;
    }
    EXPECT_EQ(bits.Count(), ref_count);
    EXPECT_EQ(bits.Any(), ref_count > 0);
  }
}

TEST(BitsetTest, SetAlgebraMatchesReference) {
  std::mt19937 rng(7);
  const std::size_t n = 257;  // non-multiple of 64 exercises the tail word
  for (int round = 0; round < 20; ++round) {
    ElementBitset a(n), b(n);
    std::vector<bool> ra(n, false), rb(n, false);
    for (std::size_t i = 0; i < n; ++i) {
      if (rng() % 3 == 0) {
        a.Set(i);
        ra[i] = true;
      }
      if (rng() % 3 == 0) {
        b.Set(i);
        rb[i] = true;
      }
    }
    ElementBitset and_set = a, or_set = a, andnot_set = a;
    and_set.AndWith(b);
    or_set.OrWith(b);
    andnot_set.AndNotWith(b);
    for (std::size_t i = 0; i < n; ++i) {
      EXPECT_EQ(and_set.Test(i), ra[i] && rb[i]);
      EXPECT_EQ(or_set.Test(i), ra[i] || rb[i]);
      EXPECT_EQ(andnot_set.Test(i), ra[i] && !rb[i]);
    }
  }
}

TEST(BitsetTest, ForEachSetBitAscendingAndComplete) {
  ElementBitset bits(130);
  const std::vector<std::uint32_t> members = {0, 1, 63, 64, 65, 127, 128, 129};
  for (std::uint32_t m : members) {
    bits.Set(m);
  }
  std::vector<std::uint32_t> seen;
  bits.ForEachSetBit(
      [&seen](std::size_t i) { seen.push_back(static_cast<std::uint32_t>(i)); });
  EXPECT_EQ(seen, members);
  std::vector<std::uint32_t> appended;
  bits.AppendSetBits(appended);
  EXPECT_EQ(appended, members);
  EXPECT_EQ(bits, ElementBitset::FromList(130, members));
}

TEST(BitsetTest, SetAllRespectsTailInvariant) {
  for (std::size_t n : {1u, 64u, 65u, 127u, 128u, 130u}) {
    ElementBitset bits(n);
    bits.SetAll();
    EXPECT_EQ(bits.Count(), n);
    ElementBitset empty(n);
    bits.AndNotWith(bits);  // x & ~x == 0
    EXPECT_EQ(bits, empty);
  }
}

TEST(PopcountTest, PopcountWordsMatchesScalarReference) {
  // Lengths straddle the AVX2 4-word stride (0..3 tail words) and run long
  // enough to exercise several full vector iterations.
  std::mt19937_64 rng(99);
  for (std::size_t n :
       {0u, 1u, 2u, 3u, 4u, 5u, 7u, 8u, 15u, 16u, 64u, 129u, 1000u}) {
    std::vector<std::uint64_t> words(n);
    for (std::uint64_t& w : words) {
      switch (rng() % 4) {
        case 0: w = 0; break;
        case 1: w = ~std::uint64_t{0}; break;
        case 2: w = rng(); break;
        default: w = rng() & rng() & rng(); break;  // sparse
      }
    }
    std::uint64_t ref = 0;
    for (const std::uint64_t w : words) {
      ref += static_cast<std::uint64_t>(__builtin_popcountll(w));
    }
    EXPECT_EQ(PopcountWords(words.data(), n), ref) << "n=" << n;
  }
}

// --- Sorted intersection vs std::set_intersection -------------------------

template <typename T>
std::vector<T> RandomSortedUnique(std::mt19937& rng, std::size_t max_size,
                                  T universe) {
  std::uniform_int_distribution<std::size_t> size_dist(0, max_size);
  std::uniform_int_distribution<T> value_dist(0, universe);
  std::set<T> s;
  const std::size_t target = size_dist(rng);
  while (s.size() < target) {
    s.insert(value_dist(rng));
  }
  return std::vector<T>(s.begin(), s.end());
}

template <typename T>
void CheckIntersectionKernels(const std::vector<T>& a,
                              const std::vector<T>& b) {
  std::vector<T> expected;
  std::set_intersection(a.begin(), a.end(), b.begin(), b.end(),
                        std::back_inserter(expected));
  const std::size_t cap = std::min(a.size(), b.size());

  std::vector<T> got(cap);
  got.resize(
      IntersectSortedScalar(a.data(), a.size(), b.data(), b.size(), got.data()));
  EXPECT_EQ(got, expected) << "scalar kernel";

  got.assign(cap, T{});
  got.resize(IntersectSortedGalloping(a.data(), a.size(), b.data(), b.size(),
                                      got.data()));
  EXPECT_EQ(got, expected) << "galloping kernel";

  // Swapped-argument galloping (gallops through the other list).
  got.assign(cap, T{});
  got.resize(IntersectSortedGalloping(b.data(), b.size(), a.data(), a.size(),
                                      got.data()));
  EXPECT_EQ(got, expected) << "galloping kernel, swapped";

  std::vector<T> dispatched;
  IntersectSorted(a, b, dispatched);
  EXPECT_EQ(dispatched, expected) << "dispatched kernel (" << SimdLevelName()
                                  << ")";
}

TEST(SortedIntersectTest, RandomListsMatchSetIntersection32) {
  std::mt19937 rng(1234);
  for (int round = 0; round < 200; ++round) {
    const auto a = RandomSortedUnique<std::uint32_t>(rng, 200, 500);
    const auto b = RandomSortedUnique<std::uint32_t>(rng, 200, 500);
    CheckIntersectionKernels(a, b);
  }
}

TEST(SortedIntersectTest, RandomListsMatchSetIntersection64) {
  std::mt19937 rng(5678);
  for (int round = 0; round < 200; ++round) {
    const auto a = RandomSortedUnique<std::uint64_t>(rng, 200, 500);
    const auto b = RandomSortedUnique<std::uint64_t>(rng, 200, 500);
    CheckIntersectionKernels(a, b);
  }
}

TEST(SortedIntersectTest, SkewedSizesTriggerGallop) {
  std::mt19937 rng(99);
  for (int round = 0; round < 50; ++round) {
    const auto small = RandomSortedUnique<std::uint32_t>(rng, 8, 100000);
    const auto big = RandomSortedUnique<std::uint32_t>(rng, 2000, 100000);
    CheckIntersectionKernels(small, big);
    CheckIntersectionKernels(big, small);
  }
}

TEST(SortedIntersectTest, EdgeCases) {
  const std::vector<std::uint32_t> empty;
  const std::vector<std::uint32_t> one = {5};
  const std::vector<std::uint32_t> run = {1, 2, 3, 4, 5, 6, 7, 8, 9};
  CheckIntersectionKernels(empty, empty);
  CheckIntersectionKernels(empty, run);
  CheckIntersectionKernels(one, run);
  CheckIntersectionKernels(run, run);
  std::vector<std::uint32_t> acc = {2, 4, 6, 8};
  std::vector<std::uint32_t> scratch;
  IntersectSortedInPlace(acc, run, scratch);
  EXPECT_EQ(acc, (std::vector<std::uint32_t>{2, 4, 6, 8}));
  IntersectSortedInPlace(acc, one, scratch);
  EXPECT_TRUE(acc.empty());
}

// --- FlatHashMap vs std::unordered_map ------------------------------------

TEST(FlatHashMapTest, RandomizedInsertFindEraseMatchesUnorderedMap) {
  std::mt19937 rng(2026);
  FlatHashMap<std::uint64_t, int> flat;
  std::unordered_map<std::uint64_t, int> ref;
  std::uniform_int_distribution<std::uint64_t> key_dist(0, 400);
  for (int step = 0; step < 20000; ++step) {
    const std::uint64_t key = key_dist(rng);
    switch (rng() % 3) {
      case 0: {  // insert-if-absent
        const int value = static_cast<int>(rng() % 1000);
        auto [ptr, inserted] = flat.TryEmplace(key, value);
        auto [it, ref_inserted] = ref.try_emplace(key, value);
        EXPECT_EQ(inserted, ref_inserted);
        EXPECT_EQ(*ptr, it->second);
        break;
      }
      case 1: {  // find
        const int* found = flat.Find(key);
        auto it = ref.find(key);
        ASSERT_EQ(found != nullptr, it != ref.end());
        if (found != nullptr) {
          EXPECT_EQ(*found, it->second);
        }
        break;
      }
      case 2: {  // erase
        EXPECT_EQ(flat.Erase(key), ref.erase(key) > 0);
        break;
      }
    }
    ASSERT_EQ(flat.size(), ref.size());
  }
  // Full-content check at the end, both directions.
  std::size_t visited = 0;
  flat.ForEach([&](const std::uint64_t& key, const int& value) {
    auto it = ref.find(key);
    ASSERT_NE(it, ref.end());
    EXPECT_EQ(value, it->second);
    ++visited;
  });
  EXPECT_EQ(visited, ref.size());
}

TEST(FlatHashMapTest, VectorKeysWithVectorHash) {
  std::mt19937 rng(31337);
  FlatHashMap<std::vector<std::uint32_t>, std::size_t,
              VectorHash<std::uint32_t>>
      flat;
  std::unordered_map<std::vector<std::uint32_t>, std::size_t,
                     VectorHash<std::uint32_t>>
      ref;
  for (int step = 0; step < 5000; ++step) {
    std::vector<std::uint32_t> key(rng() % 4);
    for (auto& v : key) {
      v = static_cast<std::uint32_t>(rng() % 10);
    }
    if (rng() % 4 == 0) {
      EXPECT_EQ(flat.Erase(key), ref.erase(key) > 0);
    } else {
      const std::size_t value = ref.size();
      auto [ptr, inserted] = flat.TryEmplace(key, value);
      auto [it, ref_inserted] = ref.try_emplace(key, value);
      EXPECT_EQ(inserted, ref_inserted);
      EXPECT_EQ(*ptr, it->second);
    }
    ASSERT_EQ(flat.size(), ref.size());
  }
  for (const auto& [key, value] : ref) {
    const std::size_t* found = flat.Find(key);
    ASSERT_NE(found, nullptr);
    EXPECT_EQ(*found, value);
  }
}

TEST(FlatHashMapTest, OperatorBracketAndReserve) {
  FlatHashMap<std::uint64_t, std::vector<int>> map;
  map.Reserve(1000);
  for (std::uint64_t i = 0; i < 1000; ++i) {
    map[i % 100].push_back(static_cast<int>(i));
  }
  EXPECT_EQ(map.size(), 100u);
  for (std::uint64_t k = 0; k < 100; ++k) {
    const std::vector<int>* list = map.Find(k);
    ASSERT_NE(list, nullptr);
    EXPECT_EQ(list->size(), 10u);
    EXPECT_EQ((*list)[0], static_cast<int>(k));
  }
  map.clear();
  EXPECT_TRUE(map.empty());
  EXPECT_EQ(map.Find(5), nullptr);
}

// Backward-shift erase must not break probe chains: force collisions with a
// constant-hash functor and erase from the middle of the cluster.
TEST(FlatHashMapTest, EraseInsideCollisionClusterKeepsChainReachable) {
  struct ConstantHash {
    std::size_t operator()(int) const { return 7; }
  };
  FlatHashMap<int, int, ConstantHash> map;
  for (int k = 0; k < 12; ++k) {
    map.TryEmplace(k, 100 + k);
  }
  EXPECT_TRUE(map.Erase(3));
  EXPECT_TRUE(map.Erase(0));
  EXPECT_TRUE(map.Erase(11));
  EXPECT_FALSE(map.Erase(3));
  for (int k : {1, 2, 4, 5, 6, 7, 8, 9, 10}) {
    const int* v = map.Find(k);
    ASSERT_NE(v, nullptr) << "key " << k << " lost after cluster erase";
    EXPECT_EQ(*v, 100 + k);
  }
  EXPECT_EQ(map.size(), 9u);
}

// --- hash.h mixer regression ----------------------------------------------

// libstdc++'s std::hash<int> is the identity, so before the Mix64 fix the
// high bits of sequential keys' hashes were all zero and any power-of-two
// bucketing by high or mid bits collapsed into one bucket. Bucket sequential
// keys by the TOP bits of their mixed hash and require an even spread.
TEST(HashMixerTest, SequentialKeysSpreadAcrossHighBitBuckets) {
  constexpr std::size_t kKeys = 4096;
  constexpr std::size_t kBuckets = 256;  // top 8 bits
  std::vector<std::size_t> load(kBuckets, 0);
  for (std::size_t key = 0; key < kKeys; ++key) {
    const std::size_t h = ScalarHash(key);
    ++load[h >> 56];
  }
  const std::size_t expected = kKeys / kBuckets;  // 16 per bucket
  const std::size_t max_load = *std::max_element(load.begin(), load.end());
  // Identity hashing puts all 4096 keys in bucket 0 (max_load == 4096); a
  // well-mixed hash stays within a few multiples of the mean.
  EXPECT_LE(max_load, 4 * expected);
}

TEST(HashMixerTest, SequentialPairsSpreadAcrossLowBitBuckets) {
  constexpr std::size_t kBuckets = 4096;
  std::vector<std::size_t> load(kBuckets, 0);
  VectorHash<std::uint32_t> h;
  for (std::uint32_t i = 0; i < 64; ++i) {
    for (std::uint32_t j = 0; j < 64; ++j) {
      ++load[h({i, j}) & (kBuckets - 1)];
    }
  }
  const std::size_t max_load = *std::max_element(load.begin(), load.end());
  EXPECT_LE(max_load, 8u);  // 4096 keys over 4096 buckets, mean 1
}

TEST(HashMixerTest, Mix64IsBijectiveOnSamples) {
  // Distinct inputs must keep distinct outputs (Mix64 is a bijection);
  // catches accidental information-losing edits to the mixer.
  std::set<std::uint64_t> outputs;
  for (std::uint64_t x = 0; x < 10000; ++x) {
    outputs.insert(Mix64(x));
  }
  EXPECT_EQ(outputs.size(), 10000u);
}

}  // namespace
}  // namespace fmtk
