#include <gtest/gtest.h>

#include "core/games/ef_game.h"
#include "core/games/linear_order.h"
#include "core/games/strategy.h"
#include "structures/generators.h"

namespace fmtk {
namespace {

TEST(SetMirrorStrategyTest, WinsOnLargeEnoughSets) {
  SetMirrorStrategy strategy;
  for (std::size_t n = 1; n <= 4; ++n) {
    for (std::size_t s1 = n; s1 <= n + 2; ++s1) {
      for (std::size_t s2 = n; s2 <= n + 2; ++s2) {
        Structure a = MakeSet(s1);
        Structure b = MakeSet(s2);
        Result<bool> survives = StrategySurvives(a, b, n, strategy);
        ASSERT_TRUE(survives.ok());
        EXPECT_TRUE(*survives) << "sets " << s1 << "," << s2 << " n=" << n;
      }
    }
  }
}

TEST(SetMirrorStrategyTest, ResignsWhenOutOfElements) {
  // 3 rounds on sets of sizes 3 vs 2: the strategy must fail (as must any).
  SetMirrorStrategy strategy;
  Structure a = MakeSet(3);
  Structure b = MakeSet(2);
  Result<bool> survives = StrategySurvives(a, b, 3, strategy);
  ASSERT_TRUE(survives.ok());
  EXPECT_FALSE(*survives);
  // Cross-check: the exact solver says the spoiler indeed wins.
  EfGameSolver solver(a, b);
  EXPECT_FALSE(*solver.DuplicatorWins(3));
}

TEST(SetMirrorStrategyTest, MirrorsRepeatedPicks) {
  SetMirrorStrategy strategy;
  Structure a = MakeSet(3);
  Structure b = MakeSet(3);
  PartialMap position = {{0, 2}};
  // Spoiler replays 0 in A: the answer must be its image 2.
  EXPECT_EQ(strategy.Respond(a, b, position, true, 0, 1),
            std::optional<Element>(2));
  // Spoiler replays 2 in B: the answer must be its preimage 0.
  EXPECT_EQ(strategy.Respond(a, b, position, false, 2, 1),
            std::optional<Element>(0));
}

TEST(OrderGapStrategyTest, WinsAboveTheTheoremThreshold) {
  // Theorem 3.1 constructively: the gap strategy survives n rounds on
  // orders of sizes >= 2^n - 1.
  OrderGapStrategy strategy;
  for (std::size_t n = 1; n <= 3; ++n) {
    const std::size_t threshold = (std::size_t{1} << n) - 1;
    for (std::size_t m : {threshold, threshold + 1, threshold + 3}) {
      for (std::size_t k : {threshold, threshold + 2}) {
        Structure a = MakeLinearOrder(m);
        Structure b = MakeLinearOrder(k);
        Result<bool> survives = StrategySurvives(a, b, n, strategy);
        ASSERT_TRUE(survives.ok());
        EXPECT_TRUE(*survives) << "m=" << m << " k=" << k << " n=" << n;
      }
    }
  }
}

TEST(OrderGapStrategyTest, WinsOnEqualOrdersOfAnySize) {
  OrderGapStrategy strategy;
  for (std::size_t m : {1, 2, 5, 9}) {
    Structure a = MakeLinearOrder(m);
    Structure b = MakeLinearOrder(m);
    Result<bool> survives = StrategySurvives(a, b, 3, strategy);
    ASSERT_TRUE(survives.ok());
    EXPECT_TRUE(*survives) << m;
  }
}

TEST(OrderGapStrategyTest, CannotWinBelowThreshold) {
  // L_6 vs L_7 at n = 3 (threshold is 7): no strategy can win; ours
  // resigns or breaks, and the solver confirms the spoiler wins.
  OrderGapStrategy strategy;
  Structure a = MakeLinearOrder(6);
  Structure b = MakeLinearOrder(7);
  Result<bool> survives = StrategySurvives(a, b, 3, strategy);
  ASSERT_TRUE(survives.ok());
  EXPECT_FALSE(*survives);
  EXPECT_FALSE(LinearOrdersEquivalent(6, 7, 3));
}

TEST(OrderGapStrategyTest, MatchesTheoremAcrossASweep) {
  // Strategy success implies theorem-equivalence (soundness direction):
  // wherever the strategy survives, the closed form must agree.
  OrderGapStrategy strategy;
  for (std::size_t n = 1; n <= 3; ++n) {
    for (std::size_t m = 1; m <= 9; ++m) {
      for (std::size_t k = 1; k <= 9; ++k) {
        Structure a = MakeLinearOrder(m);
        Structure b = MakeLinearOrder(k);
        Result<bool> survives = StrategySurvives(a, b, n, strategy);
        ASSERT_TRUE(survives.ok());
        if (*survives) {
          EXPECT_TRUE(LinearOrdersEquivalent(m, k, n))
              << "strategy won an unwinnable game: m=" << m << " k=" << k
              << " n=" << n;
        }
        // Completeness at/above the threshold.
        if (LinearOrdersEquivalent(m, k, n)) {
          EXPECT_TRUE(*survives)
              << "strategy lost a winnable game: m=" << m << " k=" << k
              << " n=" << n;
        }
      }
    }
  }
}

TEST(StrategyRefereeTest, NodeCap) {
  SetMirrorStrategy strategy;
  Structure a = MakeSet(6);
  Structure b = MakeSet(6);
  Result<bool> r = StrategySurvives(a, b, 5, strategy, /*max_nodes=*/10);
  EXPECT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), StatusCode::kResourceExhausted);
}

TEST(StrategyRefereeTest, ConstantsSeedPosition) {
  auto sig = std::make_shared<Signature>();
  sig->AddConstant("c");
  Structure a(sig, 2);
  a.SetConstant(0, 0);
  Structure b(sig, 2);
  b.SetConstant(0, 1);
  SetMirrorStrategy strategy;
  // Constants pre-pin (0, 1); on pure sets any injective map works, so the
  // strategy still survives.
  Result<bool> survives = StrategySurvives(a, b, 1, strategy);
  ASSERT_TRUE(survives.ok());
  EXPECT_TRUE(*survives);
  // Mismatched interpretation loses outright.
  Structure c(sig, 2);  // Uninterpreted.
  Result<bool> lost = StrategySurvives(a, c, 0, strategy);
  ASSERT_TRUE(lost.ok());
  EXPECT_FALSE(*lost);
}

}  // namespace
}  // namespace fmtk
