#include "planner/planner.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <random>
#include <set>
#include <string>
#include <vector>

#include "datalog/evaluator.h"
#include "eval/model_check.h"
#include "eval/query_eval.h"
#include "logic/parser.h"
#include "planner/canonical.h"
#include "planner/fo_to_datalog.h"
#include "structures/generators.h"
#include "structures/structure_stats.h"

namespace fmtk {
namespace {

const std::vector<EngineKind> kAllEngines = {
    EngineKind::kNaive,      EngineKind::kCompiled,
    EngineKind::kParallel,   EngineKind::kRelational,
    EngineKind::kDatalog,    EngineKind::kBoundedDegree,
};

std::multiset<Tuple> TupleSet(const Relation& r) {
  return {r.tuples().begin(), r.tuples().end()};
}

// ---------------------------------------------------------------------------
// Structure statistics.

TEST(StructureStatsTest, PathGraph) {
  const Structure path = MakeDirectedPath(5);
  const StructureStats stats = path.Stats();
  EXPECT_EQ(stats.domain_size, 5u);
  EXPECT_EQ(stats.tuple_count, 4u);
  EXPECT_EQ(stats.gaifman_edge_count, 4u);
  EXPECT_EQ(stats.max_degree, 2u);
  EXPECT_EQ(stats.component_count, 1u);
  EXPECT_GE(stats.diameter_bound, 4u);  // true diameter
  EXPECT_LE(stats.diameter_bound, 8u);  // 2 * eccentricity bound
}

TEST(StructureStatsTest, DisjointCycles) {
  const Structure g = MakeDisjointCycles(2, 4);
  const StructureStats stats = g.Stats();
  EXPECT_EQ(stats.domain_size, 8u);
  EXPECT_EQ(stats.component_count, 2u);
  EXPECT_EQ(stats.max_degree, 2u);
}

TEST(StructureStatsTest, GenerationBumpsOnMutationAndStatsRefresh) {
  Structure g = MakeEmptyGraph(3);
  const std::uint64_t gen0 = g.generation();
  EXPECT_EQ(g.Stats().tuple_count, 0u);
  g.AddTuple("E", {0, 1});
  EXPECT_GT(g.generation(), gen0);
  EXPECT_EQ(g.Stats().tuple_count, 1u);  // cache invalidated, not stale
  EXPECT_EQ(g.Stats().generation, g.generation());
}

TEST(StructureStatsTest, CopyAndMoveGetFreshUids) {
  Structure a = MakeDirectedCycle(3);
  const std::uint64_t uid_a = a.uid();
  Structure b = a;  // copy
  EXPECT_NE(b.uid(), uid_a);
  EXPECT_EQ(a.uid(), uid_a);
  Structure c = std::move(a);  // move also re-identifies
  EXPECT_NE(c.uid(), uid_a);
  EXPECT_NE(c.uid(), b.uid());
  EXPECT_EQ(b.Stats().domain_size, 3u);
  EXPECT_EQ(c.Stats().domain_size, 3u);
}

// ---------------------------------------------------------------------------
// Canonicalizer.

TEST(CanonicalTest, AlphaVariantsGetOneKey) {
  Signature sig;
  sig.AddRelation("E", 2);
  const Formula f1 = *ParseFormula("exists x. exists y. E(x,y)", &sig);
  const Formula f2 = *ParseFormula("exists u. exists v. E(u,v)", &sig);
  EXPECT_EQ(CanonicalizeQuery(f1, sig).key, CanonicalizeQuery(f2, sig).key);
}

TEST(CanonicalTest, CommutedAndSortedConnectives) {
  Signature sig;
  sig.AddRelation("E", 2);
  const Formula ab = *ParseFormula(
      "(exists x. E(x,x)) & (forall x. exists y. E(x,y))", &sig);
  const Formula ba = *ParseFormula(
      "(forall x. exists y. E(x,y)) & (exists x. E(x,x))", &sig);
  EXPECT_EQ(CanonicalizeQuery(ab, sig).key, CanonicalizeQuery(ba, sig).key);
}

TEST(CanonicalTest, EqualitySidesOrdered) {
  Signature sig;
  sig.AddRelation("E", 2);
  const Formula xy = *ParseFormula("E(x,y) & (x = y)", &sig);
  const Formula yx = *ParseFormula("E(x,y) & (y = x)", &sig);
  EXPECT_EQ(CanonicalizeQuery(xy, sig).key, CanonicalizeQuery(yx, sig).key);
}

TEST(CanonicalTest, DifferentSignaturesDifferentKeys) {
  Signature sig1;
  sig1.AddRelation("E", 2);
  Signature sig2;
  sig2.AddRelation("E", 2);
  sig2.AddRelation("F", 1);
  const Formula f = *ParseFormula("exists x. E(x,x)", &sig1);
  EXPECT_NE(CanonicalizeQuery(f, sig1).key, CanonicalizeQuery(f, sig2).key);
  EXPECT_NE(SignatureFingerprint(sig1), SignatureFingerprint(sig2));
}

TEST(CanonicalTest, CanonicalizationPreservesSemantics) {
  const Structure g = MakeDirectedCycle(5);
  const std::vector<std::string> sentences = {
      "exists x. E(x,x)",
      "forall x. exists y. E(x,y)",
      "(forall x. ~E(x,x)) & (exists x. exists y. E(x,y))",
      "forall x. forall y. E(x,y) -> (exists z. E(y,z))",
      "~(exists x. E(x,x)) | (forall y. E(y,y))",
  };
  for (const std::string& text : sentences) {
    const Formula f = *ParseFormula(text, &g.signature());
    const Formula canon = CanonicalizeFormula(f);
    ModelChecker checker(g);
    EXPECT_EQ(*checker.Check(f), *checker.Check(canon)) << text;
  }
}

// ---------------------------------------------------------------------------
// FO -> Datalog lowering.

TEST(FoToDatalogTest, MatchesRelationalEvaluation) {
  const Structure g = MakeDirectedCycle(6);
  const std::vector<std::pair<std::string, std::vector<std::string>>> cases =
      {
          {"E(x,y)", {"x", "y"}},
          {"exists y. E(x,y) & E(y,x)", {"x"}},
          {"E(x,y) & E(y,z)", {"x", "y", "z"}},
          {"(exists z. E(x,z) & E(z,y)) | E(x,y)", {"x", "y"}},
          {"E(x,y) & (x = y)", {"x", "y"}},
      };
  for (const auto& [text, outputs] : cases) {
    const Formula f = *ParseFormula(text, &g.signature());
    auto translation = TranslateToDatalog(f, g.signature());
    ASSERT_TRUE(translation.ok()) << text << ": "
                                  << translation.status().ToString();
    auto idb = EvaluateDatalog(translation->program, g);
    ASSERT_TRUE(idb.ok()) << text;
    const Relation& got = idb->at(translation->output_predicate);
    auto expected = EvaluateQuery(g, f, translation->output_variables);
    ASSERT_TRUE(expected.ok()) << text;
    EXPECT_EQ(TupleSet(got), TupleSet(*expected)) << text;
  }
}

TEST(FoToDatalogTest, RejectsOutsideFragment) {
  Signature sig;
  sig.AddRelation("E", 2);
  for (const std::string& text :
       {std::string("~E(x,y)"), std::string("forall y. E(x,y)"),
        std::string("exists y. x = y")}) {
    const Formula f = *ParseFormula(text, &sig);
    EXPECT_FALSE(TranslateToDatalog(f, sig).ok()) << text;
  }
}

// ---------------------------------------------------------------------------
// EvaluateAuto: differential sweep. Every verdict must equal the reference
// interpreter, and every *forced* engine that accepts the input must agree
// bit-for-bit too.

std::vector<Structure> SweepStructures(std::mt19937_64& rng) {
  std::vector<Structure> out;
  out.push_back(MakeDirectedCycle(3));
  out.push_back(MakeDirectedCycle(9));
  out.push_back(MakeDirectedPath(7));
  out.push_back(MakeDisjointCycles(2, 5));
  out.push_back(MakePathPlusCycle(4));
  out.push_back(MakeFullBinaryTree(3));
  out.push_back(MakeEmptyGraph(4));
  out.push_back(MakeCompleteGraph(4));
  out.push_back(MakeGrid(3, 3));
  // Sparse random graphs: low edge probability keeps degrees small, which
  // exercises the bounded-degree route's eligibility gates both ways.
  out.push_back(MakeRandomGraph(12, 0.08, rng));
  out.push_back(MakeRandomGraph(16, 0.05, rng));
  out.push_back(MakeRandomGraph(10, 0.3, rng));
  return out;
}

TEST(EvaluateAutoTest, DifferentialSentenceSweep) {
  const std::vector<std::string> sentences = {
      "exists x. E(x,x)",
      "exists x. exists y. E(x,y) & E(y,x)",
      "forall x. exists y. E(x,y)",
      "forall x. ~E(x,x)",
      "forall x. forall y. E(x,y) -> (exists z. E(y,z))",
      "exists x. forall y. E(x,y) | (x = y)",
      "(exists x. E(x,x)) | (forall x. exists y. E(x,y))",
      "atleast 2 x. exists y. E(x,y)",
      "exists x. exists y. E(x,y) & ~(x = y)",
  };
  std::mt19937_64 rng(20260809);
  const std::vector<Structure> structures = SweepStructures(rng);

  PlanCache cache;
  PlannerOptions opts;
  opts.cache = &cache;
  for (const Structure& g : structures) {
    for (const std::string& text : sentences) {
      const Formula f = *ParseFormula(text, &g.signature());
      ModelChecker checker(g);
      const bool expected = *checker.Check(f);

      PlanExplanation explain;
      auto routed = EvaluateAuto(g, f, opts, &explain);
      ASSERT_TRUE(routed.ok())
          << text << " on n=" << g.domain_size() << ": "
          << routed.status().ToString();
      EXPECT_EQ(*routed, expected)
          << text << " on n=" << g.domain_size() << " routed to "
          << EngineKindName(explain.chosen);

      for (EngineKind engine : kAllEngines) {
        PlannerOptions forced = opts;
        forced.force_engine = engine;
        auto result = EvaluateAuto(g, f, forced);
        if (result.ok()) {
          EXPECT_EQ(*result, expected)
              << text << " on n=" << g.domain_size() << " forced to "
              << EngineKindName(engine);
        } else {
          // Engines outside their fragment must refuse, never misanswer.
          EXPECT_EQ(result.status().code(), StatusCode::kUnsupported)
              << text << " forced to " << EngineKindName(engine) << ": "
              << result.status().ToString();
        }
      }
    }
  }
}

TEST(EvaluateAutoTest, DifferentialQuerySweep) {
  const std::vector<std::pair<std::string, std::vector<std::string>>> queries =
      {
          {"E(x,y)", {"x", "y"}},
          {"E(x,y)", {"y", "x"}},  // column order respected
          {"exists y. E(x,y)", {"x"}},
          {"E(x,y) & E(y,z)", {"x", "y", "z"}},
          {"E(x,y) & E(y,z)", {"z", "x", "y"}},
          {"~E(x,x)", {"x"}},
          {"E(x,x)", {"x", "y"}},  // extra output ranges over the domain
          {"(exists z. E(x,z) & E(z,y)) | E(x,y)", {"x", "y"}},
          {"forall y. E(x,y) | ~E(y,x)", {"x"}},
      };
  std::mt19937_64 rng(987654);
  std::vector<Structure> structures;
  structures.push_back(MakeDirectedCycle(5));
  structures.push_back(MakeDirectedPath(6));
  structures.push_back(MakeCompleteGraph(4));
  structures.push_back(MakeEmptyGraph(3));
  structures.push_back(MakeRandomGraph(8, 0.2, rng));

  PlanCache cache;
  PlannerOptions opts;
  opts.cache = &cache;
  for (const Structure& g : structures) {
    for (const auto& [text, outputs] : queries) {
      const Formula f = *ParseFormula(text, &g.signature());
      auto expected = EvaluateQueryNaive(g, f, outputs);
      ASSERT_TRUE(expected.ok()) << text;

      PlanExplanation explain;
      auto routed = EvaluateQueryAuto(g, f, outputs, opts, &explain);
      ASSERT_TRUE(routed.ok()) << text << ": "
                               << routed.status().ToString();
      EXPECT_EQ(TupleSet(*routed), TupleSet(*expected))
          << text << " on n=" << g.domain_size() << " routed to "
          << EngineKindName(explain.chosen);

      for (EngineKind engine : kAllEngines) {
        PlannerOptions forced = opts;
        forced.force_engine = engine;
        auto result = EvaluateQueryAuto(g, f, outputs, forced);
        if (result.ok()) {
          EXPECT_EQ(TupleSet(*result), TupleSet(*expected))
              << text << " forced to " << EngineKindName(engine);
        } else {
          EXPECT_EQ(result.status().code(), StatusCode::kUnsupported)
              << text << " forced to " << EngineKindName(engine) << ": "
              << result.status().ToString();
        }
      }
    }
  }
}

TEST(EvaluateAutoTest, TextOverloadAndCacheHits) {
  PlanCache cache;
  PlannerOptions opts;
  opts.cache = &cache;
  const Structure g = MakeDirectedCycle(8);

  PlanExplanation cold;
  ASSERT_TRUE(EvaluateAuto(g, "forall x. exists y. E(x,y)", opts, &cold).ok());
  EXPECT_FALSE(cold.cache_hit);

  PlanExplanation warm;
  ASSERT_TRUE(EvaluateAuto(g, "forall x. exists y. E(x,y)", opts, &warm).ok());
  EXPECT_TRUE(warm.cache_hit);
  EXPECT_TRUE(warm.text_cache_hit);

  // An α-variant through the Formula door hits the canonical layer.
  const Formula variant =
      *ParseFormula("forall u. exists v. E(u,v)", &g.signature());
  PlanExplanation canonical_hit;
  ASSERT_TRUE(EvaluateAuto(g, variant, opts, &canonical_hit).ok());
  EXPECT_TRUE(canonical_hit.cache_hit);
  EXPECT_FALSE(canonical_hit.text_cache_hit);
}

TEST(EvaluateAutoTest, ExplainIsPopulated) {
  PlanCache cache;
  PlannerOptions opts;
  opts.cache = &cache;
  const Structure g = MakeDirectedCycle(16);
  PlanExplanation explain;
  ASSERT_TRUE(
      EvaluateAuto(g, "forall x. exists y. E(x,y)", opts, &explain).ok());
  EXPECT_FALSE(explain.rule.empty());
  EXPECT_FALSE(explain.theorem.empty());
  EXPECT_EQ(explain.costs.size(), 6u);  // one row per engine
  EXPECT_EQ(explain.quantifier_rank, 2u);
  EXPECT_EQ(explain.free_variable_count, 0u);
  EXPECT_EQ(explain.structure.domain_size, 16u);
  EXPECT_NE(explain.ToString().find("plan:"), std::string::npos);
  EXPECT_NE(explain.ToJson().find("\"engine\""), std::string::npos);
  EXPECT_NE(explain.ToJson().find("\"costs\""), std::string::npos);
}

TEST(EvaluateAutoTest, RejectsFreeVariablesAndBadOutputs) {
  const Structure g = MakeDirectedCycle(4);
  const Formula open = *ParseFormula("E(x,y)", &g.signature());
  EXPECT_FALSE(EvaluateAuto(g, open).ok());

  // Outputs must cover the free variables and contain no duplicates.
  EXPECT_FALSE(EvaluateQueryAuto(g, open, {"x"}).ok());
  EXPECT_FALSE(EvaluateQueryAuto(g, open, {"x", "y", "x"}).ok());

  // Unknown relation: same error class as the direct engines.
  EXPECT_FALSE(EvaluateAuto(g, "exists x. NoSuch(x)").ok());
}

TEST(EvaluateAutoTest, BoundedDegreeRouteFiresOnLargeSparseCycles) {
  PlanCache cache;
  PlannerOptions opts;
  opts.cache = &cache;
  // Rank 3 with an inner negation: the relational route would materialize
  // an n^2 complement extended over a third variable, the compiled scan is
  // n^3 — on a degree-2 structure the Hanf histogram pass wins.
  const std::string sentence =
      "forall x. exists y. E(x,y) & (forall z. ~E(y,z) | E(z,x))";
  const Structure big = MakeDirectedCycle(256);

  PlannerOptions compiled_opts = opts;
  compiled_opts.force_engine = EngineKind::kCompiled;
  auto expected = EvaluateAuto(big, sentence, compiled_opts);
  ASSERT_TRUE(expected.ok());

  PlanExplanation explain;
  auto result = EvaluateAuto(big, sentence, opts, &explain);
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(*result, *expected);
  EXPECT_EQ(explain.chosen, EngineKind::kBoundedDegree)
      << explain.ToString();

  // A second cycle of a different size: the Hanf verdict cache amortizes,
  // and the verdict must stay correct.
  const Structure other = MakeDirectedCycle(280);
  auto other_expected = EvaluateAuto(other, sentence, compiled_opts);
  ASSERT_TRUE(other_expected.ok());
  auto again = EvaluateAuto(other, sentence, opts);
  ASSERT_TRUE(again.ok());
  EXPECT_EQ(*again, *other_expected);
}

TEST(EvaluateAutoTest, UseCacheFalseStillRoutesCorrectly) {
  PlannerOptions opts;
  opts.use_cache = false;
  const Structure g = MakeDirectedCycle(6);
  PlanExplanation explain;
  auto result = EvaluateAuto(g, "exists x. E(x,x)", opts, &explain);
  ASSERT_TRUE(result.ok());
  EXPECT_FALSE(*result);
  EXPECT_FALSE(explain.cache_hit);
}

TEST(EngineKindTest, NamesRoundTrip) {
  for (EngineKind k : kAllEngines) {
    auto parsed = ParseEngineKind(EngineKindName(k));
    ASSERT_TRUE(parsed.has_value());
    EXPECT_EQ(*parsed, k);
  }
  EXPECT_EQ(ParseEngineKind("bounded_degree"), EngineKind::kBoundedDegree);
  EXPECT_FALSE(ParseEngineKind("quantum").has_value());
}

// ---------------------------------------------------------------------------
// EvaluateDatalogAuto.

TEST(EvaluateDatalogAutoTest, MatchesDirectEvaluationAndMemoizesEngines) {
  const std::string program_text =
      "tc(x, y) :- E(x, y).\ntc(x, z) :- tc(x, y), E(y, z).";
  const DatalogProgram program = *ParseDatalogProgram(program_text);
  Structure g = MakeDirectedPath(6);

  auto direct = EvaluateDatalog(program, g);
  ASSERT_TRUE(direct.ok());

  PlanCache cache;
  PlannerOptions opts;
  opts.cache = &cache;
  PlanCacheLookup first;
  auto routed = EvaluateDatalogAuto(g, program, opts, nullptr, &first);
  ASSERT_TRUE(routed.ok());
  EXPECT_FALSE(first.hit);
  ASSERT_EQ(routed->count("tc"), 1u);
  EXPECT_EQ(TupleSet(routed->at("tc")), TupleSet(direct->at("tc")));

  // Second run: plan cache hit; results identical.
  PlanCacheLookup second;
  auto warm = EvaluateDatalogAuto(g, program, opts, nullptr, &second);
  ASSERT_TRUE(warm.ok());
  EXPECT_TRUE(second.hit);
  EXPECT_EQ(TupleSet(warm->at("tc")), TupleSet(direct->at("tc")));

  // Mutating the EDB bumps the generation: the memoized engine may not be
  // reused, and results must reflect the new tuple.
  g.AddTuple("E", {5, 0});  // close the path into a cycle
  auto after = EvaluateDatalogAuto(g, program, opts);
  ASSERT_TRUE(after.ok());
  auto direct_after = EvaluateDatalog(program, g);
  ASSERT_TRUE(direct_after.ok());
  EXPECT_EQ(TupleSet(after->at("tc")), TupleSet(direct_after->at("tc")));
  EXPECT_GT(after->at("tc").size(), direct->at("tc").size());

  // Text front door.
  PlanCacheLookup text_lookup;
  auto from_text =
      EvaluateDatalogAuto(g, program_text, opts, nullptr, &text_lookup);
  ASSERT_TRUE(from_text.ok());
  EXPECT_EQ(TupleSet(from_text->at("tc")), TupleSet(direct_after->at("tc")));
}

// ---------------------------------------------------------------------------
// Short-circuit-aware scan estimates (PR 9): a router-chosen compiled run
// records its measured EvalStats on the cached plan, and later routing of
// the same (structure, generation) prices the compiled scan from the
// measurement instead of the static full-scan model.

TEST(ScanFeedbackTest, MeasuredRunDiscountsCompiledEstimate) {
  PlanCache cache;
  PlannerOptions options;
  options.cache = &cache;
  const Structure cycle = MakeDirectedCycle(16);
  const std::string q = "forall x. exists y. E(x,y)";

  auto before = PlanAuto(cycle, q, /*query_mode=*/false, 0, options);
  ASSERT_TRUE(before.ok());
  EXPECT_EQ(before->scan_estimate, "static");
  EXPECT_DOUBLE_EQ(before->scan_ratio, 1.0);
  double static_cost = 0.0;
  for (const EngineCost& c : before->costs) {
    if (c.engine == EngineKind::kCompiled) static_cost = c.cost;
  }
  ASSERT_GT(static_cost, 0.0);

  // A routed (non-forced) evaluation records the measurement.
  PlanExplanation explain;
  auto verdict = EvaluateAuto(cycle, q, options, &explain);
  ASSERT_TRUE(verdict.ok());
  EXPECT_TRUE(*verdict);
  ASSERT_EQ(explain.chosen, EngineKind::kCompiled);

  auto after = PlanAuto(cycle, q, /*query_mode=*/false, 0, options);
  ASSERT_TRUE(after.ok());
  EXPECT_EQ(after->scan_estimate, "measured");
  EXPECT_LT(after->scan_ratio, 1.0);
  double measured_cost = 0.0;
  for (const EngineCost& c : after->costs) {
    if (c.engine == EngineKind::kCompiled) measured_cost = c.cost;
  }
  // The inner "exists" short-circuits on the cycle's single successor, so
  // the measured scan is a fraction of the static n^qr model.
  EXPECT_LT(measured_cost, static_cost);

  // A different structure sharing the plan gets the cross-structure ratio
  // prior, never the other structure's raw measurement.
  const Structure other = MakeDirectedCycle(24);
  auto prior = PlanAuto(other, q, /*query_mode=*/false, 0, options);
  ASSERT_TRUE(prior.ok());
  EXPECT_EQ(prior->scan_estimate, "prior");
  EXPECT_LT(prior->scan_ratio, 1.0);
  EXPECT_GE(prior->scan_ratio, 0.1);  // The prior is floored, not trusted.
}

TEST(ScanFeedbackTest, ForcedRunsDoNotRecordFeedback) {
  PlanCache cache;
  PlannerOptions options;
  options.cache = &cache;
  const Structure cycle = MakeDirectedCycle(16);
  const std::string q = "forall x. exists y. E(x,y)";

  PlannerOptions forced = options;
  forced.force_engine = EngineKind::kCompiled;
  ASSERT_TRUE(EvaluateAuto(cycle, q, forced).ok());

  // Forced runs bypass the cost model, so pricing must stay static: a
  // forced measurement would perturb later routing decisions (e.g. the
  // bounded-degree gate) that the user never asked to train.
  auto explain = PlanAuto(cycle, q, /*query_mode=*/false, 0, options);
  ASSERT_TRUE(explain.ok());
  EXPECT_EQ(explain->scan_estimate, "static");
}

TEST(ScanFeedbackTest, QueryEnumerationRecordsFeedbackToo) {
  PlanCache cache;
  PlannerOptions options;
  options.cache = &cache;
  const Structure cycle = MakeDirectedCycle(12);
  const std::string q = "E(x,y)";

  PlanExplanation explain;
  auto rows = EvaluateQueryAuto(cycle, q, {"x", "y"}, options, &explain);
  ASSERT_TRUE(rows.ok());
  EXPECT_EQ(rows->size(), 12u);
  if (explain.chosen != EngineKind::kCompiled) {
    GTEST_SKIP() << "router sent the query elsewhere; nothing recorded";
  }
  auto after = PlanAuto(cycle, q, /*query_mode=*/true, 2, options);
  ASSERT_TRUE(after.ok());
  EXPECT_EQ(after->scan_estimate, "measured");
}

}  // namespace
}  // namespace fmtk
