#include <gtest/gtest.h>

#include <random>

#include "core/zeroone/almost_sure.h"
#include "core/zeroone/mu.h"
#include "logic/analysis.h"
#include "eval/model_check.h"
#include "logic/parser.h"
#include "structures/generators.h"

namespace fmtk {
namespace {

// The survey's example sentences. Q2 is stated in the source as
// ∀x∀y∃z E(z,x) ∧ ¬E(z,y); read literally it is unsatisfiable at x = y, so
// the intended (and here used) reading carries the implicit distinctness
// guard.
const char* kQ1 = "forall x. forall y. E(x,y)";
const char* kQ2 =
    "forall x. forall y. x = y | (exists z. E(z,x) & !E(z,y))";

TEST(ExactMuTest, SmallCountsByHand) {
  // n = 1, {E/2}: two structures (loop or not).
  Result<MuEstimate> mu =
      ExactMu(*ParseFormula("exists x. E(x,x)"), Signature::Graph(), 1);
  ASSERT_TRUE(mu.ok()) << mu.status().ToString();
  EXPECT_TRUE(mu->exact);
  EXPECT_EQ(mu->total, 2u);
  EXPECT_EQ(mu->satisfied, 1u);
  EXPECT_DOUBLE_EQ(mu->value, 0.5);
}

TEST(ExactMuTest, TwoElementGraphs) {
  // n = 2: 2^4 = 16 structures. Q1 = complete with loops: only 1 satisfies.
  Result<MuEstimate> mu = ExactMu(*ParseFormula(kQ1), Signature::Graph(), 2);
  ASSERT_TRUE(mu.ok());
  EXPECT_EQ(mu->total, 16u);
  EXPECT_EQ(mu->satisfied, 1u);
}

TEST(ExactMuTest, EmptySignature) {
  // One structure per n; EVEN has no limit — μ_n alternates 1, 0, 1, ...
  Formula at_least_two = *ParseFormula("exists x y. x != y");
  Result<MuEstimate> mu1 = ExactMu(at_least_two, Signature::Empty(), 1);
  Result<MuEstimate> mu2 = ExactMu(at_least_two, Signature::Empty(), 2);
  ASSERT_TRUE(mu1.ok() && mu2.ok());
  EXPECT_DOUBLE_EQ(mu1->value, 0.0);
  EXPECT_DOUBLE_EQ(mu2->value, 1.0);
}

TEST(ExactMuTest, RefusesHugeEnumerations) {
  Result<MuEstimate> mu =
      ExactMu(*ParseFormula(kQ1), Signature::Graph(), 6);  // 2^36 structures.
  EXPECT_FALSE(mu.ok());
  EXPECT_EQ(mu.status().code(), StatusCode::kUnsupported);
}

TEST(ExactMuTest, SentencesOnly) {
  EXPECT_FALSE(ExactMu(*ParseFormula("E(x,y)"), Signature::Graph(), 2).ok());
}

TEST(ExactMuTest, ConstantsMultiplyTheCount) {
  auto sig = std::make_shared<Signature>();
  sig->AddRelation("P", 1).AddConstant("c");
  Result<MuEstimate> mu =
      ExactMu(*ParseFormula("P(c)", sig.get()), sig, 2);
  ASSERT_TRUE(mu.ok()) << mu.status().ToString();
  // 4 relation patterns x 2 constant choices = 8; P(c) holds in half.
  EXPECT_EQ(mu->total, 8u);
  EXPECT_EQ(mu->satisfied, 4u);
}

TEST(MonteCarloMuTest, TracksExactOnSmallN) {
  std::mt19937_64 rng(123);
  Formula has_edge = *ParseFormula("exists x. exists y. E(x,y)");
  Result<MuEstimate> exact = ExactMu(has_edge, Signature::Graph(), 3);
  Result<MuEstimate> sampled =
      MonteCarloMu(has_edge, Signature::Graph(), 3, 4000, rng);
  ASSERT_TRUE(exact.ok() && sampled.ok());
  EXPECT_FALSE(sampled->exact);
  EXPECT_NEAR(sampled->value, exact->value, 0.03);
}

TEST(MonteCarloMuTest, SurveyExamplesConverge) {
  std::mt19937_64 rng(7);
  // μ(Q1) -> 0: at n = 12 the probability is already astronomically small.
  Result<MuEstimate> q1 =
      MonteCarloMu(*ParseFormula(kQ1), Signature::Graph(), 12, 400, rng);
  ASSERT_TRUE(q1.ok());
  EXPECT_DOUBLE_EQ(q1->value, 0.0);
  // μ(Q2) -> 1: at n = 40 failures are very rare.
  Result<MuEstimate> q2 =
      MonteCarloMu(*ParseFormula(kQ2), Signature::Graph(), 40, 200, rng);
  ASSERT_TRUE(q2.ok());
  EXPECT_GE(q2->value, 0.95);
}

// --- Extension axioms --------------------------------------------------------

TEST(ExtensionAxiomTest, ShapeAndRank) {
  ExtensionPattern pattern;
  pattern.rows = {{true, false}, {false, true}};
  pattern.loop = false;
  Formula axiom = ExtensionAxiom(pattern);
  EXPECT_TRUE(FreeVariables(axiom).empty());
  EXPECT_EQ(QuantifierRank(axiom), 3u);  // ∀x1 ∀x2 ∃z.
}

TEST(ExtensionAxiomTest, HoldsOnLargeRandomGraphs) {
  // Each fixed extension axiom is almost surely true; check empirically.
  std::mt19937_64 rng(99);
  ExtensionPattern pattern;
  pattern.rows = {{true, true}};
  pattern.loop = false;
  Formula axiom = ExtensionAxiom(pattern);
  std::size_t holds = 0;
  const std::size_t trials = 30;
  for (std::size_t t = 0; t < trials; ++t) {
    // At n = 80 the per-graph failure probability is ~80 * (7/8)^79 ≈ 0.002.
    Structure g = MakeRandomStructure(Signature::Graph(), 80, 0.5, rng);
    Result<bool> v = Satisfies(g, axiom);
    ASSERT_TRUE(v.ok());
    holds += *v ? 1 : 0;
  }
  EXPECT_GE(holds, trials - 1);
}

TEST(ExtensionAxiomTest, ZeroNamedPoints) {
  ExtensionPattern pattern;  // Just "there is a non-loop z" / loop variant.
  pattern.loop = true;
  Formula axiom = ExtensionAxiom(pattern);
  EXPECT_EQ(QuantifierRank(axiom), 1u);
  Structure loop = MakeDirectedCycle(1);
  EXPECT_TRUE(*Satisfies(loop, axiom));
  EXPECT_FALSE(*Satisfies(MakeEmptyGraph(2), axiom));
}

// --- The almost-sure theory (0-1 law) ---------------------------------------

TEST(AlmostSureTest, SurveyExamples) {
  Result<bool> q1 = AlmostSurelyTrue(*ParseFormula(kQ1));
  ASSERT_TRUE(q1.ok()) << q1.status().ToString();
  EXPECT_FALSE(*q1);  // μ(Q1) = 0.
  Result<bool> q2 = AlmostSurelyTrue(*ParseFormula(kQ2));
  ASSERT_TRUE(q2.ok());
  EXPECT_TRUE(*q2);  // μ(Q2) = 1.
}

TEST(AlmostSureTest, SimpleAlmostSureFacts) {
  // Almost surely: there is an edge; there is a loop; the graph is not
  // complete; every point has an out-neighbor.
  EXPECT_TRUE(*AlmostSurelyTrue(*ParseFormula("exists x y. E(x,y)")));
  EXPECT_TRUE(*AlmostSurelyTrue(*ParseFormula("exists x. E(x,x)")));
  EXPECT_FALSE(*AlmostSurelyTrue(*ParseFormula("forall x. E(x,x)")));
  EXPECT_TRUE(
      *AlmostSurelyTrue(*ParseFormula("forall x. exists y. E(x,y)")));
  EXPECT_TRUE(*AlmostSurelyTrue(
      *ParseFormula("forall x y. x = y | (exists z. E(x,z) & E(y,z))")));
}

TEST(AlmostSureTest, ExtensionAxiomsAreAlmostSurelyTrue) {
  for (bool in1 : {false, true}) {
    for (bool out1 : {false, true}) {
      for (bool loop : {false, true}) {
        ExtensionPattern pattern;
        pattern.rows = {{in1, out1}};
        pattern.loop = loop;
        Result<bool> v = AlmostSurelyTrue(ExtensionAxiom(pattern));
        ASSERT_TRUE(v.ok());
        EXPECT_TRUE(*v);
      }
    }
  }
}

TEST(AlmostSureTest, AgreesWithMonteCarloOnAPanel) {
  // The exact decision procedure vs sampling at n = 40: the sampled μ_n
  // should be near the 0/1 verdict.
  const char* sentences[] = {
      "exists x y. E(x,y) & E(y,x)",
      "forall x. exists y. E(y,x) & !E(x,y)",
      "forall x y. E(x,y)",
      "exists x. forall y. E(x,y)",
  };
  std::mt19937_64 rng(2024);
  for (const char* text : sentences) {
    Formula f = *ParseFormula(text);
    Result<bool> verdict = AlmostSurelyTrue(f);
    ASSERT_TRUE(verdict.ok()) << text;
    Result<MuEstimate> mu =
        MonteCarloMu(f, Signature::Graph(), 40, 60, rng);
    ASSERT_TRUE(mu.ok());
    if (*verdict) {
      EXPECT_GE(mu->value, 0.9) << text;
    } else {
      EXPECT_LE(mu->value, 0.1) << text;
    }
  }
}

TEST(AlmostSureTest, RejectsNonGraphVocabulary) {
  Result<bool> v =
      AlmostSurelyTrue(*ParseFormula("exists x. P(x)"));
  EXPECT_FALSE(v.ok());
  EXPECT_EQ(v.status().code(), StatusCode::kUnsupported);
}

TEST(AlmostSureTest, RejectsOpenFormulas) {
  Result<bool> v = AlmostSurelyTrue(*ParseFormula("E(x,y)"));
  EXPECT_FALSE(v.ok());
}

TEST(AlmostSureTest, ZeroOneLawShape) {
  // For every sentence in a panel the verdict is crisp 0 or 1 — the 0-1 law
  // in action (no sentence gets an intermediate limit).
  const char* sentences[] = {
      "exists x. E(x,x)",
      "forall x. exists y. x != y & E(x,y) & E(y,x)",
      "exists x y z. E(x,y) & E(y,z) & E(z,x)",
  };
  for (const char* text : sentences) {
    Result<bool> v = AlmostSurelyTrue(*ParseFormula(text));
    ASSERT_TRUE(v.ok()) << text;  // Always decided, never "in between".
  }
}

}  // namespace
}  // namespace fmtk
