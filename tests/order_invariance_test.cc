#include <gtest/gtest.h>

#include <random>

#include "core/order/order_invariance.h"
#include "eval/model_check.h"
#include "logic/parser.h"
#include "structures/generators.h"

namespace fmtk {
namespace {

TEST(ExpandWithOrderTest, AddsLinearOrder) {
  Structure g = MakeDirectedCycle(3);
  Result<Structure> ordered = ExpandWithOrder(g, {2, 0, 1});
  ASSERT_TRUE(ordered.ok());
  EXPECT_TRUE(ordered->signature().FindRelation("<").has_value());
  std::size_t less = *ordered->signature().FindRelation("<");
  // Order: 2 < 0 < 1.
  EXPECT_TRUE(ordered->relation(less).Contains({2, 0}));
  EXPECT_TRUE(ordered->relation(less).Contains({0, 1}));
  EXPECT_TRUE(ordered->relation(less).Contains({2, 1}));
  EXPECT_FALSE(ordered->relation(less).Contains({1, 0}));
  // Original edges preserved.
  EXPECT_TRUE(ordered->relation(0).Contains({0, 1}));
}

TEST(ExpandWithOrderTest, Validation) {
  Structure g = MakeDirectedCycle(3);
  EXPECT_FALSE(ExpandWithOrder(g, {0, 1}).ok());        // Wrong size.
  EXPECT_FALSE(ExpandWithOrder(g, {0, 1, 1}).ok());     // Not injective.
  EXPECT_FALSE(ExpandWithOrder(g, {0, 1, 5}).ok());     // Out of range.
  Structure order = MakeLinearOrder(3);
  EXPECT_FALSE(ExpandWithOrder(order, {0, 1, 2}).ok()); // Already has <.
}

TEST(ExpandWithOrderTest, EmptyStructure) {
  Structure empty = MakeSet(0);
  Result<Structure> ordered = ExpandWithOrder(empty, {});
  ASSERT_TRUE(ordered.ok());
  EXPECT_EQ(ordered->domain_size(), 0u);
}

TEST(OrderInvarianceTest, PureSigmaSentencesAreInvariant) {
  // A sentence not mentioning < cannot depend on it.
  std::mt19937_64 rng(1);
  Structure g = MakeDirectedCycle(4);
  Result<OrderInvarianceReport> report = CheckOrderInvariance(
      g, *ParseFormula("exists x y. E(x,y)"), rng);
  ASSERT_TRUE(report.ok());
  EXPECT_TRUE(report->invariant);
  EXPECT_TRUE(report->value);
  EXPECT_EQ(report->orders_checked, 24u);  // 4! orders, exhaustive.
}

TEST(OrderInvarianceTest, OrderDependentSentenceCaught) {
  // "The minimum has a loop" depends on which element is minimal.
  std::mt19937_64 rng(2);
  Structure g(Signature::Graph(), 3);
  g.AddTuple(0, {0, 0});  // Loop on 0 only.
  Formula min_loop = *ParseFormula(
      "exists x. (!(exists y. y < x)) & E(x,x)");
  Result<OrderInvarianceReport> report =
      CheckOrderInvariance(g, min_loop, rng);
  ASSERT_TRUE(report.ok());
  EXPECT_FALSE(report->invariant);
  ASSERT_TRUE(report->witness.has_value());
  // The witness orders genuinely disagree.
  Result<Structure> w1 = ExpandWithOrder(g, report->witness->first);
  Result<Structure> w2 = ExpandWithOrder(g, report->witness->second);
  ASSERT_TRUE(w1.ok() && w2.ok());
  EXPECT_NE(*Satisfies(*w1, min_loop), *Satisfies(*w2, min_loop));
}

TEST(OrderInvarianceTest, InvariantUseOfOrder) {
  // "Some element is smaller than some other" = "there are >= 2 elements":
  // order-invariant despite mentioning <.
  std::mt19937_64 rng(3);
  Formula two = *ParseFormula("exists x y. x < y");
  Structure one = MakeSet(1);
  Structure three = MakeSet(3);
  Result<OrderInvarianceReport> r1 = CheckOrderInvariance(one, two, rng);
  Result<OrderInvarianceReport> r3 = CheckOrderInvariance(three, two, rng);
  ASSERT_TRUE(r1.ok() && r3.ok());
  EXPECT_TRUE(r1->invariant);
  EXPECT_FALSE(r1->value);
  EXPECT_TRUE(r3->invariant);
  EXPECT_TRUE(r3->value);
}

TEST(OrderInvarianceTest, SamplingModeOnLargerStructures) {
  std::mt19937_64 rng(4);
  Structure g = MakeDirectedCycle(9);
  Result<OrderInvarianceReport> report = CheckOrderInvariance(
      g, *ParseFormula("forall x. exists y. E(x,y)"), rng,
      /*max_exhaustive=*/6, /*samples=*/10);
  ASSERT_TRUE(report.ok());
  EXPECT_TRUE(report->invariant);
  EXPECT_EQ(report->orders_checked, 11u);  // Identity + 10 samples.
}

TEST(OrderInvarianceTest, EvenStillOutOfReachWithOrder) {
  // The §3.6 point: even with an order available, FO-style symmetric
  // sentences cannot define EVEN. Spot-check: a sentence that tries to
  // pair up elements via the order ("every element has a distinct partner"
  // — successor flipping) is order-dependent or wrong. Here we verify the
  // natural candidate "the maximum is at an odd position" is order-
  // invariant on no structure of size >= 2... i.e., it IS order-dependent.
  std::mt19937_64 rng(5);
  // "There is an element with exactly one smaller element" — position 2
  // exists iff n >= 2; invariant. Positions are order-dependent in general
  // but their existence is cardinality information.
  Formula second = *ParseFormula(
      "exists x. atleast 1 y. y < x & !(atleast 2 z. z < x)");
  Structure s2 = MakeSet(2);
  Structure s1 = MakeSet(1);
  Result<OrderInvarianceReport> r2 = CheckOrderInvariance(s2, second, rng);
  Result<OrderInvarianceReport> r1 = CheckOrderInvariance(s1, second, rng);
  ASSERT_TRUE(r2.ok() && r1.ok());
  EXPECT_TRUE(r2->invariant);
  EXPECT_TRUE(r2->value);
  EXPECT_FALSE(r1->value);
}

}  // namespace
}  // namespace fmtk
