#include <gtest/gtest.h>

#include "core/locality/bndp.h"
#include "logic/parser.h"
#include "core/locality/gaifman_local.h"
#include "core/locality/hanf.h"
#include "core/locality/neighborhood.h"
#include "queries/relation_query.h"
#include "structures/generators.h"
#include "structures/graph.h"

namespace fmtk {
namespace {

TEST(BallTest, RadiusGrowsBall) {
  Structure p = MakeDirectedPath(7);
  Adjacency g = GaifmanAdjacency(p);
  EXPECT_EQ(Ball(g, {3}, 0), (std::vector<Element>{3}));
  EXPECT_EQ(Ball(g, {3}, 1), (std::vector<Element>{2, 3, 4}));
  EXPECT_EQ(Ball(g, {3}, 2), (std::vector<Element>{1, 2, 3, 4, 5}));
  EXPECT_EQ(Ball(g, {3}, 10).size(), 7u);
}

TEST(BallTest, MultiCenterBall) {
  Structure p = MakeDirectedPath(9);
  Adjacency g = GaifmanAdjacency(p);
  std::vector<Element> b = Ball(g, {0, 8}, 1);
  EXPECT_EQ(b, (std::vector<Element>{0, 1, 7, 8}));
}

TEST(NeighborhoodTest, InducedWithDistinguished) {
  Structure p = MakeDirectedPath(7);
  Adjacency g = GaifmanAdjacency(p);
  Neighborhood n = NeighborhoodOf(p, g, {3}, 1);
  EXPECT_EQ(n.structure.domain_size(), 3u);
  ASSERT_EQ(n.distinguished.size(), 1u);
  EXPECT_EQ(n.distinguished[0], 1u);  // 3 is the middle of {2,3,4}.
  EXPECT_EQ(n.structure.relation(0).size(), 2u);
}

TEST(NeighborhoodTest, InteriorPointsOfAChainLookAlike) {
  // The survey's Gaifman example: interior points of a long chain have
  // isomorphic r-neighborhoods.
  Structure p = MakeDirectedPath(12);
  Adjacency g = GaifmanAdjacency(p);
  Neighborhood n5 = NeighborhoodOf(p, g, {5}, 2);
  Neighborhood n6 = NeighborhoodOf(p, g, {6}, 2);
  Neighborhood n0 = NeighborhoodOf(p, g, {0}, 2);
  EXPECT_TRUE(NeighborhoodsIsomorphic(n5, n6));
  EXPECT_FALSE(NeighborhoodsIsomorphic(n5, n0));
}

TEST(NeighborhoodTest, PairNeighborhoodOrientationMatters) {
  // N_r(a,b) vs N_r(b,a) for far-apart chain points ARE isomorphic (swap
  // the two components) — exactly the observation that kills TC.
  Structure p = MakeDirectedPath(20);
  Adjacency g = GaifmanAdjacency(p);
  Neighborhood ab = NeighborhoodOf(p, g, {5, 14}, 2);
  Neighborhood ba = NeighborhoodOf(p, g, {14, 5}, 2);
  EXPECT_TRUE(NeighborhoodsIsomorphic(ab, ba));
}

TEST(NeighborhoodTypeIndexTest, InternsTypes) {
  Structure p = MakeDirectedPath(10);
  Adjacency g = GaifmanAdjacency(p);
  NeighborhoodTypeIndex index;
  auto t3 = index.TypeOf(NeighborhoodOf(p, g, {3}, 1));
  auto t4 = index.TypeOf(NeighborhoodOf(p, g, {4}, 1));
  auto t0 = index.TypeOf(NeighborhoodOf(p, g, {0}, 1));
  EXPECT_EQ(t3, t4);
  EXPECT_NE(t3, t0);
  // A chain has 3 radius-1 point types: left end, interior, right end.
  EXPECT_EQ(NeighborhoodTypeHistogram(p, 1, index).size(), 3u);
  // Representative round-trips.
  EXPECT_TRUE(NeighborhoodsIsomorphic(index.representative(t3),
                                      NeighborhoodOf(p, g, {5}, 1)));
}

TEST(HistogramTest, CycleIsHomogeneous) {
  Structure c = MakeDirectedCycle(9);
  NeighborhoodTypeIndex index;
  auto histogram = NeighborhoodTypeHistogram(c, 2, index);
  ASSERT_EQ(histogram.size(), 1u);
  EXPECT_EQ(histogram.begin()->second, 9u);
}

TEST(NeighborhoodTypeIndexTest, RepresentativeReferencesStayStable) {
  // Regression: representatives used to live in a std::vector, so a
  // reference returned by representative() dangled after enough TypeOf
  // calls reallocated the store. The deque-backed index must keep them
  // valid for the index's lifetime.
  Structure p = MakeDirectedPath(40);
  Adjacency g = GaifmanAdjacency(p);
  NeighborhoodTypeIndex index;
  auto first_id = index.TypeOf(NeighborhoodOf(p, g, {0}, 1));
  const Neighborhood& first = index.representative(first_id);
  const std::size_t domain_before = first.structure.domain_size();
  // Interning many distinct radius-r types forces growth of the store.
  for (std::size_t r = 1; r <= 6; ++r) {
    for (Element v = 0; v < p.domain_size(); ++v) {
      (void)index.TypeOf(NeighborhoodOf(p, g, {v}, r));
    }
  }
  EXPECT_GT(index.size(), 10u);
  // The old reference still points at the same, intact neighborhood.
  EXPECT_EQ(first.structure.domain_size(), domain_before);
  EXPECT_TRUE(
      NeighborhoodsIsomorphic(first, NeighborhoodOf(p, g, {0}, 1)));
  EXPECT_EQ(index.TypeOf(NeighborhoodOf(p, g, {0}, 1)), first_id);
}

TEST(NeighborhoodTypeIndexTest, TypeOfFastPathsKickIn) {
  // Re-classifying the same points hits the exact-content cache; fresh
  // isomorphic copies at most pay the invariant + signature pre-filters.
  Structure c = MakeDirectedCycle(12);
  NeighborhoodTypeIndex index;
  (void)NeighborhoodTypeHistogram(c, 2, index);
  const auto& stats = index.stats();
  EXPECT_GT(stats.exact_hits, 0u);  // Interior points share literal content.
  // One type total, so at most a handful of full isomorphism tests ran.
  EXPECT_EQ(index.size(), 1u);
  const auto before = stats.exact_hits;
  (void)NeighborhoodTypeHistogram(c, 2, index);
  EXPECT_GT(index.stats().exact_hits, before);
}

// --- Hanf locality: the survey's cycle example (E9) ------------------------

TEST(HanfTest, TwoCyclesVsOneBigCycle) {
  // G1 = two m-cycles, G2 = one 2m-cycle: ⇆r iff m > 2r + 1.
  for (std::size_t m = 3; m <= 9; ++m) {
    Structure g1 = MakeDisjointCycles(2, m);
    Structure g2 = MakeDirectedCycle(2 * m);
    for (std::size_t r = 0; r <= 4; ++r) {
      const bool expected = m > 2 * r + 1;
      EXPECT_EQ(HanfEquivalent(g1, g2, r), expected)
          << "m=" << m << " r=" << r;
    }
  }
}

TEST(HanfTest, TreeExample) {
  // Chain of 2m vs chain m ⊎ cycle m: ⇆r while m > 2r + 1.
  for (std::size_t m = 4; m <= 8; ++m) {
    Structure g1 = MakeDirectedPath(2 * m);
    Structure g2 = MakePathPlusCycle(m);
    for (std::size_t r = 0; r <= 3; ++r) {
      const bool expected = m > 2 * r + 1;
      EXPECT_EQ(HanfEquivalent(g1, g2, r), expected)
          << "m=" << m << " r=" << r;
    }
  }
}

TEST(HanfTest, CardinalityMismatchNeverHanfEquivalent) {
  Structure a = MakeDirectedCycle(6);
  Structure b = MakeDirectedCycle(8);
  EXPECT_FALSE(HanfEquivalent(a, b, 0));
}

TEST(HanfTest, LargestHanfRadius) {
  Structure g1 = MakeDisjointCycles(2, 7);
  Structure g2 = MakeDirectedCycle(14);
  // m = 7 > 2r+1 iff r <= 2.
  std::optional<std::size_t> r = LargestHanfRadius(g1, g2, 10);
  ASSERT_TRUE(r.has_value());
  EXPECT_EQ(*r, 2u);
  // Identical structures: max radius reached.
  Structure c = MakeDirectedCycle(5);
  EXPECT_EQ(LargestHanfRadius(c, c, 4), std::optional<std::size_t>(4));
}

TEST(ThresholdHanfTest, RelaxesCardinality) {
  // Two long chains of different lengths: every r-type is realized either
  // equally often (the two end types) or abundantly (interior), so
  // threshold-Hanf holds even though plain Hanf fails on cardinality.
  Structure a = MakeDirectedPath(20);
  Structure b = MakeDirectedPath(30);
  EXPECT_FALSE(HanfEquivalent(a, b, 1));
  EXPECT_TRUE(ThresholdHanfEquivalent(a, b, 1, 4));
  // With a huge threshold the interior counts (18 vs 28) must match
  // exactly: fails.
  EXPECT_FALSE(ThresholdHanfEquivalent(a, b, 1, 100));
}

TEST(ThresholdHanfTest, TypeOnlyInOneStructureFails) {
  Structure chain = MakeDirectedPath(6);
  Structure cycle = MakeDirectedCycle(6);
  // The chain has endpoint types the cycle lacks.
  EXPECT_FALSE(ThresholdHanfEquivalent(chain, cycle, 1, 2));
}

TEST(ThresholdHanfTest, ZeroThresholdIsTrivial) {
  Structure chain = MakeDirectedPath(6);
  Structure cycle = MakeDirectedCycle(4);
  EXPECT_TRUE(ThresholdHanfEquivalent(chain, cycle, 2, 0));
}

TEST(ThresholdHanfTest, OneSidedTypeBoundary) {
  // Pins the b-only branch of ThresholdHanfEquivalent: a type realized in
  // exactly one structure compares counts (cb, 0), which clears the
  // threshold only when it is 0. The cycle realizes one r=1 type
  // (in/out-degree 1 everywhere); the path adds two endpoint types.
  Structure cycle = MakeDirectedCycle(8);
  Structure path = MakeDirectedPath(8);
  // One-sided types in BOTH directions (path-only endpoint types when b is
  // the path, cycle-only... the interior type is shared), symmetric calls:
  for (std::size_t threshold : {1, 2, 5}) {
    EXPECT_FALSE(ThresholdHanfEquivalent(cycle, path, 1, threshold))
        << "threshold " << threshold;
    EXPECT_FALSE(ThresholdHanfEquivalent(path, cycle, 1, threshold))
        << "threshold " << threshold;
  }
  // threshold == 0: (cb, 0) passes — trivially equivalent.
  EXPECT_TRUE(ThresholdHanfEquivalent(cycle, path, 1, 0));
  EXPECT_TRUE(ThresholdHanfEquivalent(path, cycle, 1, 0));
}

// --- Gaifman locality (E8) --------------------------------------------------

TEST(GaifmanLocalTest, TcOnLongChainViolatesEveryRadius) {
  // The canonical proof: on a long chain, (a,b) and (b,a) have isomorphic
  // r-neighborhoods but TC contains only (a,b).
  Structure chain = MakeDirectedPath(12);
  Result<Relation> tc = RelationQuery::TransitiveClosure().Evaluate(chain);
  ASSERT_TRUE(tc.ok());
  for (std::size_t r = 0; r <= 2; ++r) {
    Result<std::optional<GaifmanViolation>> v =
        FindGaifmanViolation(chain, *tc, r);
    ASSERT_TRUE(v.ok());
    ASSERT_TRUE(v->has_value()) << "r=" << r;
    // The witness really is a violation: one side in TC, the other not.
    EXPECT_TRUE(tc->Contains((*v)->in_output));
    EXPECT_FALSE(tc->Contains((*v)->not_in_output));
  }
}

TEST(GaifmanLocalTest, FoQueryIsLocalAtItsRadius) {
  // The FO query E(x,y) is Gaifman-local with radius 1 on any structure:
  // the 1-neighborhood of (x,y) determines the atom.
  Structure chain = MakeDirectedPath(10);
  Result<Relation> edges =
      RelationQuery::FromFormula("edge", Formula::Atom("E", {V("x"), V("y")}),
                                 {"x", "y"})
          .Evaluate(chain);
  ASSERT_TRUE(edges.ok());
  Result<std::optional<std::size_t>> r =
      GaifmanLocalRadiusOn(chain, *edges, 3);
  ASSERT_TRUE(r.ok());
  ASSERT_TRUE(r->has_value());
  EXPECT_LE(**r, 1u);
}

TEST(GaifmanLocalTest, ViolationVanishesOnceRadiusSeesTheWholeGraph) {
  // On a short chain, a radius that engulfs everything leaves no two tuples
  // with isomorphic neighborhoods but different TC membership.
  Structure chain = MakeDirectedPath(5);
  Result<Relation> tc = RelationQuery::TransitiveClosure().Evaluate(chain);
  ASSERT_TRUE(tc.ok());
  Result<std::optional<std::size_t>> r = GaifmanLocalRadiusOn(chain, *tc, 6);
  ASSERT_TRUE(r.ok());
  ASSERT_TRUE(r->has_value());
  // Radius 0 has violations ((0,1) vs (1,0) — iso 0-neighborhoods, only one
  // in TC); a 5-chain is too short to give radius-1 witnesses (they need
  // 2r-separation from each other and the endpoints).
  EXPECT_EQ(**r, 1u);
}

TEST(GaifmanLocalTest, ZeroArityRejected) {
  Structure chain = MakeDirectedPath(3);
  Relation nullary(0);
  Result<std::optional<GaifmanViolation>> v =
      FindGaifmanViolation(chain, nullary, 1);
  EXPECT_FALSE(v.ok());
  EXPECT_EQ(v.status().code(), StatusCode::kInvalidArgument);
}

TEST(GaifmanLocalTest, OutputOutsideDomainRejected) {
  Structure chain = MakeDirectedPath(3);
  Relation bad(2);
  bad.Add({0, 9});
  Result<std::optional<GaifmanViolation>> v =
      FindGaifmanViolation(chain, bad, 1);
  EXPECT_FALSE(v.ok());
}

// --- BNDP (E7) ---------------------------------------------------------------

TEST(BndpTest, TcOnChainsGrowsDegrees) {
  // TC of an n-chain realizes n distinct degrees; the profile explodes even
  // though inputs have degree <= 2.
  BndpProfile profile;
  for (std::size_t n = 4; n <= 16; n += 4) {
    Structure chain = MakeDirectedPath(n);
    Result<Relation> tc = RelationQuery::TransitiveClosure().Evaluate(chain);
    ASSERT_TRUE(tc.ok());
    profile.Observe(chain, 0, *tc);
  }
  EXPECT_EQ(profile.observations(), 4u);
  EXPECT_EQ(profile.MaxObserved(), 16u);
  EXPECT_FALSE(profile.WithinBound(8));
  // All inputs had max degree 2.
  ASSERT_EQ(profile.profile().size(), 1u);
  EXPECT_EQ(profile.profile().begin()->first, 2u);
}

TEST(BndpTest, SameGenerationOnBinaryTreesExplodes) {
  // The survey: on a depth-n full binary tree, same-generation realizes
  // degrees 1, 2, 4, ..., 2^n.
  Structure tree = MakeFullBinaryTree(4);
  Result<Relation> sg = RelationQuery::SameGeneration().Evaluate(tree);
  ASSERT_TRUE(sg.ok());
  std::set<std::size_t> degs = DegreeSet(*sg, tree.domain_size());
  for (std::size_t level = 0; level <= 4; ++level) {
    EXPECT_TRUE(degs.count(std::size_t{1} << level))
        << "missing degree " << (std::size_t{1} << level);
  }
}

TEST(BndpTest, FoQueryStaysBounded) {
  // The 2-step reachability FO query keeps |degs| small on chains of any
  // length.
  Formula two_step = *ParseFormula("exists z. E(x,z) & E(z,y)");
  BndpProfile profile;
  for (std::size_t n = 4; n <= 64; n *= 2) {
    Structure chain = MakeDirectedPath(n);
    Result<Relation> out =
        RelationQuery::FromFormula("two-step", two_step, {"x", "y"})
            .Evaluate(chain);
    ASSERT_TRUE(out.ok());
    profile.Observe(chain, 0, *out);
  }
  EXPECT_TRUE(profile.WithinBound(3));
}

}  // namespace
}  // namespace fmtk
