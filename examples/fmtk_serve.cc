// fmtk_serve: the toolkit as a long-lived service. Loads named structures,
// then serves FO/Datalog queries over HTTP with the cost-based router and
// the sharded compiled-plan cache doing the work — a repeat query on a warm
// server skips parse, analysis, and compilation entirely.
//
//   fmtk_serve --port 8080 --load g=graph.fmtkbin --load web=edges.txt
//   curl -s localhost:8080/healthz
//   curl -s -X POST localhost:8080/query
//        -d '{"structure":"g","query":"exists x. exists y. E(x,y)"}'
//   curl -s -X PUT --data-binary @web.edges 'localhost:8080/structure/web'
//   curl -s localhost:8080/stats
//
// Admission control budgets (reject with 429 before engine work starts):
//   --max-rank N       reject quantifier rank > N
//   --max-width N      reject variable width > N
//   --max-cost C       reject chosen-engine cost estimates > C
//   --heavy-cost C     serialize requests costed >= C through the heavy
//                      lane (--heavy-waiting bounds its wait list)

#include <signal.h>

#include <atomic>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>
#include <thread>
#include <vector>

#include "server/query_server.h"
#include "structures/bulk_load.h"

namespace {

std::atomic<bool> g_stop{false};

void HandleSignal(int) { g_stop.store(true); }

int Usage(const char* argv0) {
  std::fprintf(
      stderr,
      "usage: %s [--host H] [--port P] [--workers N] [--load name=path]...\n"
      "          [--max-rank N] [--max-width N] [--max-cost C]\n"
      "          [--heavy-cost C] [--heavy-waiting N] [--max-rows N]\n"
      "  --load accepts FMTKBIN1 files (bulk loader) or edge lists.\n",
      argv0);
  return 2;
}

}  // namespace

int main(int argc, char** argv) {
  fmtk::QueryServerOptions options;
  options.http.port = 8080;
  std::vector<std::pair<std::string, std::string>> loads;

  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    auto next = [&]() -> const char* {
      return i + 1 < argc ? argv[++i] : nullptr;
    };
    if (arg == "--host") {
      const char* v = next();
      if (v == nullptr) return Usage(argv[0]);
      options.http.host = v;
    } else if (arg == "--port") {
      const char* v = next();
      if (v == nullptr) return Usage(argv[0]);
      options.http.port = static_cast<std::uint16_t>(std::atoi(v));
    } else if (arg == "--workers") {
      const char* v = next();
      if (v == nullptr) return Usage(argv[0]);
      options.http.worker_threads = static_cast<std::size_t>(std::atoi(v));
    } else if (arg == "--load") {
      const char* v = next();
      if (v == nullptr) return Usage(argv[0]);
      const char* eq = std::strchr(v, '=');
      if (eq == nullptr) return Usage(argv[0]);
      loads.emplace_back(std::string(v, eq), std::string(eq + 1));
    } else if (arg == "--max-rank") {
      const char* v = next();
      if (v == nullptr) return Usage(argv[0]);
      options.admission.max_quantifier_rank =
          static_cast<std::size_t>(std::atoi(v));
    } else if (arg == "--max-width") {
      const char* v = next();
      if (v == nullptr) return Usage(argv[0]);
      options.admission.max_variable_width =
          static_cast<std::size_t>(std::atoi(v));
    } else if (arg == "--max-cost") {
      const char* v = next();
      if (v == nullptr) return Usage(argv[0]);
      options.admission.max_cost_units = std::atof(v);
    } else if (arg == "--heavy-cost") {
      const char* v = next();
      if (v == nullptr) return Usage(argv[0]);
      options.admission.heavy_cost_units = std::atof(v);
    } else if (arg == "--heavy-waiting") {
      const char* v = next();
      if (v == nullptr) return Usage(argv[0]);
      options.admission.heavy_max_waiting =
          static_cast<std::size_t>(std::atoi(v));
    } else if (arg == "--max-rows") {
      const char* v = next();
      if (v == nullptr) return Usage(argv[0]);
      options.max_response_rows = static_cast<std::size_t>(std::atoi(v));
    } else {
      return Usage(argv[0]);
    }
  }

  fmtk::QueryServer server(options);

  for (const auto& [name, path] : loads) {
    // FMTKBIN1 files carry their magic; anything else loads as an edge
    // list (the format public graph datasets ship in).
    auto binary = fmtk::ReadStructureBinaryFile(path);
    if (binary.ok()) {
      server.PutStructure(name, *std::move(binary), "file:" + path);
      std::printf("loaded %s from %s (binary)\n", name.c_str(), path.c_str());
      continue;
    }
    auto edges = fmtk::LoadEdgeListFile(path);
    if (!edges.ok()) {
      std::fprintf(stderr, "cannot load %s: %s\n", path.c_str(),
                   edges.status().ToString().c_str());
      return 1;
    }
    server.PutStructure(name, std::move(edges->structure), "file:" + path);
    std::printf("loaded %s from %s (%zu edges)\n", name.c_str(), path.c_str(),
                edges->stats.edges);
  }

  const fmtk::Status started = server.Start();
  if (!started.ok()) {
    std::fprintf(stderr, "cannot start: %s\n", started.ToString().c_str());
    return 1;
  }
  std::printf("fmtk_serve listening on %s:%u (%zu workers)\n",
              options.http.host.c_str(), server.port(),
              options.http.worker_threads);
  std::printf("try: curl -s -X POST %s:%u/query -d "
              "'{\"structure\":\"g\",\"query\":\"exists x. E(x,x)\"}'\n",
              options.http.host.c_str(), server.port());
  std::fflush(stdout);

  signal(SIGINT, HandleSignal);
  signal(SIGTERM, HandleSignal);
  while (!g_stop.load()) {
    std::this_thread::sleep_for(std::chrono::milliseconds(100));
  }
  std::printf("shutting down\n");
  server.Stop();
  return 0;
}
