// The engines behind EvaluateAuto, mirroring the survey's complexity story:
// the naive O(n^k) checker (combined complexity), compiled slot evaluation
// (data complexity), the bottom-up relational evaluator (a tiny database
// engine), Datalog for the existential-positive fragment, and the Hanf
// histogram for bounded-degree inputs — then the meta-planner routing one
// query across all of them, with the --explain cost table. Plus the AC0
// circuit family and the QBF reduction that pin the two ends of the
// complexity spectrum.

#include <cstdio>
#include <random>

#include "circuits/compile.h"
#include "eval/model_check.h"
#include "logic/parser.h"
#include "planner/planner.h"
#include "qbf/qbf.h"
#include "structures/generators.h"

int main() {
  using namespace fmtk;  // NOLINT: examples favor brevity.

  std::mt19937_64 rng(17);
  Structure g = MakeRandomGraph(6, 0.3, rng);
  Formula f = *ParseFormula("forall x. exists y. E(x,y) | E(y,x)");
  std::printf("query: %s   on a random 6-node graph\n\n",
              f.ToString().c_str());

  // Every engine answers through the same front door: EvaluateAuto with
  // force_engine pinned. Engines that cannot handle this query (here:
  // parallel needs >= 2 threads, bounded-degree is gated on sparsity)
  // report Unsupported instead of a wrong answer.
  const EngineKind kAll[] = {EngineKind::kNaive,      EngineKind::kCompiled,
                             EngineKind::kParallel,   EngineKind::kRelational,
                             EngineKind::kDatalog,    EngineKind::kBoundedDegree};
  for (EngineKind kind : kAll) {
    PlannerOptions options;
    options.force_engine = kind;
    Result<bool> verdict = EvaluateAuto(g, f, options);
    std::printf("  %-15s %s\n", EngineKindName(kind),
                verdict.ok() ? (*verdict ? "true" : "false")
                             : verdict.status().ToString().c_str());
  }

  // The meta-planner itself: no force flag, explain the routing decision.
  PlanExplanation explain;
  bool routed = *EvaluateAuto(g, f, {}, &explain);
  std::printf("\nEvaluateAuto: %s\n%s\n", routed ? "true" : "false",
              explain.ToString().c_str());

  // Second call hits the compiled-plan cache (same canonical key).
  PlanExplanation warm;
  (void)*EvaluateAuto(g, f, {}, &warm);
  std::printf("repeat call: cache_hit=%s\n\n",
              warm.cache_hit ? "true" : "false");

  // The AC0 circuit for n = 6 — parallel data complexity (Thm 2.4).
  Circuit circuit = *CompileSentence(f, *Signature::Graph(), 6);
  bool via_circuit = *circuit.Evaluate(*EncodeStructure(g));
  std::printf("AC0 circuit:  %s  (depth %zu, %zu gates)\n",
              via_circuit ? "true" : "false", circuit.Depth(),
              circuit.gate_count());

  // Datalog serving path — transitive closure of a 6-chain through the
  // plan cache (repeat programs skip parse/analyze/bind).
  std::printf("\nDatalog — transitive closure of a 6-chain:\n");
  DatalogStats stats;
  auto idb = *EvaluateDatalogAuto(MakeDirectedPath(6),
                                  "tc(x,y) :- E(x,y).\n"
                                  "tc(x,z) :- E(x,y), tc(y,z).",
                                  {}, &stats);
  std::printf("  tc has %zu tuples after %zu semi-naive rounds\n",
              idb.at("tc").size(), stats.iterations);

  // The other direction: combined complexity is PSPACE-hard because QBF
  // embeds into FO model checking over a fixed 2-element structure.
  std::printf("\nQBF -> FO model checking (the PSPACE-hardness direction):\n");
  Qbf qbf = *ParseQbf("forall p. exists q. (p & q) | (!p & !q)");
  QbfAsModelChecking reduced = *ReduceToModelChecking(qbf);
  std::printf("   QBF:         %s\n", qbf.ToString().c_str());
  std::printf("   FO sentence: %s\n", reduced.sentence.ToString().c_str());
  std::printf("   solver: %s, model checking on {0,1}: %s\n",
              *SolveQbf(qbf) ? "true" : "false",
              *Satisfies(reduced.structure, reduced.sentence) ? "true"
                                                              : "false");
  return 0;
}
