// Four ways to answer a query, mirroring the survey's complexity story:
// the naive O(n^k) checker (combined complexity), the bottom-up relational
// evaluator (a tiny database engine), the AC0 circuit family (parallel
// data complexity), and Datalog for what FO cannot say. Plus the QBF
// reduction that pins combined complexity to PSPACE.

#include <cstdio>
#include <random>

#include "circuits/compile.h"
#include "datalog/evaluator.h"
#include "datalog/program.h"
#include "eval/model_check.h"
#include "eval/query_eval.h"
#include "logic/parser.h"
#include "qbf/qbf.h"
#include "structures/generators.h"

int main() {
  using namespace fmtk;  // NOLINT: examples favor brevity.

  std::mt19937_64 rng(17);
  Structure g = MakeRandomGraph(6, 0.3, rng);
  Formula f = *ParseFormula("forall x. exists y. E(x,y) | E(y,x)");
  std::printf("query: %s   on a random 6-node graph\n\n",
              f.ToString().c_str());

  // Engine 1: recursive model checking (the O(n^k) algorithm).
  ModelChecker checker(g);
  bool direct = *checker.Check(f);
  std::printf("1. recursive checker:    %s  (%llu atom lookups)\n",
              direct ? "true" : "false",
              static_cast<unsigned long long>(checker.stats().atom_lookups));

  // Engine 2: bottom-up relational algebra (select/join/project).
  Relation ans = *EvaluateQuery(g, f, {});
  std::printf("2. relational engine:    %s  (answer relation %s)\n",
              ans.size() == 1 ? "true" : "false",
              ans.size() == 1 ? "{()}" : "{}");

  // Engine 3: the AC0 circuit for n = 6.
  Circuit circuit = *CompileSentence(f, *Signature::Graph(), 6);
  bool via_circuit = *circuit.Evaluate(*EncodeStructure(g));
  std::printf("3. AC0 circuit:          %s  (depth %zu, %zu gates)\n",
              via_circuit ? "true" : "false", circuit.Depth(),
              circuit.gate_count());

  // Engine 4: Datalog, for the fixed points FO cannot express.
  std::printf("\nDatalog — transitive closure of a 6-chain:\n");
  DatalogStats stats;
  auto idb = *EvaluateDatalog(DatalogProgram::TransitiveClosure(),
                              MakeDirectedPath(6),
                              DatalogStrategy::kSemiNaive, &stats);
  std::printf("4. tc has %zu tuples after %zu semi-naive rounds\n",
              idb.at("tc").size(), stats.iterations);

  // The other direction: combined complexity is PSPACE-hard because QBF
  // embeds into FO model checking over a fixed 2-element structure.
  std::printf("\nQBF -> FO model checking (the PSPACE-hardness direction):\n");
  Qbf qbf = *ParseQbf("forall p. exists q. (p & q) | (!p & !q)");
  QbfAsModelChecking reduced = *ReduceToModelChecking(qbf);
  std::printf("   QBF:         %s\n", qbf.ToString().c_str());
  std::printf("   FO sentence: %s\n", reduced.sentence.ToString().c_str());
  std::printf("   solver: %s, model checking on {0,1}: %s\n",
              *SolveQbf(qbf) ? "true" : "false",
              *Satisfies(reduced.structure, reduced.sentence) ? "true"
                                                              : "false");
  return 0;
}
