// fmtk_lint — the static query analyzer as a command-line linter.
//
//   fmtk_lint [options] <file>...
//   fmtk_lint [options] -e "<formula or program>"
//
// Each input is an FO formula (logic/parser.h surface syntax) or a Datalog
// program (datalog/program.h syntax; detected by ':-' or forced with
// --datalog). Diagnostics carry stable FMTK### codes: FMTK0xx for formulas,
// FMTK1xx for programs (see DESIGN.md for the full table).
//
// Options:
//   --datalog            treat inputs as Datalog programs
//   --formula            treat inputs as FO formulas (overrides detection)
//   --structure <file>   check vocabulary against this structure's signature
//   --signature "<sig>"  inline signature, e.g. "E/2,P/1;c,d"
//   --query              FO: enforce safe-range (query profile; FMTK010/011
//                        become errors). Default: model-check profile.
//   --output <p[,q]>     Datalog: output predicates for reachability
//                        analysis (FMTK106)
//   --json               print one JSON object per input: the diagnostics
//                        array plus the meta-planner's routing measures
//                        (qr, width, node count, safe-range) and — when
//                        --structure was given — the structure statistics
//                        (Gaifman degree, components, diameter bound) the
//                        EvaluateAuto cost model consumes
//   -e "<text>"          lint the argument instead of a file
//
// Exit status: 0 when every input is error-clean (warnings and notes are
// fine), 1 when any diagnostic of severity error was reported, 2 on usage,
// I/O or parse failures.

#include <cstdio>
#include <fstream>
#include <memory>
#include <sstream>
#include <string>
#include <utility>
#include <vector>

#include "analysis/datalog_analyzer.h"
#include "analysis/diagnostics.h"
#include "analysis/fo_analyzer.h"
#include "base/json_out.h"
#include "base/string_util.h"
#include "datalog/program.h"
#include "logic/parser.h"
#include "structures/io.h"
#include "structures/signature.h"
#include "structures/structure.h"
#include "structures/structure_stats.h"

namespace {

using fmtk::DatalogAnalysis;
using fmtk::FoAnalysis;
using fmtk::Result;
using fmtk::Signature;
using fmtk::Status;

struct LintOptions {
  enum class Mode { kAuto, kFormula, kDatalog };
  Mode mode = Mode::kAuto;
  bool query_profile = false;
  bool json = false;
  std::shared_ptr<const Signature> signature;  // null = skip vocab checks
  /// Set by --structure: its stats ride along in the --json report.
  std::shared_ptr<const fmtk::Structure> structure;
  std::vector<std::string> outputs;
};

// base/json_out.h: the shared escaper handles control characters and
// invalid UTF-8 bytes, which the seed's ad-hoc escaper passed through raw
// (a "\x01" in a file name made --json emit invalid JSON).
std::string JsonEscape(const std::string& text) {
  std::string out;
  out.reserve(text.size() + 2);
  fmtk::JsonAppendEscaped(out, text);
  return out;
}

// The analyzer measures the meta-planner's cost model routes on
// (src/planner/planner.cc Route()), as one JSON object.
std::string MeasuresJson(const FoAnalysis& analysis) {
  std::ostringstream out;
  out << "{\"quantifier_rank\":" << analysis.quantifier_rank
      << ",\"quantifier_count\":" << analysis.quantifier_count
      << ",\"variable_width\":" << analysis.variable_width
      << ",\"node_count\":" << analysis.node_count
      << ",\"free_variable_count\":" << analysis.free_variables.size()
      << ",\"safe_range\":" << (analysis.safe_range ? "true" : "false")
      << "}";
  return out.str();
}

std::string StructureStatsJson(const fmtk::StructureStats& stats) {
  std::ostringstream out;
  out << "{\"domain_size\":" << stats.domain_size
      << ",\"tuple_count\":" << stats.tuple_count
      << ",\"relation_count\":" << stats.relation_count
      << ",\"max_relation_size\":" << stats.max_relation_size
      << ",\"gaifman_edge_count\":" << stats.gaifman_edge_count
      << ",\"max_degree\":" << stats.max_degree << ",\"avg_degree\":"
      << stats.avg_degree << ",\"component_count\":" << stats.component_count
      << ",\"diameter_bound\":" << stats.diameter_bound << "}";
  return out.str();
}

Result<std::string> ReadFile(const std::string& path) {
  std::ifstream in(path);
  if (!in) {
    return Status::InvalidArgument("cannot open " + path);
  }
  std::ostringstream buffer;
  buffer << in.rdbuf();
  return buffer.str();
}

// "E/2,P/1;c,d" -> Signature. The part after ';' (optional) lists constants.
Result<std::shared_ptr<const Signature>> ParseInlineSignature(
    const std::string& text) {
  auto signature = std::make_shared<Signature>();
  const std::size_t semi = text.find(';');
  const std::string relations = text.substr(0, semi);
  for (const std::string& part : fmtk::Split(relations, ',')) {
    const std::string entry(fmtk::StripWhitespace(part));
    if (entry.empty()) {
      continue;
    }
    const std::size_t slash = entry.find('/');
    if (slash == std::string::npos) {
      return Status::InvalidArgument("signature entry '" + entry +
                                     "' is not of the form name/arity");
    }
    const std::string name = entry.substr(0, slash);
    if (signature->FindRelation(name).has_value()) {
      return Status::InvalidArgument("duplicate relation '" + name +
                                     "' in signature");
    }
    try {
      signature->AddRelation(name, std::stoul(entry.substr(slash + 1)));
    } catch (const std::exception&) {
      return Status::InvalidArgument("bad arity in signature entry '" +
                                     entry + "'");
    }
  }
  if (semi != std::string::npos) {
    for (const std::string& part :
         fmtk::Split(text.substr(semi + 1), ',')) {
      const std::string name(fmtk::StripWhitespace(part));
      if (!name.empty() && !signature->FindConstant(name).has_value()) {
        signature->AddConstant(name);
      }
    }
  }
  return std::shared_ptr<const Signature>(std::move(signature));
}

bool LooksLikeDatalog(const std::string& text) {
  return text.find(":-") != std::string::npos;
}

// `extra_json` is either empty or ",\"key\":value,..." to splice into the
// JSON object after the diagnostics array.
void PrintReport(const std::string& label, const std::string& kind,
                 const fmtk::DiagnosticSink& diagnostics,
                 const std::string& source, bool json,
                 const std::vector<std::string>& summary,
                 const std::string& extra_json = "") {
  if (json) {
    std::printf("{\"input\":\"%s\",\"kind\":\"%s\",\"diagnostics\":%s%s}\n",
                JsonEscape(label).c_str(), kind.c_str(),
                diagnostics.ToJson().c_str(), extra_json.c_str());
    return;
  }
  if (!diagnostics.empty()) {
    std::printf("%s", diagnostics.ToText(source).c_str());
  }
  std::printf("%s: %zu error(s), %zu warning(s)", label.c_str(),
              diagnostics.error_count(), diagnostics.warning_count());
  for (const std::string& line : summary) {
    std::printf("; %s", line.c_str());
  }
  std::printf("\n");
}

// Returns 0/1/2 like the tool's exit status.
int LintFormula(const std::string& label, const std::string& text,
                const LintOptions& options) {
  Result<fmtk::ParsedFormula> parsed =
      fmtk::ParseFormulaWithSpans(text, options.signature.get());
  if (!parsed.ok()) {
    std::fprintf(stderr, "%s: %s\n", label.c_str(),
                 parsed.status().ToString().c_str());
    return 2;
  }
  fmtk::FoAnalyzerOptions analyzer_options;
  analyzer_options.signature = options.signature.get();
  analyzer_options.spans = &parsed->spans;
  analyzer_options.profile = options.query_profile
                                 ? fmtk::FoProfile::kQuery
                                 : fmtk::FoProfile::kModelCheck;
  const FoAnalysis analysis =
      fmtk::AnalyzeFormula(parsed->formula, analyzer_options);
  std::vector<std::string> summary;
  summary.push_back(
      "qr=" + std::to_string(analysis.quantifier_rank) +
      " width=" + std::to_string(analysis.variable_width) +
      " free=" + std::to_string(analysis.free_variables.size()));
  summary.push_back(analysis.safe_range ? "safe-range" : "not safe-range");
  std::string extra = ",\"measures\":" + MeasuresJson(analysis);
  if (options.structure != nullptr) {
    extra += ",\"structure_stats\":" +
             StructureStatsJson(options.structure->Stats());
  }
  PrintReport(label, "formula", analysis.diagnostics, text, options.json,
              summary, extra);
  return analysis.ok() ? 0 : 1;
}

int LintDatalog(const std::string& label, const std::string& text,
                const LintOptions& options) {
  Result<fmtk::DatalogProgram> program =
      fmtk::ParseDatalogProgram(text, /*validate=*/false);
  if (!program.ok()) {
    std::fprintf(stderr, "%s: %s\n", label.c_str(),
                 program.status().ToString().c_str());
    return 2;
  }
  fmtk::DatalogAnalyzerOptions analyzer_options;
  analyzer_options.signature = options.signature.get();
  analyzer_options.outputs = options.outputs;
  const DatalogAnalysis analysis =
      fmtk::AnalyzeProgram(*program, analyzer_options);
  std::vector<std::string> summary = analysis.RecursionSummary();
  std::string extra;
  if (options.structure != nullptr) {
    extra = ",\"structure_stats\":" +
            StructureStatsJson(options.structure->Stats());
  }
  PrintReport(label, "datalog", analysis.diagnostics, text, options.json,
              summary, extra);
  return analysis.ok() ? 0 : 1;
}

int Usage() {
  std::fprintf(
      stderr,
      "usage: fmtk_lint [--datalog|--formula] [--structure <file>]\n"
      "                 [--signature \"E/2,P/1;c\"] [--query]\n"
      "                 [--output p[,q]] [--json] (<file>... | -e <text>)\n");
  return 2;
}

}  // namespace

int main(int argc, char** argv) {
  LintOptions options;
  std::vector<std::pair<std::string, std::string>> inputs;  // label, text
  std::vector<std::string> files;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--datalog") {
      options.mode = LintOptions::Mode::kDatalog;
    } else if (arg == "--formula") {
      options.mode = LintOptions::Mode::kFormula;
    } else if (arg == "--query") {
      options.query_profile = true;
    } else if (arg == "--json") {
      options.json = true;
    } else if (arg == "--structure" && i + 1 < argc) {
      Result<std::string> text = ReadFile(argv[++i]);
      if (!text.ok()) {
        std::fprintf(stderr, "error: %s\n",
                     text.status().ToString().c_str());
        return 2;
      }
      Result<fmtk::Structure> parsed = fmtk::ParseStructure(*text);
      if (!parsed.ok()) {
        std::fprintf(stderr, "error: %s\n",
                     parsed.status().ToString().c_str());
        return 2;
      }
      options.signature =
          std::make_shared<Signature>(parsed->signature());
      options.structure =
          std::make_shared<const fmtk::Structure>(*std::move(parsed));
    } else if (arg == "--signature" && i + 1 < argc) {
      Result<std::shared_ptr<const Signature>> parsed =
          ParseInlineSignature(argv[++i]);
      if (!parsed.ok()) {
        std::fprintf(stderr, "error: %s\n",
                     parsed.status().ToString().c_str());
        return 2;
      }
      options.signature = *parsed;
    } else if (arg == "--output" && i + 1 < argc) {
      for (const std::string& p : fmtk::Split(argv[++i], ',')) {
        const std::string name(fmtk::StripWhitespace(p));
        if (!name.empty()) {
          options.outputs.push_back(name);
        }
      }
    } else if (arg == "-e" && i + 1 < argc) {
      inputs.emplace_back("<arg>", argv[++i]);
    } else if (!arg.empty() && arg[0] == '-') {
      return Usage();
    } else {
      files.push_back(arg);
    }
  }
  for (const std::string& file : files) {
    Result<std::string> text = ReadFile(file);
    if (!text.ok()) {
      std::fprintf(stderr, "error: %s\n", text.status().ToString().c_str());
      return 2;
    }
    inputs.emplace_back(file, *text);
  }
  if (inputs.empty()) {
    return Usage();
  }
  int exit_code = 0;
  for (const auto& [label, text] : inputs) {
    const bool datalog =
        options.mode == LintOptions::Mode::kDatalog ||
        (options.mode == LintOptions::Mode::kAuto && LooksLikeDatalog(text));
    const int code = datalog ? LintDatalog(label, text, options)
                             : LintFormula(label, text, options);
    if (code > exit_code) {
      exit_code = code;
    }
  }
  return exit_code;
}
