// The 0-1 law: estimate mu_n empirically, then decide the limit exactly in
// the random graph via the extension property — no sampling, no limits.

#include <cstdio>
#include <random>

#include "core/zeroone/almost_sure.h"
#include "core/zeroone/mu.h"
#include "logic/parser.h"
#include "structures/signature.h"

int main() {
  using namespace fmtk;  // NOLINT: examples favor brevity.

  const char* sentences[] = {
      "forall x. forall y. E(x,y)",                       // The survey's Q1.
      "forall x. forall y. x = y | (exists z. E(z,x) & !E(z,y))",  // Q2.
      "exists x y z. E(x,y) & E(y,z) & E(z,x)",           // A triangle.
      "exists x. forall y. E(x,y)",                       // A dominator.
  };
  std::mt19937_64 rng(4);
  for (const char* text : sentences) {
    Formula f = *ParseFormula(text);
    std::printf("phi = %s\n", text);
    std::printf("  mu_n by sampling: ");
    for (std::size_t n : {4, 8, 16, 32}) {
      MuEstimate mu = *MonteCarloMu(f, Signature::Graph(), n, 200, rng);
      std::printf("n=%zu: %.2f  ", n, mu.value);
    }
    bool verdict = *AlmostSurelyTrue(f);
    std::printf("\n  exact limit by the extension property: mu(phi) = %d\n\n",
                verdict ? 1 : 0);
  }

  std::printf(
      "Every FO sentence lands on 0 or 1 — that is the 0-1 law. EVEN "
      "cannot: mu_n(EVEN) alternates 0, 1, 0, 1, ... so EVEN is not "
      "FO-expressible.\n\n");

  std::printf(
      "Why the exact decision works: the almost-sure theory is axiomatized "
      "by the extension axioms, e.g. with one named point (in=1, out=0, "
      "loop=0):\n");
  ExtensionPattern pattern;
  pattern.rows = {{true, false}};
  Formula axiom = ExtensionAxiom(pattern);
  std::printf("  %s\n", axiom.ToString().c_str());
  std::printf("  almost surely true: %s\n",
              *AlmostSurelyTrue(axiom) ? "yes" : "no");
  return 0;
}
