// The survey's §3 storyline end to end: prove EVEN is not FO-expressible
// over sets and over linear orders with games, then push the result onto
// connectivity, acyclicity and transitive closure with the §3.3 tricks.

#include <cstdio>

#include "core/games/ef_game.h"
#include "core/games/linear_order.h"
#include "core/interp/reductions.h"
#include "queries/boolean_query.h"
#include "structures/generators.h"

int main() {
  using namespace fmtk;  // NOLINT: examples favor brevity.

  std::printf("== Step 1: EVEN over sets ==\n");
  std::printf(
      "For every n, the 2n-set and the (2n+1)-set are n-round equivalent "
      "but differ on EVEN:\n");
  for (std::size_t n = 1; n <= 4; ++n) {
    Structure a = MakeSet(2 * n);
    Structure b = MakeSet(2 * n + 1);
    EfGameSolver solver(a, b);
    std::printf("  n=%zu: G_%zu(set%zu, set%zu): duplicator %s\n", n, n,
                a.domain_size(), b.domain_size(),
                *solver.DuplicatorWins(n) ? "wins" : "LOSES (bug!)");
  }
  std::printf(
      "Were EVEN definable by a rank-n sentence, both would have to agree "
      "on it. Contradiction.\n\n");

  std::printf("== Step 2: EVEN over linear orders (Theorem 3.1) ==\n");
  std::printf(
      "The game is combinatorially heavier; the composition method gives "
      "L_m ==_n L_k for m,k >= 2^n - 1:\n");
  for (std::size_t n = 2; n <= 6; ++n) {
    const std::size_t m = std::size_t{1} << n;
    std::printf("  n=%zu: L_%zu ==_%zu L_%zu: %s\n", n, m, n, m + 1,
                LinearOrdersEquivalent(m, m + 1, n) ? "yes" : "no");
  }
  std::printf("\n== Step 3: the tricks (Corollary 3.2) ==\n");
  Interpretation to_conn = EvenToConnectivity();
  Interpretation to_acycl = EvenToAcyclicity();
  BooleanQuery conn = BooleanQuery::Connectivity();
  BooleanQuery dag = BooleanQuery::DirectedAcyclicity();
  std::printf(
      "The FO-definable 2nd-successor construction turns order parity into "
      "connectivity:\n");
  for (std::size_t n = 5; n <= 8; ++n) {
    Structure g = *to_conn.Apply(MakeLinearOrder(n));
    std::printf("  L_%zu (%s)  ->  graph is %s\n", n,
                n % 2 == 0 ? "even" : "odd",
                *conn.Evaluate(g) ? "connected" : "disconnected");
  }
  std::printf("...and the back-edge construction into acyclicity:\n");
  for (std::size_t n = 5; n <= 8; ++n) {
    Structure g = *to_acycl.Apply(MakeLinearOrder(n));
    std::printf("  L_%zu (%s)  ->  graph is %s\n", n,
                n % 2 == 0 ? "even" : "odd",
                *dag.Evaluate(g) ? "acyclic" : "cyclic");
  }
  std::printf(
      "\nIf CONN (or ACYCL) were FO, composing with the interpretation "
      "would define EVEN over orders — impossible by Step 2.\n");
  std::printf(
      "Finally CONN <= TC: symmetrize, close transitively, test "
      "completeness:\n");
  Structure two_cycles = MakeDisjointCycles(2, 4);
  Structure one_cycle = MakeDirectedCycle(8);
  std::printf("  two 4-cycles: via TC -> %s; one 8-cycle: via TC -> %s\n",
              *ConnectivityViaTransitiveClosure(two_cycles) ? "connected"
                                                            : "disconnected",
              *ConnectivityViaTransitiveClosure(one_cycle) ? "connected"
                                                           : "disconnected");
  std::printf("So TC is not FO-definable either. QED, four times over.\n");
  return 0;
}
