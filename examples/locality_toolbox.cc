// The locality tools of §3.4–3.5: BNDP, Gaifman locality, Hanf locality,
// and the bounded-degree linear-time evaluator, each on its canonical
// example.

#include <cstdio>

#include "core/algorithmic/bounded_degree.h"
#include "core/locality/bndp.h"
#include "core/locality/gaifman_local.h"
#include "core/locality/hanf.h"
#include "logic/parser.h"
#include "queries/relation_query.h"
#include "structures/generators.h"

int main() {
  using namespace fmtk;  // NOLINT: examples favor brevity.

  std::printf("== BNDP (Theorem 3.4) ==\n");
  RelationQuery tc = RelationQuery::TransitiveClosure();
  for (std::size_t n : {8, 16, 32}) {
    Structure chain = MakeDirectedPath(n);
    Relation out = *tc.Evaluate(chain);
    std::printf(
        "  TC of the %2zu-chain: input degrees <= 2, output realizes %zu "
        "distinct degrees\n",
        n, DegreeCount(out, n));
  }
  RelationQuery sg = RelationQuery::SameGeneration();
  Structure tree = MakeFullBinaryTree(5);
  Relation sg_out = *sg.Evaluate(tree);
  std::printf(
      "  same-generation on the depth-5 tree: %zu distinct degrees (the "
      "levels contribute 1, 2, 4, ..., 32)\n\n",
      DegreeCount(sg_out, tree.domain_size()));

  std::printf("== Gaifman locality (Theorem 3.6) ==\n");
  Structure chain = MakeDirectedPath(16);
  Relation tc_out = *tc.Evaluate(chain);
  auto violation = *FindGaifmanViolation(chain, tc_out, 2);
  if (violation.has_value()) {
    std::printf(
        "  on the 16-chain, (%u,%u) and (%u,%u) have isomorphic "
        "2-neighborhoods, but only the first is in TC\n",
        violation->in_output[0], violation->in_output[1],
        violation->not_in_output[0], violation->not_in_output[1]);
  }
  std::printf(
      "  -> no radius works for TC on growing chains: TC is not "
      "Gaifman-local, hence not FO.\n\n");

  std::printf("== Hanf locality (Theorem 3.8) ==\n");
  for (std::size_t m : {5, 9, 13}) {
    Structure g1 = MakeDisjointCycles(2, m);
    Structure g2 = MakeDirectedCycle(2 * m);
    auto r = LargestHanfRadius(g1, g2, m);
    std::printf(
        "  two %2zu-cycles vs one %2zu-cycle: locally identical up to "
        "radius %zu, yet exactly one is connected\n",
        m, 2 * m, r.value_or(0));
  }
  std::printf("  -> connectivity is not Hanf-local, hence not FO.\n\n");

  std::printf("== Bounded degree => linear time (Theorem 3.11) ==\n");
  Formula sentence = *ParseFormula("exists x. !(exists y. E(x,y))");
  BoundedDegreeEvaluator evaluator = *BoundedDegreeEvaluator::Create(
      sentence, {.radius = 2, .threshold = 3, .parallel = {}});
  std::printf("  sentence: %s\n", sentence.ToString().c_str());
  for (std::size_t n = 50; n <= 250; n += 50) {
    bool verdict = *evaluator.Evaluate(MakeDirectedPath(n));
    std::printf(
        "  chain n=%3zu: %-5s (type-histogram cache: %zu hits, %zu "
        "misses)\n",
        n, verdict ? "true" : "false", evaluator.cache_hits(),
        evaluator.cache_misses());
  }
  std::printf(
      "  after the first miss the whole family is answered by a linear "
      "type-counting pass.\n");
  return 0;
}
