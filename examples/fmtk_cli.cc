// fmtk_cli — a small command-line front end for the toolkit.
//
//   fmtk_cli check <structure-file> "<sentence>"
//   fmtk_cli query <structure-file> "<formula>" <var,var,...>
//   fmtk_cli game <structure-file-A> <structure-file-B> <rounds>
//   fmtk_cli distinguish <structure-file-A> <structure-file-B> <max-rank>
//   fmtk_cli datalog <structure-file> "<program>"
//
// Structure files use the structures/io.h format (see the header or
// `examples/` docs). Formulas use the logic/parser.h surface syntax.

#include <cstdio>
#include <fstream>
#include <sstream>
#include <string>

#include "base/string_util.h"
#include "core/games/ef_game.h"
#include "core/games/hintikka.h"
#include "core/types/rank_type.h"
#include "datalog/evaluator.h"
#include "datalog/program.h"
#include "eval/model_check.h"
#include "eval/query_eval.h"
#include "logic/parser.h"
#include "structures/io.h"

namespace {

using fmtk::Result;
using fmtk::Status;
using fmtk::Structure;

Result<std::string> ReadFile(const std::string& path) {
  std::ifstream in(path);
  if (!in) {
    return Status::InvalidArgument("cannot open " + path);
  }
  std::ostringstream buffer;
  buffer << in.rdbuf();
  return buffer.str();
}

Result<Structure> LoadStructure(const std::string& path) {
  FMTK_ASSIGN_OR_RETURN(std::string text, ReadFile(path));
  return fmtk::ParseStructure(text);
}

int Fail(const Status& status) {
  std::fprintf(stderr, "error: %s\n", status.ToString().c_str());
  return 1;
}

int RunCheck(const std::string& file, const std::string& formula_text) {
  Result<Structure> s = LoadStructure(file);
  if (!s.ok()) {
    return Fail(s.status());
  }
  Result<fmtk::Formula> f =
      fmtk::ParseFormula(formula_text, &s->signature());
  if (!f.ok()) {
    return Fail(f.status());
  }
  Result<bool> verdict = fmtk::Satisfies(*s, *f);
  if (!verdict.ok()) {
    return Fail(verdict.status());
  }
  std::printf("%s\n", *verdict ? "true" : "false");
  return *verdict ? 0 : 2;
}

int RunQuery(const std::string& file, const std::string& formula_text,
             const std::string& vars_csv) {
  Result<Structure> s = LoadStructure(file);
  if (!s.ok()) {
    return Fail(s.status());
  }
  Result<fmtk::Formula> f =
      fmtk::ParseFormula(formula_text, &s->signature());
  if (!f.ok()) {
    return Fail(f.status());
  }
  std::vector<std::string> vars;
  for (const std::string& v : fmtk::Split(vars_csv, ',')) {
    std::string stripped(fmtk::StripWhitespace(v));
    if (!stripped.empty()) {
      vars.push_back(stripped);
    }
  }
  Result<fmtk::Relation> answers = fmtk::EvaluateQuery(*s, *f, vars);
  if (!answers.ok()) {
    return Fail(answers.status());
  }
  std::printf("%zu answers: %s\n", answers->size(),
              answers->ToString().c_str());
  return 0;
}

int RunGame(const std::string& file_a, const std::string& file_b,
            const std::string& rounds_text) {
  Result<Structure> a = LoadStructure(file_a);
  Result<Structure> b = LoadStructure(file_b);
  if (!a.ok()) {
    return Fail(a.status());
  }
  if (!b.ok()) {
    return Fail(b.status());
  }
  const std::size_t rounds = std::stoul(rounds_text);
  fmtk::EfGameSolver solver(*a, *b);
  Result<bool> wins = solver.DuplicatorWins(rounds);
  if (!wins.ok()) {
    return Fail(wins.status());
  }
  std::printf("%zu-round EF game: duplicator %s (%llu positions explored)\n",
              rounds, *wins ? "wins" : "loses",
              static_cast<unsigned long long>(solver.nodes_explored()));
  return 0;
}

int RunDistinguish(const std::string& file_a, const std::string& file_b,
                   const std::string& rank_text) {
  Result<Structure> a = LoadStructure(file_a);
  Result<Structure> b = LoadStructure(file_b);
  if (!a.ok()) {
    return Fail(a.status());
  }
  if (!b.ok()) {
    return Fail(b.status());
  }
  const std::size_t max_rank = std::stoul(rank_text);
  fmtk::RankTypeIndex index;
  for (std::size_t rank = 0; rank <= max_rank; ++rank) {
    Result<std::optional<fmtk::Formula>> f =
        fmtk::DistinguishingSentence(*a, *b, rank, index);
    if (!f.ok()) {
      return Fail(f.status());
    }
    if (f->has_value()) {
      std::printf("distinguishable at rank %zu:\n%s\n", rank,
                  (*f)->ToString().c_str());
      return 0;
    }
  }
  std::printf("equivalent up to rank %zu\n", max_rank);
  return 0;
}

int RunDatalog(const std::string& file, const std::string& program_text) {
  Result<Structure> s = LoadStructure(file);
  if (!s.ok()) {
    return Fail(s.status());
  }
  Result<fmtk::DatalogProgram> program =
      fmtk::ParseDatalogProgram(program_text);
  if (!program.ok()) {
    return Fail(program.status());
  }
  fmtk::DatalogStats stats;
  Result<std::map<std::string, fmtk::Relation>> idb = fmtk::EvaluateDatalog(
      *program, *s, fmtk::DatalogStrategy::kSemiNaive, &stats);
  if (!idb.ok()) {
    return Fail(idb.status());
  }
  for (const auto& [name, relation] : *idb) {
    std::printf("%s (%zu tuples): %s\n", name.c_str(), relation.size(),
                relation.ToString().c_str());
  }
  std::printf("(%zu fixpoint rounds)\n", stats.iterations);
  return 0;
}

void Usage() {
  std::fprintf(
      stderr,
      "usage:\n"
      "  fmtk_cli check <structure-file> \"<sentence>\"\n"
      "  fmtk_cli query <structure-file> \"<formula>\" <var,var,...>\n"
      "  fmtk_cli game <file-A> <file-B> <rounds>\n"
      "  fmtk_cli distinguish <file-A> <file-B> <max-rank>\n"
      "  fmtk_cli datalog <structure-file> \"<program>\"\n");
}

}  // namespace

int main(int argc, char** argv) {
  if (argc < 2) {
    Usage();
    return 1;
  }
  const std::string command = argv[1];
  if (command == "check" && argc == 4) {
    return RunCheck(argv[2], argv[3]);
  }
  if (command == "query" && argc == 5) {
    return RunQuery(argv[2], argv[3], argv[4]);
  }
  if (command == "game" && argc == 5) {
    return RunGame(argv[2], argv[3], argv[4]);
  }
  if (command == "distinguish" && argc == 5) {
    return RunDistinguish(argv[2], argv[3], argv[4]);
  }
  if (command == "datalog" && argc == 4) {
    return RunDatalog(argv[2], argv[3]);
  }
  Usage();
  return 1;
}
