// fmtk_cli — a small command-line front end for the toolkit.
//
//   fmtk_cli [options] check <structure-file> "<sentence>"
//   fmtk_cli [options] query <structure-file> "<formula>" <var,var,...>
//   fmtk_cli game <structure-file-A> <structure-file-B> <rounds>
//   fmtk_cli distinguish <structure-file-A> <structure-file-B> <max-rank>
//   fmtk_cli [options] datalog <structure-file> "<program>"
//
// check / query / datalog go through the meta-planner (EvaluateAuto): the
// cost model routes each input to the estimated-fastest engine and the
// compiled plan is cached for repeat invocations within one process.
//
// Options:
//   --engine <name>   bypass the cost model and force one engine: naive,
//                     compiled, parallel, relational, datalog,
//                     bounded-degree
//   --explain         print the routing decision (chosen engine, the
//                     survey theorem backing it, and the per-engine cost
//                     table) before the answer
//
// Structure files use the structures/io.h format (see the header or
// `examples/` docs). Formulas use the logic/parser.h surface syntax.

#include <cstdio>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "base/string_util.h"
#include "core/games/ef_game.h"
#include "core/games/hintikka.h"
#include "core/types/rank_type.h"
#include "logic/parser.h"
#include "planner/planner.h"
#include "structures/io.h"

namespace {

using fmtk::PlanExplanation;
using fmtk::PlannerOptions;
using fmtk::Result;
using fmtk::Status;
using fmtk::Structure;

Result<std::string> ReadFile(const std::string& path) {
  std::ifstream in(path);
  if (!in) {
    return Status::InvalidArgument("cannot open " + path);
  }
  std::ostringstream buffer;
  buffer << in.rdbuf();
  return buffer.str();
}

Result<Structure> LoadStructure(const std::string& path) {
  FMTK_ASSIGN_OR_RETURN(std::string text, ReadFile(path));
  return fmtk::ParseStructure(text);
}

int Fail(const Status& status) {
  std::fprintf(stderr, "error: %s\n", status.ToString().c_str());
  return 1;
}

struct CliOptions {
  PlannerOptions planner;
  bool explain = false;
};

void MaybeExplain(const CliOptions& options, const PlanExplanation& explain) {
  if (options.explain) {
    std::printf("%s\n", explain.ToString().c_str());
  }
}

int RunCheck(const std::string& file, const std::string& formula_text,
             const CliOptions& options) {
  Result<Structure> s = LoadStructure(file);
  if (!s.ok()) {
    return Fail(s.status());
  }
  PlanExplanation explain;
  Result<bool> verdict =
      fmtk::EvaluateAuto(*s, formula_text, options.planner, &explain);
  if (!verdict.ok()) {
    return Fail(verdict.status());
  }
  MaybeExplain(options, explain);
  std::printf("%s\n", *verdict ? "true" : "false");
  return *verdict ? 0 : 2;
}

int RunQuery(const std::string& file, const std::string& formula_text,
             const std::string& vars_csv, const CliOptions& options) {
  Result<Structure> s = LoadStructure(file);
  if (!s.ok()) {
    return Fail(s.status());
  }
  std::vector<std::string> vars;
  for (const std::string& v : fmtk::Split(vars_csv, ',')) {
    std::string stripped(fmtk::StripWhitespace(v));
    if (!stripped.empty()) {
      vars.push_back(stripped);
    }
  }
  PlanExplanation explain;
  Result<fmtk::Relation> answers = fmtk::EvaluateQueryAuto(
      *s, formula_text, vars, options.planner, &explain);
  if (!answers.ok()) {
    return Fail(answers.status());
  }
  MaybeExplain(options, explain);
  std::printf("%zu answers: %s\n", answers->size(),
              answers->ToString().c_str());
  return 0;
}

int RunGame(const std::string& file_a, const std::string& file_b,
            const std::string& rounds_text) {
  Result<Structure> a = LoadStructure(file_a);
  Result<Structure> b = LoadStructure(file_b);
  if (!a.ok()) {
    return Fail(a.status());
  }
  if (!b.ok()) {
    return Fail(b.status());
  }
  const std::size_t rounds = std::stoul(rounds_text);
  fmtk::EfGameSolver solver(*a, *b);
  Result<bool> wins = solver.DuplicatorWins(rounds);
  if (!wins.ok()) {
    return Fail(wins.status());
  }
  std::printf("%zu-round EF game: duplicator %s (%llu positions explored)\n",
              rounds, *wins ? "wins" : "loses",
              static_cast<unsigned long long>(solver.nodes_explored()));
  return 0;
}

int RunDistinguish(const std::string& file_a, const std::string& file_b,
                   const std::string& rank_text) {
  Result<Structure> a = LoadStructure(file_a);
  Result<Structure> b = LoadStructure(file_b);
  if (!a.ok()) {
    return Fail(a.status());
  }
  if (!b.ok()) {
    return Fail(b.status());
  }
  const std::size_t max_rank = std::stoul(rank_text);
  fmtk::RankTypeIndex index;
  for (std::size_t rank = 0; rank <= max_rank; ++rank) {
    Result<std::optional<fmtk::Formula>> f =
        fmtk::DistinguishingSentence(*a, *b, rank, index);
    if (!f.ok()) {
      return Fail(f.status());
    }
    if (f->has_value()) {
      std::printf("distinguishable at rank %zu:\n%s\n", rank,
                  (*f)->ToString().c_str());
      return 0;
    }
  }
  std::printf("equivalent up to rank %zu\n", max_rank);
  return 0;
}

int RunDatalog(const std::string& file, const std::string& program_text,
               const CliOptions& options) {
  Result<Structure> s = LoadStructure(file);
  if (!s.ok()) {
    return Fail(s.status());
  }
  fmtk::DatalogStats stats;
  Result<std::map<std::string, fmtk::Relation>> idb =
      fmtk::EvaluateDatalogAuto(*s, program_text, options.planner, &stats);
  if (!idb.ok()) {
    return Fail(idb.status());
  }
  for (const auto& [name, relation] : *idb) {
    std::printf("%s (%zu tuples): %s\n", name.c_str(), relation.size(),
                relation.ToString().c_str());
  }
  std::printf("(%zu fixpoint rounds)\n", stats.iterations);
  return 0;
}

void Usage() {
  std::fprintf(
      stderr,
      "usage:\n"
      "  fmtk_cli [options] check <structure-file> \"<sentence>\"\n"
      "  fmtk_cli [options] query <structure-file> \"<formula>\" "
      "<var,var,...>\n"
      "  fmtk_cli game <file-A> <file-B> <rounds>\n"
      "  fmtk_cli distinguish <file-A> <file-B> <max-rank>\n"
      "  fmtk_cli [options] datalog <structure-file> \"<program>\"\n"
      "options:\n"
      "  --engine <naive|compiled|parallel|relational|datalog|"
      "bounded-degree>\n"
      "  --explain\n");
}

}  // namespace

int main(int argc, char** argv) {
  CliOptions options;
  std::vector<std::string> args;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--explain") {
      options.explain = true;
    } else if (arg == "--engine" && i + 1 < argc) {
      const std::string name = argv[++i];
      options.planner.force_engine = fmtk::ParseEngineKind(name);
      if (!options.planner.force_engine.has_value()) {
        std::fprintf(stderr, "error: unknown engine '%s'\n", name.c_str());
        return 1;
      }
    } else if (!arg.empty() && arg.rfind("--", 0) == 0) {
      Usage();
      return 1;
    } else {
      args.push_back(arg);
    }
  }
  if (args.empty()) {
    Usage();
    return 1;
  }
  const std::string& command = args[0];
  if (command == "check" && args.size() == 3) {
    return RunCheck(args[1], args[2], options);
  }
  if (command == "query" && args.size() == 4) {
    return RunQuery(args[1], args[2], args[3], options);
  }
  if (command == "game" && args.size() == 4) {
    return RunGame(args[1], args[2], args[3]);
  }
  if (command == "distinguish" && args.size() == 4) {
    return RunDistinguish(args[1], args[2], args[3]);
  }
  if (command == "datalog" && args.size() == 3) {
    return RunDatalog(args[1], args[2], options);
  }
  Usage();
  return 1;
}
