// Quickstart: databases as finite structures, FO as a query language, and
// one Ehrenfeucht–Fraïssé game — the toolkit in five minutes.

#include <cstdio>

#include "core/games/ef_game.h"
#include "core/games/hintikka.h"
#include "core/types/rank_type.h"
#include "eval/model_check.h"
#include "eval/query_eval.h"
#include "logic/parser.h"
#include "structures/generators.h"

int main() {
  using namespace fmtk;  // NOLINT: examples favor brevity.

  // 1. A database is a finite relational structure. Build a tiny social
  //    graph: E(x, y) = "x follows y".
  Structure graph(Signature::Graph(), 4);
  graph.AddTuple("E", {0, 1});
  graph.AddTuple("E", {1, 2});
  graph.AddTuple("E", {2, 0});
  graph.AddTuple("E", {3, 0});
  std::printf("the database:\n%s\n\n", graph.ToString().c_str());

  // 2. FO is the query language. Boolean query: is following symmetric
  //    anywhere?
  Result<Formula> mutual = ParseFormula("exists x y. E(x,y) & E(y,x)");
  std::printf("\"%s\"  ->  %s\n\n", mutual->ToString().c_str(),
              *Satisfies(graph, *mutual) ? "true" : "false");

  // 3. Non-Boolean query: ans(φ(x), A) — who is followed by everyone else?
  Result<Relation> popular = EvaluateQuery(
      graph, *ParseFormula("forall y. y = x | E(y,x)"), {"x"});
  std::printf("popular accounts: %s\n\n", popular->ToString().c_str());

  // 4. The toolbox: can FO count? Play the 2-round EF game on sets of
  //    sizes 4 and 5. The duplicator wins, so no FO sentence of quantifier
  //    rank 2 can tell them apart.
  Structure four = MakeSet(4);
  Structure five = MakeSet(5);
  EfGameSolver solver(four, five);
  std::printf("G_2(set4, set5): duplicator %s\n",
              *solver.DuplicatorWins(2) ? "wins" : "loses");

  // 5. At 5 rounds the spoiler wins — and the toolkit hands you the
  //    separating sentence.
  RankTypeIndex types;
  Result<std::optional<Formula>> separating =
      DistinguishingSentence(four, five, 5, types);
  if (separating->has_value()) {
    std::printf(
        "rank-5 separating sentence exists (%zu AST nodes); "
        "set4 |= phi: %s, set5 |= phi: %s\n",
        (*separating)->NodeCount(),
        *Satisfies(four, **separating) ? "yes" : "no",
        *Satisfies(five, **separating) ? "yes" : "no");
  }
  return 0;
}
